"""Benchmark: atomicity checking — offline vs. online, and conflict modes.

Beyond the paper's tables (its Section 8 sketches the extension): times the
generalized checker on a transactional workload and asserts the
access-point mode's false-alarm elimination on commuting interleavings.
"""

import pytest

from repro.atomicity import (AtomicityAnalyzer, AtomicityChecker,
                             ConflictMode, atomic)
from repro.runtime.collections_rt import MonitoredCounter
from repro.runtime.monitor import Monitor
from repro.sched.scheduler import Scheduler
from repro.specs.counter import counter_representation


def commuting_workload(seed=0, tellers=4, rounds=6):
    """Atomic fee blocks interleaved with commuting deposits."""
    monitor = Monitor(record_trace=True)
    scheduler = Scheduler(monitor, seed=seed)

    def main():
        balance = MonitoredCounter(monitor, name="balance")

        def teller():
            for _ in range(rounds):
                with atomic(monitor):
                    balance.add(-2)
                    balance.add(-1)

        def depositor():
            for _ in range(rounds):
                balance.add(100)

        handles = [scheduler.spawn(teller) for _ in range(tellers)]
        handles.append(scheduler.spawn(depositor))
        scheduler.join_all(handles)

    scheduler.run(main)
    return monitor.trace


TRACE = commuting_workload()


@pytest.mark.parametrize("mode", [ConflictMode.COMMUTATIVITY,
                                  ConflictMode.READ_WRITE])
def test_offline_checker(benchmark, mode):
    def run():
        checker = AtomicityChecker(mode)
        checker.register_object("balance", counter_representation())
        return checker.analyze(TRACE)

    report = benchmark(run)
    benchmark.extra_info["transactions"] = len(report.transactions)
    benchmark.extra_info["violations"] = len(report.violations)
    if mode is ConflictMode.COMMUTATIVITY:
        # Deposits commute with the fee blocks: no false alarms.
        assert report.serializable


def test_online_analyzer(benchmark):
    def run():
        online = AtomicityAnalyzer(ConflictMode.COMMUTATIVITY)
        online.register_object("balance",
                               representation=counter_representation())
        for event in TRACE:
            online.process(event)
        return online

    online = benchmark(run)
    benchmark.extra_info["violations"] = online.violation_count
    assert online.violation_count == 0
