"""Benchmark: per-event analysis overhead of each detector.

Micro-level counterpart of Table 2's performance columns: the same recorded
trace is replayed through every analyzer, isolating pure analysis cost from
workload and scheduling cost.  The ``_obs`` variants replay with the
sampled metrics registry enabled, and ``test_obs_overhead_within_budget``
gates the enabled/disabled ratio at 5% — the same budget the
``bench/parallel_scaling.py --smoke`` CI job enforces on a larger trace.
"""

import time

import pytest

from repro.baselines.eraser import Eraser
from repro.baselines.fasttrack import FastTrack
from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.hb import HappensBeforeTracker
from repro.core.trace import TraceBuilder
from repro.obs import Registry
from repro.sched.workload import WorkloadConfig, generate_trace
from repro.specs.dictionary import dictionary_representation


def interface_trace():
    workload = generate_trace(WorkloadConfig(
        threads=4, ops_per_thread=150, seed=1,
        objects=(("dictionary", 2),)))
    return workload


def memory_trace():
    builder = TraceBuilder(root=0)
    for worker in range(1, 5):
        builder.fork(0, worker)
    import random
    rng = random.Random(0)
    for index in range(600):
        tid = rng.randrange(1, 5)
        location = f"x{rng.randrange(32)}"
        if rng.random() < 0.3:
            builder.write(tid, location)
        else:
            builder.read(tid, location)
    return builder.build(stamp=False)


def test_overhead_hb_tracking_only(benchmark):
    workload = interface_trace()

    def run():
        tracker = HappensBeforeTracker(root=0)
        for event in workload.trace:
            tracker.observe(event)

    benchmark(run)


def test_overhead_rd2(benchmark):
    workload = interface_trace()

    def run():
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False)
        for obj_id in workload.objects:
            detector.register_object(obj_id, dictionary_representation())
        for event in workload.trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["races"] = detector.stats.races
    benchmark.extra_info["events"] = detector.stats.events


def test_overhead_fasttrack(benchmark):
    trace = memory_trace()

    def run():
        detector = FastTrack(root=0, keep_reports=False)
        for event in trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["races"] = detector.race_count


def test_overhead_djit(benchmark):
    """The epochs-vs-vector-clocks comparison of the FastTrack paper."""
    from repro.baselines.djit import Djit
    trace = memory_trace()

    def run():
        detector = Djit(root=0, keep_reports=False)
        for event in trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["races"] = detector.race_count


def test_overhead_rd2_with_pruning(benchmark):
    workload = interface_trace()

    def run():
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False,
            prune_interval=32)
        for obj_id in workload.objects:
            detector.register_object(obj_id, dictionary_representation())
        for event in workload.trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["active_points"] = detector.active_point_count()


def test_overhead_eraser(benchmark):
    trace = memory_trace()

    def run():
        detector = Eraser(root=0, keep_reports=False)
        for event in trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["warnings"] = detector.warning_count


# -- observability overhead ---------------------------------------------------


def _rd2_replay(workload, obs):
    detector = CommutativityRaceDetector(
        root=0, strategy=Strategy.ENUMERATE, keep_reports=False, obs=obs)
    for obj_id in workload.objects:
        detector.register_object(obj_id, dictionary_representation())
    for event in workload.trace:
        detector.process(event)
    return detector


def test_overhead_rd2_obs_sampled(benchmark):
    """rd2 with the sampled registry — compare against test_overhead_rd2."""
    workload = interface_trace()
    detector = benchmark(lambda: _rd2_replay(workload, Registry()))
    benchmark.extra_info["races"] = detector.stats.races
    benchmark.extra_info["sample_interval"] = Registry().sample_interval


def test_overhead_rd2_obs_exact(benchmark):
    """rd2 with exact (interval 1) attribution — the offline CLI mode."""
    workload = interface_trace()
    detector = benchmark(
        lambda: _rd2_replay(workload, Registry(sample_interval=1)))
    benchmark.extra_info["races"] = detector.stats.races


def test_overhead_fasttrack_obs(benchmark):
    trace = memory_trace()

    def run():
        detector = FastTrack(root=0, keep_reports=False, obs=Registry())
        detector.run(trace)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["races"] = detector.race_count


def test_obs_overhead_within_budget():
    """Enabled sampled obs must stay within 5% of disabled, best-of-N.

    A deterministic gate rather than a pytest-benchmark comparison so it
    can fail the suite: one warmup pair, then alternating runs, comparing
    minima (robust to scheduler noise), with one confirming re-measure
    before declaring a breach.
    """
    workload = generate_trace(WorkloadConfig(
        threads=4, ops_per_thread=400, seed=2, objects=(("dictionary", 2),)))

    def run_once(obs):
        start = time.perf_counter()
        _rd2_replay(workload, obs)
        return time.perf_counter() - start

    def measure(rounds):
        run_once(None), run_once(Registry())        # warmup, discarded
        off, on = [], []
        for _ in range(rounds):
            off.append(run_once(None))
            on.append(run_once(Registry()))
        return min(on) / min(off) - 1.0

    overhead = measure(10)
    if overhead > 0.05:
        overhead = measure(20)
    assert overhead <= 0.05, (
        f"sampled observability costs {overhead:+.1%}, budget is 5%")
