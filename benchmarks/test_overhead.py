"""Benchmark: per-event analysis overhead of each detector.

Micro-level counterpart of Table 2's performance columns: the same recorded
trace is replayed through every analyzer, isolating pure analysis cost from
workload and scheduling cost.
"""

import pytest

from repro.baselines.eraser import Eraser
from repro.baselines.fasttrack import FastTrack
from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.hb import HappensBeforeTracker
from repro.core.trace import TraceBuilder
from repro.sched.workload import WorkloadConfig, generate_trace
from repro.specs.dictionary import dictionary_representation


def interface_trace():
    workload = generate_trace(WorkloadConfig(
        threads=4, ops_per_thread=150, seed=1,
        objects=(("dictionary", 2),)))
    return workload


def memory_trace():
    builder = TraceBuilder(root=0)
    for worker in range(1, 5):
        builder.fork(0, worker)
    import random
    rng = random.Random(0)
    for index in range(600):
        tid = rng.randrange(1, 5)
        location = f"x{rng.randrange(32)}"
        if rng.random() < 0.3:
            builder.write(tid, location)
        else:
            builder.read(tid, location)
    return builder.build(stamp=False)


def test_overhead_hb_tracking_only(benchmark):
    workload = interface_trace()

    def run():
        tracker = HappensBeforeTracker(root=0)
        for event in workload.trace:
            tracker.observe(event)

    benchmark(run)


def test_overhead_rd2(benchmark):
    workload = interface_trace()

    def run():
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False)
        for obj_id in workload.objects:
            detector.register_object(obj_id, dictionary_representation())
        for event in workload.trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["races"] = detector.stats.races
    benchmark.extra_info["events"] = detector.stats.events


def test_overhead_fasttrack(benchmark):
    trace = memory_trace()

    def run():
        detector = FastTrack(root=0, keep_reports=False)
        for event in trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["races"] = detector.race_count


def test_overhead_djit(benchmark):
    """The epochs-vs-vector-clocks comparison of the FastTrack paper."""
    from repro.baselines.djit import Djit
    trace = memory_trace()

    def run():
        detector = Djit(root=0, keep_reports=False)
        for event in trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["races"] = detector.race_count


def test_overhead_rd2_with_pruning(benchmark):
    workload = interface_trace()

    def run():
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False,
            prune_interval=32)
        for obj_id in workload.objects:
            detector.register_object(obj_id, dictionary_representation())
        for event in workload.trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["active_points"] = detector.active_point_count()


def test_overhead_eraser(benchmark):
    trace = memory_trace()

    def run():
        detector = Eraser(root=0, keep_reports=False)
        for event in trace:
            detector.process(event)
        return detector

    detector = benchmark(run)
    benchmark.extra_info["warnings"] = detector.warning_count
