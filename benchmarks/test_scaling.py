"""Benchmark: the Section 5.4 complexity series — Θ(1) vs Θ(|active|).

Times the three detector variants over growing dictionary workloads and
asserts the asymptotic claim: per-action checks stay flat for the
ENUMERATE strategy over the translated representation, and grow linearly
for the SCAN strategy over the naive representation (and for the direct
specification-level detector).
"""

import pytest

from repro.bench.scaling import (render_scaling, run_scaling, scaling_trace)
from repro.core.access_points import NaiveRepresentation
from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.direct import DirectDetector
from repro.specs.dictionary import dictionary_representation, dictionary_spec

SIZES = [200, 800]


def _run_enumerate(trace):
    detector = CommutativityRaceDetector(root=0, strategy=Strategy.ENUMERATE,
                                         keep_reports=False)
    detector.register_object("o", dictionary_representation())
    for event in trace:
        detector.process(event)
    return detector.stats


def _run_scan(trace):
    detector = CommutativityRaceDetector(root=0, strategy=Strategy.SCAN,
                                         keep_reports=False)
    detector.register_object(
        "o", NaiveRepresentation("dictionary", dictionary_spec().commutes))
    for event in trace:
        detector.process(event)
    return detector.stats


def _run_direct(trace):
    detector = DirectDetector(root=0, keep_reports=False)
    detector.register_object("o", dictionary_spec().commutes)
    for event in trace:
        detector.process(event)
    return detector.stats


@pytest.mark.parametrize("size", SIZES)
def test_scaling_enumerate(benchmark, size):
    trace = scaling_trace(size, seed=0)
    stats = benchmark(lambda: _run_enumerate(trace))
    benchmark.extra_info["checks_per_action"] = round(
        stats.checks_per_action(), 2)
    assert stats.checks_per_action() <= 5


@pytest.mark.parametrize("size", SIZES)
def test_scaling_scan(benchmark, size):
    trace = scaling_trace(size, seed=0)
    stats = benchmark(lambda: _run_scan(trace))
    benchmark.extra_info["checks_per_action"] = round(
        stats.checks_per_action(), 1)
    assert stats.checks_per_action() >= size / 4


@pytest.mark.parametrize("size", SIZES)
def test_scaling_direct(benchmark, size):
    trace = scaling_trace(size, seed=0)
    stats = benchmark(lambda: _run_direct(trace))
    benchmark.extra_info["checks_per_action"] = round(
        stats.checks_per_action(), 1)
    assert stats.checks_per_action() >= size / 4


def test_scaling_report(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: run_scaling(sizes=(100, 300, 1000)), rounds=1, iterations=1)
    small, medium, large = points
    assert large.enumerate_checks_per_action <= \
        small.enumerate_checks_per_action * 1.5 + 1
    assert large.scan_checks_per_action > small.scan_checks_per_action * 5
    with capsys.disabled():
        print()
        print(render_scaling(points))
