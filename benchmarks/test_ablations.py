"""Benchmarks: design-choice ablations (beyond the paper's tables).

* optimized vs. raw translated representation (Appendix A.3's payoff);
* ENUMERATE vs. SCAN on the same bounded representation;
* RD2 with full vs. maps-only instrumentation (the paper's "overhead would
  be lower" remark).
"""

import pytest

from repro.apps.polepos.circuits import CIRCUITS, CircuitConfig
from repro.bench.ablation import render_ablations, run_ablations
from repro.bench.harness import analyzer_stack
from repro.bench.scaling import scaling_trace
from repro.bench.table2 import _circuit_workload
from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.logic.translate import (build_raw_translation,
                                   build_representation, translate)
from repro.runtime.monitor import Monitor
from repro.specs.dictionary import dictionary_spec

TRACE = scaling_trace(600, seed=3)


def _detect(representation, strategy):
    detector = CommutativityRaceDetector(root=0, strategy=strategy,
                                         keep_reports=False)
    detector.register_object("o", representation, strategy=strategy)
    for event in TRACE:
        detector.process(event)
    return detector.stats


def test_ablation_raw_translation(benchmark):
    representation = build_representation(
        build_raw_translation(dictionary_spec()))
    stats = benchmark(lambda: _detect(representation, Strategy.ENUMERATE))
    benchmark.extra_info["points_per_action"] = round(
        stats.points_touched / stats.actions, 2)


def test_ablation_optimized_translation(benchmark):
    representation = translate(dictionary_spec())
    stats = benchmark(lambda: _detect(representation, Strategy.ENUMERATE))
    benchmark.extra_info["points_per_action"] = round(
        stats.points_touched / stats.actions, 2)
    assert stats.points_touched / stats.actions <= 2.5


def test_ablation_scan_on_bounded_representation(benchmark):
    representation = translate(dictionary_spec())
    stats = benchmark(lambda: _detect(representation, Strategy.SCAN))
    benchmark.extra_info["checks_per_action"] = round(
        stats.checks_per_action(), 1)


@pytest.mark.parametrize("config", ["rd2", "rd2-maps-only"])
def test_ablation_instrumentation_cost(benchmark, config, scale):
    circuit = CIRCUITS["ComplexConcurrency"]
    circuit = CircuitConfig(**{**circuit.__dict__,
                               "ops_per_worker":
                               max(5, int(circuit.ops_per_worker * scale))})
    workload = _circuit_workload(circuit, seed=0, switch_probability=1.0)
    low_level = config == "rd2"

    def run():
        monitor = Monitor(analyzers=analyzer_stack(config),
                          low_level=low_level)
        workload(monitor)
        return monitor

    monitor = benchmark(run)
    benchmark.extra_info["events"] = monitor.events_emitted


def test_ablation_report(benchmark, capsys):
    rows = benchmark.pedantic(lambda: run_ablations(scale=0.15),
                              rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_ablations(rows))
