"""Benchmark: Fig. 4 — conflict checks on invocations vs. access points.

Times the direct (specification-level) detector against the access-point
detector on the figure's scenario (k parallel puts + one size) and asserts
the check-count claim: k comparisons versus one.
"""

import pytest

from repro.bench.fig4 import fig4_trace, render_fig4, run_fig4
from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.direct import DirectDetector
from repro.specs.dictionary import dictionary_representation, dictionary_spec

PUT_COUNTS = [10, 100, 400]


@pytest.mark.parametrize("puts", PUT_COUNTS)
def test_fig4_direct_detector(benchmark, puts):
    trace = fig4_trace(puts).build()
    spec = dictionary_spec()

    def run():
        detector = DirectDetector(root=0, keep_reports=False)
        detector.register_object("o", spec.commutes)
        for event in trace:
            detector.process(event)
        return detector.stats

    stats = benchmark(run)
    benchmark.extra_info["checks_per_action"] = round(
        stats.checks_per_action(), 2)
    # Θ(k): the size() alone compared against every put.
    assert stats.conflict_checks >= puts


@pytest.mark.parametrize("puts", PUT_COUNTS)
def test_fig4_access_point_detector(benchmark, puts):
    trace = fig4_trace(puts).build()

    def run():
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False)
        detector.register_object("o", dictionary_representation())
        for event in trace:
            detector.process(event)
        return detector.stats

    stats = benchmark(run)
    benchmark.extra_info["checks_per_action"] = round(
        stats.checks_per_action(), 2)
    # Θ(1) per action: bounded by the representation's conflict degree.
    assert stats.checks_per_action() <= 4


def test_fig4_report(benchmark, capsys):
    points = benchmark.pedantic(lambda: run_fig4(), rounds=1, iterations=1)
    for point in points:
        assert point.direct_checks_for_size == point.puts
        assert point.access_point_checks_for_size == 1
    with capsys.disabled():
        print()
        print(render_fig4(points))
