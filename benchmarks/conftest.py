"""Shared configuration for the pytest-benchmark drivers.

Each benchmark regenerates one evaluation artifact (Table 2 cells, the
Fig. 4 check counts, the Section 5.4 scaling series, the ablations).  The
workload scales are kept small so the whole directory runs in well under a
minute; pass ``--scale`` to grow them toward the paper's durations.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--scale", action="store", type=float, default=0.25,
                     help="workload scale factor for benchmark drivers")


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--scale")
