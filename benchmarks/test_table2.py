"""Benchmark: regenerate Table 2 (the paper's whole evaluation table).

Each (benchmark, configuration) cell is one pytest-benchmark entry timing
the circuit/snitch workload under that analyzer stack; race tallies are
attached as extra_info and the shape assertions of the reproduction are
checked inline.  A final reporting entry prints the full rendered table
next to the paper's published numbers.
"""

import pytest

from repro.bench.harness import analyzer_stack, measure
from repro.bench.table2 import (PAPER_TABLE2, _circuit_workload,
                                _snitch_workload, render, run_table2)
from repro.apps.polepos.circuits import CIRCUITS, CircuitConfig
from repro.apps.snitch.snitch import SnitchTestConfig
from repro.runtime.monitor import Monitor

H2_ROWS = [name for name in PAPER_TABLE2 if name != "DynamicEndpointSnitch"]
CONFIGS = ["uninstrumented", "fasttrack", "rd2"]


def scaled_circuit(name, scale):
    config = CIRCUITS[name]
    return CircuitConfig(**{**config.__dict__,
                            "ops_per_worker":
                            max(5, int(config.ops_per_worker * scale))})


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("row", H2_ROWS)
def test_table2_h2_cell(benchmark, row, config, scale):
    circuit = scaled_circuit(row, scale)
    workload = _circuit_workload(circuit, seed=0, switch_probability=1.0)

    def cell():
        monitor = Monitor(analyzers=analyzer_stack(config))
        return workload(monitor), monitor

    (operations, monitor) = benchmark(cell)
    measurement = measure(workload, config)
    benchmark.extra_info["qps"] = round(measurement.qps)
    benchmark.extra_info["races"] = str(measurement.races_for())
    assert operations == circuit.workers * circuit.ops_per_worker


@pytest.mark.parametrize("config", CONFIGS)
def test_table2_snitch_cell(benchmark, config, scale):
    snitch_config = SnitchTestConfig(
        timings_per_producer=max(5, int(150 * scale)),
        score_updates=max(2, int(40 * scale)))
    workload = _snitch_workload(snitch_config, seed=0,
                                switch_probability=1.0)

    def cell():
        monitor = Monitor(analyzers=analyzer_stack(config))
        return workload(monitor)

    operations = benchmark(cell)
    measurement = measure(workload, config)
    benchmark.extra_info["seconds"] = round(measurement.elapsed, 4)
    benchmark.extra_info["races"] = str(measurement.races_for())
    assert operations > 0


def test_table2_shape_and_report(benchmark, scale, capsys):
    """Regenerate the full table once and assert the paper's shape."""
    rows = benchmark.pedantic(
        lambda: run_table2(scale=scale, seed=0), rounds=1, iterations=1)
    by_name = {row.benchmark: row for row in rows}

    # Shape claim 1: instrumentation costs, RD2 comparable to FASTTRACK.
    for row in rows:
        uninstrumented = row.measurements["uninstrumented"]
        rd2 = row.measurements["rd2"]
        fasttrack = row.measurements["fasttrack"]
        assert uninstrumented.elapsed <= rd2.elapsed
        assert uninstrumented.elapsed <= fasttrack.elapsed
        assert rd2.elapsed < fasttrack.elapsed * 3

    # Shape claim 2: the clean rows.
    for name in ("QueryCentricConcurrency", "Complex", "NestedLists"):
        assert by_name[name].races("rd2").total == 0

    # Shape claim 3: racy rows on few objects; FASTTRACK redundancy.
    for name in ("ComplexConcurrency", "InsertCentricConcurrency",
                 "DynamicEndpointSnitch"):
        rd2_tally = by_name[name].races("rd2")
        ft_tally = by_name[name].races("fasttrack")
        assert rd2_tally.total >= 1
        assert rd2_tally.distinct <= 3
        assert ft_tally.total > ft_tally.distinct  # redundant reports

    with capsys.disabled():
        print()
        print(render(rows))
