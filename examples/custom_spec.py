#!/usr/bin/env python
"""Bring your own library: specify, translate, intercept, detect.

The detector is parametric in a commutativity specification (the paper's
Fig. 2 pipeline).  This example walks the whole pipeline for a user-defined
`Inventory` class:

1. write an ECL commutativity specification for its methods;
2. translate it to an access point representation (Section 6.2), looking
   at what the optimizer produced;
3. intercept a plain Python object so its calls are monitored;
4. run a racy reservation workload and read the reports.

Run:  python examples/custom_spec.py
"""

from repro.core import tally
from repro.logic import CommutativitySpec, translate
from repro.runtime import Monitor, Rd2Analyzer, intercept
from repro.sched import Scheduler


class Inventory:
    """A plain, unmonitored class — pretend it is a thread-safe library."""

    def __init__(self) -> None:
        self._stock = {"widget": 2, "gizmo": 1}

    def reserve(self, item: str) -> int:
        """Take one unit; returns 1 on success, 0 if out of stock."""
        if self._stock.get(item, 0) > 0:
            self._stock[item] -= 1
            return 1
        return 0

    def restock(self, item: str, amount: int) -> None:
        self._stock[item] = self._stock.get(item, 0) + amount

    def available(self, item: str) -> int:
        return self._stock.get(item, 0)


def build_spec() -> CommutativitySpec:
    """When do Inventory operations commute?

    * reservations of different items always commute; same-item
      reservations commute only if both failed (no stock either way);
    * restocks commute with each other (addition commutes) but not with
      same-item reservations or reads;
    * reads commute with reads.
    """
    spec = CommutativitySpec("inventory")
    spec.method("reserve", params=("item",), returns=("ok",))
    spec.method("restock", params=("item", "amount"))
    spec.method("available", params=("item",), returns=("n",))
    spec.pair("reserve", "reserve",
              "item1 != item2 | (ok1 == 0 & ok2 == 0)")
    spec.pair("reserve", "restock", "item1 != item2")
    spec.pair("reserve", "available", "item1 != item2 | ok1 == 0")
    spec.pair("restock", "restock", "true")
    spec.pair("restock", "available", "item1 != item2")
    spec.pair("available", "available", "true")
    return spec


def main() -> None:
    spec = build_spec()
    representation = translate(spec)
    print("Translated access point representation "
          f"({len(representation.schemas)} schemas after optimization):")
    print(representation.describe())

    rd2 = Rd2Analyzer()
    monitor = Monitor(analyzers=[rd2])
    scheduler = Scheduler(monitor, seed=7)

    def program() -> None:
        inventory = intercept(monitor, Inventory(), spec, name="inventory")

        def shopper(item: str) -> None:
            inventory.reserve(item)

        def clerk() -> None:
            inventory.restock("widget", 5)

        workers = [scheduler.spawn(shopper, "widget"),
                   scheduler.spawn(shopper, "widget"),
                   scheduler.spawn(shopper, "gizmo"),
                   scheduler.spawn(clerk)]
        scheduler.join_all(workers)
        inventory.available("widget")   # ordered after joinall: no race

    scheduler.run(program)
    races = rd2.races()
    print(f"\ncommutativity races: {tally(races)}")
    for race in races:
        print(f"  {race}")
    assert races, "expected same-item reserve/reserve and reserve/restock races"


if __name__ == "__main__":
    main()
