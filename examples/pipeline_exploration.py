#!/usr/bin/env python
"""Schedule exploration on a producer/consumer pipeline.

A work queue connects a producer to a consumer.  The *intended* protocol
hands items over through a semaphore (release after enq, acquire before
deq), which orders each handoff; a buggy variant skips the semaphore and
polls the queue directly.  One interleaving proves nothing — this example
uses :func:`repro.sched.explore` to sweep seeds, showing the buggy variant
races on every schedule while the disciplined one never does, and prints
the deduplicated findings with their witness seeds.

A third variant — *multiple* producers, each feeding the queue — shows why
FIFO enqueues themselves are commutativity races even with the consumer
fully synchronized: concurrent ``enq``s do not commute (their order is
observable through later ``deq``s), which is exactly the nondeterminism a
work-sharing design should either accept (use an unordered bag — compare
``repro.specs.list_spec``'s multiset log) or serialize.

Run:  python examples/pipeline_exploration.py
"""

from repro.core.events import NIL
from repro.runtime import MonitoredQueue
from repro.sched import Semaphore, explore

ITEMS = ["job-a", "job-b", "job-c"]


def disciplined_pipeline(monitor, scheduler):
    queue = MonitoredQueue(monitor, name="work")
    ready = Semaphore(monitor, scheduler, permits=0, name="ready")
    consumed = []

    def producer():
        for item in ITEMS:
            queue.enq(item)
            ready.release()      # publish: orders the enq before the deq

    def consumer():
        for _ in ITEMS:
            ready.acquire()      # wait for a published item
            consumed.append(queue.deq())

    scheduler.join_all([scheduler.spawn(producer),
                        scheduler.spawn(consumer)])
    return consumed


def polling_pipeline(monitor, scheduler):
    queue = MonitoredQueue(monitor, name="work")
    consumed = []

    def producer():
        for item in ITEMS:
            queue.enq(item)

    def consumer():
        while len(consumed) < len(ITEMS):
            item = queue.deq()   # unsynchronized poll: races with enq
            if item is not NIL:
                consumed.append(item)

    scheduler.join_all([scheduler.spawn(producer),
                        scheduler.spawn(consumer)])
    return consumed


def fan_in_pipeline(monitor, scheduler):
    """Multiple producers, consumer fully synchronized — enq/enq races."""
    queue = MonitoredQueue(monitor, name="work")
    ready = Semaphore(monitor, scheduler, permits=0, name="ready")
    consumed = []

    def producer(item):
        queue.enq(item)
        ready.release()

    def consumer():
        for _ in ITEMS:
            ready.acquire()
            consumed.append(queue.deq())

    handles = [scheduler.spawn(producer, item) for item in ITEMS]
    handles.append(scheduler.spawn(consumer))
    scheduler.join_all(handles)
    return consumed


def main() -> None:
    seeds = range(12)

    print(f"Exploring {len(list(seeds))} interleavings of each variant...\n")

    polling = explore(polling_pipeline, seeds=seeds)
    print("Polling consumer (no synchronization):")
    print(f"  {polling.summary()}\n")

    disciplined = explore(disciplined_pipeline, seeds=seeds)
    print("Single producer + semaphore handoff:")
    print(f"  {disciplined.summary()}\n")

    fan_in = explore(fan_in_pipeline, seeds=seeds)
    print("Concurrent producers + semaphore handoff:")
    print(f"  {fan_in.summary()}\n")

    assert polling.race_frequency > 0, \
        "some schedule must interleave a deq with a concurrent enq"
    assert disciplined.race_frequency == 0, \
        "the semaphore orders every handoff and the producer is serial"
    assert fan_in.race_frequency > 0, \
        "concurrent FIFO enqueues do not commute"
    assert all("enq" in str(group.sample.current) for seed_groups in
               [fan_in.all_groups()] for group in seed_groups), \
        "fan-in races are exactly the enq/enq pairs"

    # Items are handed over completely in every variant — the races are
    # about *interference potential*, not this run's outcome (the paper's
    # point: a commutativity race indicates undesirable interference even
    # when this execution got lucky).
    for outcome in polling.outcomes:
        assert sorted(outcome.result) == sorted(ITEMS)

    print("Every polling run still delivered all items — the races flag "
          "the\nunsynchronized enq/deq pairs whose order the schedule was "
          "free to flip.\nThe fan-in variant is synchronized on the "
          "consumer side yet still races:\nconcurrent FIFO enqueues do not "
          "commute, so the delivered *order* is\nschedule-dependent — use "
          "an unordered bag if that is acceptable.")


if __name__ == "__main__":
    main()
