#!/usr/bin/env python
"""Offline analysis: build a trace by hand, replay it through detectors.

Not every use of the detector needs the runtime: the analysis consumes a
*trace* (Section 3.1), so you can construct one directly — from a log, a
simulator, or by hand — and replay it.  This example rebuilds the exact
execution of the paper's Fig. 3, shows the vector clocks the detector
computes, checks them against the figure, and cross-validates the online
detector against the brute-force oracle (Theorem 5.1 in miniature).

Run:  python examples/offline_trace_analysis.py
"""

from repro.core import (NIL, Action, CommutativityOracle,
                        CommutativityRaceDetector, ShardedDetector,
                        TraceBuilder)
from repro.specs.dictionary import dictionary_representation, dictionary_spec


def main() -> None:
    # The trace of Fig. 3: τ3 and τ2 race on put('a.com', ...); the main
    # thread joins both, then observes size()/1.
    trace = (
        TraceBuilder(root="m")
        .fork("m", "t2")
        .fork("m", "t3")
        .action("t3", Action("o", "put", ("a.com", "c1"), (NIL,)))   # a1
        .action("t2", Action("o", "put", ("a.com", "c2"), ("c1",)))  # a2
        .join("m", "t2")
        .join("m", "t3")
        .action("m", Action("o", "size", (), (1,)))                  # a3
        .build()
    )

    a1, a2, a3 = trace.actions("o")
    order = ["m", "t2", "t3"]
    print("vector clocks (as ⟨m, t2, t3⟩, cf. Fig. 3):")
    for label, event in (("a1", a1), ("a2", a2), ("a3", a3)):
        print(f"  {label}: {event.clock.to_tuple(order)}")
    assert a1.clock.parallel(a2.clock), "a1 ‖ a2 (the racing pair)"
    assert a1.clock.leq(a3.clock) and a2.clock.leq(a3.clock), \
        "joinall orders size() after both puts"

    # Online detection over the recorded trace.
    detector = CommutativityRaceDetector(root="m")
    detector.register_object("o", dictionary_representation())
    trace.replay(detector.process)
    print(f"\nonline detector: {len(detector.races)} race(s)")
    for race in detector.races:
        print(f"  {race}")

    # The brute-force oracle (Definition 4.3, literally).
    oracle = CommutativityOracle()
    oracle.register_object("o", dictionary_spec().commutes)
    pairs = oracle.racing_pairs(trace)
    print(f"\noracle: {len(pairs)} racing pair(s)")
    for first, second in pairs:
        print(f"  {first.label()}  ‖  {second.label()}")

    assert bool(detector.races) == bool(pairs)  # Theorem 5.1
    assert {(p[0].index, p[1].index) for p in pairs} == {(a1.index, a2.index)}
    print("\nDetector and oracle agree: the put/put pair races, and the "
          "joinall-ordered\nsize() does not — matching Fig. 3 exactly.")

    # The same trace through the two-phase sharded pipeline: a sequential
    # happens-before pass stamps every event, then the per-object race
    # checks replay shard-by-shard (workers=2 here spawns real processes;
    # workers=0 would run the identical pipeline inline).  The merged
    # report is identical to the sequential one, report for report.
    sharded = ShardedDetector(root="m", workers=2)
    sharded.register_object("o", dictionary_representation())
    sharded.run(trace)
    assert sharded.races == detector.races
    assert sharded.stats.conflict_checks == detector.stats.conflict_checks
    print(f"\nsharded pipeline (2 workers): {len(sharded.races)} race(s) — "
          "identical to the sequential run.")


if __name__ == "__main__":
    main()
