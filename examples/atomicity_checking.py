#!/usr/bin/env python
"""Atomicity checking over access points — the paper's Section 8 extension.

The paper argues that dynamic atomicity detectors (Velodrome) use a
low-level read/write notion of conflict that "can be extended to handle
much richer commutativity specifications ... with the appropriate
modifications of the atomicity algorithms to deal with access points".

This example shows the payoff.  A banking app applies a fee inside an
intended-atomic block (two counter updates), while an auditor concurrently
deposits.  At the memory level the interleaved deposit *conflicts* with the
block (same balance cell), so classic Velodrome flags a violation; at the
commutativity level deposits commute with fee updates (both are blind
increments), so the block is serializable — no false alarm.  A genuinely
broken block (balance check-then-withdraw with an interleaved withdrawal)
is flagged by both.

Run:  python examples/atomicity_checking.py
"""

from repro.atomicity import AtomicityChecker, ConflictMode, atomic
from repro.core.events import NIL
from repro.core.trace import TraceBuilder
from repro.runtime import Monitor, MonitoredCounter, MonitoredDict
from repro.sched import Scheduler
from repro.specs.counter import counter_representation
from repro.specs.dictionary import dictionary_representation


def commuting_scenario():
    """Fee block with an interleaved deposit — atomic despite interleaving."""
    builder = TraceBuilder(root=0).fork(0, "teller").fork(0, "auditor")
    builder.begin("teller")
    builder.invoke("teller", "balance", "add", -2)          # fee part 1
    builder.write("teller", "balance.cell")
    builder.invoke("auditor", "balance", "add", 100)        # deposit!
    builder.write("auditor", "balance.cell")
    builder.invoke("teller", "balance", "add", -1)          # fee part 2
    builder.write("teller", "balance.cell")
    builder.commit("teller")
    return builder.build()


def broken_scenario():
    """Check-then-withdraw split by another withdrawal — truly broken."""
    builder = TraceBuilder(root=0).fork(0, "teller").fork(0, "rival")
    builder.begin("teller")
    builder.invoke("teller", "accounts", "get", "acct", returns=100)
    builder.invoke("rival", "accounts", "put", "acct", 0, returns=100)
    builder.invoke("teller", "accounts", "put", "acct", 60, returns=0)
    builder.commit("teller")
    return builder.build()


def main() -> None:
    commuting = commuting_scenario()

    velodrome = AtomicityChecker(ConflictMode.READ_WRITE)
    rw_report = velodrome.analyze(commuting)

    generalized = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    generalized.register_object("balance", counter_representation())
    comm_report = generalized.analyze(commuting)

    print("Fee block with interleaved deposit:")
    print(f"  read/write conflicts (Velodrome): serializable = "
          f"{rw_report.serializable}")
    for violation in rw_report.violations:
        print(f"    {violation}")
    print(f"  access-point conflicts (this work): serializable = "
          f"{comm_report.serializable}")
    assert not rw_report.serializable, "RW mode false-alarms here"
    assert comm_report.serializable, "commutativity mode exonerates it"

    broken = broken_scenario()
    strict = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    strict.register_object("accounts", dictionary_representation())
    broken_report = strict.analyze(broken)
    print("\nCheck-then-withdraw with an interleaved withdrawal:")
    print(f"  access-point conflicts: serializable = "
          f"{broken_report.serializable}")
    for violation in broken_report.violations:
        print(f"    {violation}")
    assert not broken_report.serializable

    # The same analysis also runs on live programs via atomic(monitor).
    monitor = Monitor(record_trace=True)
    scheduler = Scheduler(monitor, seed=8)

    def program():
        balance = MonitoredCounter(monitor, name="balance")

        def teller():
            with atomic(monitor):
                balance.add(-2)
                balance.add(-1)

        def depositor():
            balance.add(100)

        scheduler.join_all([scheduler.spawn(teller),
                            scheduler.spawn(depositor)])

    scheduler.run(program)
    live = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    live.register_object("balance", counter_representation())
    live_report = live.analyze(monitor.trace)
    print(f"\nLive run under the scheduler: serializable = "
          f"{live_report.serializable} "
          f"({len(live_report.transactions)} transactions, "
          f"{live_report.conflict_edges} conflict edges)")
    assert live_report.serializable


if __name__ == "__main__":
    main()
