#!/usr/bin/env python
"""Reproduce the paper's two H2 MVStore bugs (Section 7, findings 1 and 2).

RD2's case study on H2 1.3.174 found, via ConcurrentHashMap commutativity
races:

1. ``freedPageSpace`` — an unsynchronized get-then-put accumulation that
   can lose freed-space updates ("incorrect state of the server"; fixed
   upstream after the study);
2. ``chunks`` — a contains-then-put memoization that lets two readers load
   the same chunk twice (duplicated expensive work).

This example drives the MVStore substitute with a small concurrent
workload, shows both races being reported, and demonstrates the lost-update
consequence of bug 1 by comparing the accumulated freed space against the
true amount.

Run:  python examples/h2_mvstore.py
"""

from collections import Counter

from repro.apps.mvstore import Database
from repro.core import NIL, tally
from repro.runtime import Monitor, Rd2Analyzer
from repro.sched import Scheduler


def main() -> None:
    rd2 = Rd2Analyzer()
    monitor = Monitor(analyzers=[rd2])
    scheduler = Scheduler(monitor, seed=5)
    database = Database(monitor, chunk_count=4, name="h2")
    database.bind_scheduler(scheduler)

    def program() -> None:
        setup = database.connect()
        for index in range(8):
            setup.insert("accounts", f"k{index}", ("seed", index))

        def teller(worker: int) -> None:
            session = database.connect()
            for step in range(12):
                key = f"k{(worker + step) % 8}"
                session.update("accounts", key, (worker, step))
                if step % 4 == 3:
                    session.select("accounts", key)

        workers = [scheduler.spawn(teller, w) for w in range(3)]
        scheduler.join_all(workers)

    scheduler.run(program)

    races = rd2.races()
    by_object = Counter(race.obj for race in races)
    print(f"commutativity races: {tally(races)}")
    for obj, count in by_object.items():
        print(f"  {count:4d} on {obj}")

    store = database.store
    freed_recorded = sum(
        value for value in store.freed_page_space.snapshot().values()
        if value is not NIL)
    loads = store.chunk_loads.peek()   # outside the program: unmonitored
    print(f"\nfreedPageSpace total recorded: {freed_recorded} bytes "
          f"(lost updates make this an undercount on racy schedules)")
    print(f"chunk loads performed: {loads} "
          f"(> {store.chunk_count} means duplicated work)")

    assert any("freedPageSpace" in str(obj) for obj in by_object), \
        "expected the freedPageSpace race (H2 bug 1)"
    assert any("chunks" in str(obj) for obj in by_object), \
        "expected the chunks race (H2 bug 2)"
    print("\nBoth of the paper's H2 findings reproduced: the freed-space "
          "accumulation\nand the chunk-cache memoization race at the "
          "ConcurrentHashMap interface.")


if __name__ == "__main__":
    main()
