#!/usr/bin/env python
"""Reproduce the Cassandra DynamicEndpointSnitch race (Section 7, finding 3).

Cassandra ranks nodes by observed latency.  The paper's RD2 found that new
entries can be added to the snitch's ``samples`` map while its ``size()``
is concurrently used as a performance hint during rank recalculation —
making the hint obsolete by the time it is used.

This example runs the snitch test (latency producers + a score updater),
shows the size-vs-put race being reported, and counts how often the hint
actually went stale during the run.

Run:  python examples/snitch_monitoring.py
"""

from collections import Counter

from repro.apps.snitch import SnitchTestConfig, run_snitch_test
from repro.core import tally
from repro.runtime import Monitor, Rd2Analyzer


def main() -> None:
    rd2 = Rd2Analyzer()
    monitor = Monitor(analyzers=[rd2])
    config = SnitchTestConfig(producers=3, timings_per_producer=60,
                              score_updates=15)
    result = run_snitch_test(config, monitor, seed=3)

    print(f"timings folded in: {result.timings}, "
          f"score recalculations: {result.score_rounds}")
    print(f"stale size hints observed: {result.stale_hints}")
    print(f"final scores: {result.final_scores}")

    races = rd2.races()
    print(f"\ncommutativity races: {tally(races)}")
    by_object = Counter(race.obj for race in races)
    for obj, count in sorted(by_object.items()):
        print(f"  {count:4d} on {obj}")

    size_races = [race for race in races
                  if "samples" in str(race.obj)
                  and ("size" in str(race.point)
                       or "size" in str(race.prior_point)
                       or "resize" in str(race.point)
                       or "resize" in str(race.prior_point))]
    assert size_races, "expected the size-vs-put race on the samples map"
    print(f"\n{len(size_races)} of them involve the samples map's size — "
          "the paper's finding:\nthe rank recalculation sizes its work "
          "from samples.size() while producers\nare still adding hosts.")


if __name__ == "__main__":
    main()
