#!/usr/bin/env python
"""Quickstart: detect the paper's running-example commutativity race.

This is Fig. 1 of the paper: threads concurrently establish connections to
a list of hosts and store them in a shared dictionary.  When the host list
contains duplicates, two ``put`` invocations on the same key can happen in
parallel and do not commute — a commutativity race (Fig. 3 walks through
the detection).

Run:  python examples/quickstart.py
"""

from repro.core import tally
from repro.runtime import Monitor, MonitoredDict, Rd2Analyzer
from repro.sched import Scheduler


def main() -> None:
    # 1. A monitor with the commutativity race detector attached.
    rd2 = Rd2Analyzer()
    monitor = Monitor(analyzers=[rd2])

    # 2. A deterministic scheduler (the seed fixes the interleaving).
    scheduler = Scheduler(monitor, seed=2014)

    # Note the duplicate host — the bug the paper's example is about.
    hosts = ["a.com", "a.com", "b.com", "c.com"]

    def program() -> int:
        connections = MonitoredDict(monitor, name="o")

        def connect(host: str, serial: int) -> None:
            # createConnection(host) stand-in:
            connection = f"connection-{serial}->{host}"
            connections.put(host, connection)

        workers = [scheduler.spawn(connect, host, index)
                   for index, host in enumerate(hosts)]
        scheduler.join_all(workers)          # the paper's `joinall`
        return connections.size()            # safely ordered after joins

    established = scheduler.run(program)
    print(f"{established} connections established")

    # 3. Inspect the detector's verdicts.
    races = rd2.races()
    print(f"\ncommutativity races: {tally(races)}")
    for race in races:
        print(f"  {race}")

    assert races, "expected the duplicate-host put/put race"
    assert all(race.obj == "o" for race in races)
    print("\nThe two put('a.com', ...) invocations may happen in parallel "
          "and do not\ncommute — exactly the race of the paper's Fig. 1/3. "
          "The final size() is\nrace-free because joinall orders it after "
          "every put.")


if __name__ == "__main__":
    main()
