#!/usr/bin/env python
"""Service soak: many tenants hammering one detection daemon, RSS-gated.

Hosts a live :class:`repro.service.server.DetectionServer` in-process and
drives ``--tenants`` concurrent tenants against it for ``--duration``
wall-clock seconds.  Each tenant loops over its own seeded workload:
stream the trace to completion, verify the served ``RACES`` report is
byte-identical to an offline single-tenant analysis, and go again —
with a seeded mid-stream disconnect every few iterations so checkpoint
fast-forward resume stays on the hot path, not just in the chaos tests.

Three gates, each failing the run with exit 1:

* **correctness** — every completed iteration's report must match the
  offline ground truth byte for byte (and every tenant must complete at
  least one iteration);
* **backpressure** — no tenant's server-side ingest-queue high-water
  mark may exceed the configured bound;
* **memory** — the process's peak RSS must stay under ``--rss-mb``,
  proving per-tenant budgets + maintenance windows actually bound the
  fleet's footprint over sustained traffic.

``--stats-json`` writes the merged fleet Registry snapshot plus the
soak's own evidence (iterations, events, peak RSS, per-tenant verdicts)
for CI to archive.

Run:  PYTHONPATH=src python bench/service_soak.py --tenants 32 \
          --duration 30 --rss-mb 768 --stats-json SOAK_PR8.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import sys
import tempfile
import threading
import time
from random import Random

from repro.service import ServiceConfig, SessionConfig
from repro.service.budget import BudgetConfig
from repro.service.chaos import offline_race_lines
from repro.service.client import ControlClient, ServerThread, ServiceClient
from repro.testing.workloads import tenant_trace_text


def rss_bytes() -> int:
    """Current resident set size (Linux), else the peak as a fallback."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class TenantLoop:
    """One tenant's soak thread and its running evidence."""

    def __init__(self, name: str, seed: int, ops: int, cut_every: int):
        self.name = name
        self.rng = Random(seed)
        self.text, self.bindings, trace = tenant_trace_text(
            seed, min_ops=ops, max_ops=ops)
        self.expected = offline_race_lines(trace, self.bindings)
        self.cut_every = cut_every
        self.iterations = 0
        self.events = 0
        self.resumes = 0
        self.failure = None

    def run(self, client: ServiceClient, control: ControlClient,
            stop: threading.Event) -> None:
        declared = self.text.count("\n") - 1  # minus the header line
        while not stop.is_set():
            try:
                if self.cut_every and self.iterations % self.cut_every == 1:
                    cut = self.rng.randint(1, len(self.text) - 1)
                    client.stream_text(self.name, self.bindings, self.text,
                                       truncate_at=cut)
                attempts = client.stream_until_done(
                    self.name, self.bindings, self.text)
                final = attempts[-1]
                if final.status != "done":
                    self.failure = f"stream ended {final.final!r}"
                    return
                self.resumes += sum(a.resumed > 0 for a in attempts)
                observed = control.races(self.name)
                if observed == ["(no races)"]:
                    observed = []
                if observed != self.expected:
                    self.failure = (
                        f"report mismatch: served {len(observed)} group(s), "
                        f"offline analysis says {len(self.expected)}")
                    return
                self.iterations += 1
                self.events += declared
            except Exception as exc:  # noqa: BLE001 - verdict, not control flow
                self.failure = f"{type(exc).__name__}: {exc}"
                return


def run_soak(args) -> int:
    base = tempfile.mkdtemp(prefix="repro-soak-")
    config = ServiceConfig(
        socket_path=os.path.join(base, "ingest.sock"),
        control_path=os.path.join(base, "control.sock"),
        session=SessionConfig(
            window=64,
            checkpoint_dir=os.path.join(base, "checkpoints"),
            checkpoint_interval=64,
            budget=BudgetConfig(max_points=args.budget_points,
                                suspend_after=1_000_000)),
        queue_size=args.queue_size)
    rng = Random(args.seed)
    loops = [TenantLoop(f"soak-{i:02d}", rng.randrange(1 << 30),
                        ops=args.ops, cut_every=3)
             for i in range(args.tenants)]

    stop = threading.Event()
    peak_rss = rss_bytes()
    with ServerThread(config) as host:
        client = ServiceClient(config.socket_path)
        control = ControlClient(config.control_path)
        threads = [threading.Thread(target=loop.run, daemon=True,
                                    args=(client, control, stop))
                   for loop in loops]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        while time.monotonic() - started < args.duration:
            time.sleep(0.25)
            peak_rss = max(peak_rss, rss_bytes())
        stop.set()
        for thread in threads:
            # stream_until_done's busy backoff is bounded, so a healthy
            # loop notices the stop flag within its current iteration.
            thread.join(timeout=60)
        stats = control.stats()
        control.shutdown()
    if host.error is not None:
        raise host.error
    peak_rss = max(peak_rss, rss_bytes())
    elapsed = time.monotonic() - started

    failures = []
    for loop in loops:
        if loop.failure is not None:
            failures.append(f"{loop.name}: {loop.failure}")
        elif loop.iterations == 0:
            failures.append(f"{loop.name}: completed no iterations "
                            f"in {elapsed:.0f}s")
    gauges = stats.get("gauges", {})
    hwms = {loop.name: int(gauges.get(f"tenant_queue_hwm[{loop.name}]", 0))
            for loop in loops}
    breaches = {name: hwm for name, hwm in hwms.items()
                if hwm > args.queue_size}
    peak_rss_mb = peak_rss / (1024 * 1024)

    iterations = sum(loop.iterations for loop in loops)
    events = sum(loop.events for loop in loops)
    resumes = sum(loop.resumes for loop in loops)
    print(f"soak: {args.tenants} tenants x {elapsed:.1f}s -> "
          f"{iterations} iterations, {events} events "
          f"({events / max(elapsed, 1e-9):,.0f} ev/s), {resumes} resumes")
    print(f"  queue hwm: {max(hwms.values(), default=0)} "
          f"(bound {args.queue_size}); peak RSS {peak_rss_mb:.1f} MiB "
          f"(ceiling {args.rss_mb} MiB)")

    ok = not failures and not breaches and peak_rss_mb <= args.rss_mb
    if args.stats_json:
        document = {
            "soak": {
                "tenants": args.tenants,
                "duration_s": round(elapsed, 3),
                "iterations": iterations,
                "events": events,
                "events_per_s": round(events / max(elapsed, 1e-9), 1),
                "resumes": resumes,
                "peak_rss_mb": round(peak_rss_mb, 1),
                "rss_ceiling_mb": args.rss_mb,
                "queue_bound": args.queue_size,
                "queue_hwm": hwms,
                "failures": sorted(failures),
                "ok": ok,
            },
            "stats": stats,
        }
        path = pathlib.Path(args.stats_json)
        tmp = path.with_name(f".{path.name}.tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        print(f"  stats written to {path}")

    for failure in failures:
        print(f"  FAILED {failure}", file=sys.stderr)
    for name, hwm in sorted(breaches.items()):
        print(f"  QUEUE BREACH {name}: hwm {hwm} > {args.queue_size}",
              file=sys.stderr)
    if peak_rss_mb > args.rss_mb:
        print(f"  RSS GATE BREACH: peak {peak_rss_mb:.1f} MiB > "
              f"ceiling {args.rss_mb} MiB", file=sys.stderr)
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=32)
    parser.add_argument("--duration", type=float, default=30.0,
                        help="wall-clock seconds to keep the fleet running")
    parser.add_argument("--seed", type=int, default=2014,
                        help="master seed for the per-tenant workloads")
    parser.add_argument("--ops", type=int, default=60,
                        help="ops per worker thread in each tenant workload")
    parser.add_argument("--queue-size", type=int, default=16,
                        help="per-tenant ingest queue bound (gated)")
    parser.add_argument("--budget-points", type=int, default=64,
                        help="per-tenant live-point budget")
    parser.add_argument("--rss-mb", type=float, default=768.0,
                        help="peak-RSS ceiling in MiB (gated)")
    parser.add_argument("--stats-json", default=None,
                        help="write the merged stats + soak evidence here")
    args = parser.parse_args(argv)
    if args.tenants < 1 or args.duration <= 0:
        parser.error("--tenants must be >= 1 and --duration > 0")
    return run_soak(args)


if __name__ == "__main__":
    sys.exit(main())
