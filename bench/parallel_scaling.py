#!/usr/bin/env python
"""Parallel scaling: throughput of the two-phase sharded analyzer.

Generates a synthetic multi-object trace (default 100k events: dictionary
shards under put/get/size churn from several unordered threads), runs the
sequential :class:`CommutativityRaceDetector` as the baseline, then the
:class:`ShardedDetector` at increasing worker counts, and reports
events/second plus speedup over the sequential pass.  The differential
guarantee is asserted on the way: every configuration must report the
same number of races and conflict checks.

The pipeline's phase A (the happens-before pass) is inherently
sequential, so Amdahl bounds the speedup by the phase-B share of the
sequential runtime — the report prints that share so the measured
scaling can be judged against the ceiling.  On a single-CPU container the
pool configurations show overhead, not speedup; run on >=4 cores to see
the paper-style scaling (>=1.8x at 4 workers is typical, since phase B
dominates at realistic object counts).

``--smoke`` runs a scaled-down sweep plus the CI smoke job's gates (each
fails the run with exit 1 on a breach): two 5%-overhead-budget gates —
the *observability overhead gate* (detector timed with metrics disabled
vs. the sampled registry enabled) and the *supervisor overhead gate*
(the sharded pool timed with shard supervision on vs. the bare
``pool.map`` baseline, on the fault-free path) — plus the *hot-path
gate*: the compiled detector path (check plans + interned points + CoW
stamping) must be >=1.3x the seed path end-to-end, and copy-on-write
stamping >=1.5x the copying freeze on the Phase-A microbench.

``--hotpath`` runs the hot-path microbench suite on its own (stamping,
end-to-end detector, golden-trace corpus replay, and the PR 7
epoch-adaptive + columnar-batch leg) and writes the machine-readable
results to ``BENCH_PR4.json`` / ``BENCH_PR7.json`` (see
``--hotpath-json`` / ``--epoch-json``).  The epoch leg compares the
compiled full-vector-clock detector against epochs + batched checking on
a wide-clock, mostly-thread-local workload and is gated at >=3.0x.
It then runs the PR 9 *backend fan-out leg*: the shm execution backend
vs. the pickle pool, end to end at 8 workers on a wide-clock butterfly
workload, gated at >=2.0x and recorded in ``BENCH_PR9.json`` (see
``--backend-json``).  ``--ipc`` prints the same workload's transport
story — bytes on the wire and serialization seconds per backend.

Run:  PYTHONPATH=src python bench/parallel_scaling.py [--events N]
          [--objects K] [--threads T] [--workers 1,2,4]
      PYTHONPATH=src python bench/parallel_scaling.py --smoke
      PYTHONPATH=src python bench/parallel_scaling.py --hotpath
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import random
import time

from repro.core.detector import CommutativityRaceDetector
from repro.core.hb import HappensBeforeTracker
from repro.core.parallel import ShardedDetector
from repro.core.serialize import load_trace
from repro.core.trace import TraceBuilder
from repro.core.vector_clock import MutableVectorClock, VectorClock
from repro.obs import Registry, build_report, write_report
from repro.specs import bundled_objects
from repro.specs.dictionary import dictionary_representation

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "tests" / "data"


def synthetic_trace(events: int, objects: int, threads: int, seed: int = 0,
                    keys: int = 64, lock_rate: float = 0.05):
    """A put/get/size workload spread over ``objects`` dictionaries.

    Returns come from a per-object shadow dict, so the trace is a
    consistent execution.  ``keys`` sizes each object's key space and
    ``lock_rate`` the fraction of operations done under a shared lock —
    together they set the race density (smaller key space, less locking:
    more races).
    """
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    worker_tids = list(range(1, threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)
    shadow = [dict() for _ in range(objects)]
    from repro.core.events import NIL
    budget = events - threads  # forks already emitted
    for _ in range(budget):
        tid = rng.choice(worker_tids)
        index = rng.randrange(objects)
        obj = f"d{index}"
        locked = rng.random() < lock_rate
        if locked:
            builder.acquire(tid, "L")
        roll = rng.random()
        if roll < 0.6:
            key = f"k{rng.randrange(keys)}"
            value = rng.randrange(8)
            prev = shadow[index].get(key, NIL)
            shadow[index][key] = value
            builder.invoke(tid, obj, "put", key, value, returns=prev)
        elif roll < 0.9:
            key = f"k{rng.randrange(keys)}"
            builder.invoke(tid, obj, "get", key,
                           returns=shadow[index].get(key, NIL))
        else:
            size = sum(1 for v in shadow[index].values() if v is not NIL)
            builder.invoke(tid, obj, "size", returns=size)
        if locked:
            builder.release(tid, "L")
    return builder.build(stamp=False)


def register_all(detector, objects: int):
    for index in range(objects):
        detector.register_object(f"d{index}", dictionary_representation())
    return detector


def timed_run(detector, trace):
    start = time.perf_counter()
    detector.run(trace)
    return time.perf_counter() - start


def overhead_gate(trace, objects: int, repeats: int = 12,
                  threshold: float = 0.05) -> bool:
    """Time the detector with obs off vs. sampled obs on; gate at 5%.

    One warmup run of each mode first (the first runs after startup pay
    allocator growth and code warmup that would otherwise be charged to
    whichever mode goes first), then the modes alternate and the
    best-of-``repeats`` wall times are compared, so slow outliers and
    machine drift don't decide the verdict.
    """
    def run_once(obs):
        detector = register_all(
            CommutativityRaceDetector(root=0, keep_reports=False, obs=obs),
            objects)
        return timed_run(detector, trace)

    def measure(rounds):
        run_once(None), run_once(Registry())        # warmup, discarded
        off, on = [], []
        for _ in range(rounds):
            off.append(run_once(None))
            on.append(run_once(Registry()))
        return min(on) / min(off) - 1.0, min(off), min(on)

    overhead, best_off, best_on = measure(repeats)
    if overhead > threshold:
        # One noise spike shouldn't fail CI: confirm with a longer rerun.
        print(f"\nobservability overhead gate: {overhead:+.1%} over a "
              f"{threshold:.0%} budget on the first attempt; re-measuring")
        overhead, best_off, best_on = measure(2 * repeats)
    verdict = "PASS" if overhead <= threshold else "FAIL"
    print(f"\nobservability overhead gate: disabled {best_off:.3f}s, "
          f"enabled {best_on:.3f}s -> {overhead:+.1%} "
          f"(budget {threshold:.0%}) [{verdict}]")
    return overhead <= threshold


def supervisor_overhead_gate(trace, objects: int, workers: int = 2,
                             repeats: int = 5,
                             threshold: float = 0.05) -> bool:
    """Time the sharded pool with supervision on vs. off; gate at 5%.

    Supervision replaces one ``pool.map`` with per-job ``apply_async`` +
    timed ``get``; on the fault-free path that must be noise, not a tax.
    Pool startup dominates these runs (and is identical in both modes), so
    fewer repeats suffice than for the in-process observability gate; the
    same warmup / alternate / best-of-N / re-measure discipline applies.
    """
    def run_once(supervise):
        detector = register_all(
            ShardedDetector(root=0, workers=workers, keep_reports=False,
                            supervise=supervise),
            objects)
        return timed_run(detector, trace)

    def measure(rounds):
        run_once(False), run_once(True)             # warmup, discarded
        bare, supervised = [], []
        for _ in range(rounds):
            bare.append(run_once(False))
            supervised.append(run_once(True))
        return min(supervised) / min(bare) - 1.0, min(bare), min(supervised)

    overhead, best_bare, best_sup = measure(repeats)
    if overhead > threshold:
        print(f"\nsupervisor overhead gate: {overhead:+.1%} over a "
              f"{threshold:.0%} budget on the first attempt; re-measuring")
        overhead, best_bare, best_sup = measure(2 * repeats)
    verdict = "PASS" if overhead <= threshold else "FAIL"
    print(f"\nsupervisor overhead gate ({workers} workers): bare pool.map "
          f"{best_bare:.3f}s, supervised {best_sup:.3f}s -> {overhead:+.1%} "
          f"(budget {threshold:.0%}) [{verdict}]")
    return overhead <= threshold


# -- streaming memory gate (PR 5) -------------------------------------------


def phased_trace(events: int, objects: int = 8, threads: int = 8,
                 phases: int = 20, seed: int = 0, keys: int = 16):
    """A joinall-heavy workload: fork/churn/join-all phases, fresh every time.

    Each phase forks ``threads`` *new* tids, churns put/get/size over the
    shared objects with *phase-scoped* keys, then joins everything back
    into the root.  Once a phase's threads are joined, all of its access
    points are ordered before every live thread — so a pruning analyzer's
    footprint is one phase, while an unpruned one accumulates all of
    them: dead points, dead threads' clocks, and (the PR 4 leak) one
    interned ``(schema, value)`` entry per phase-scoped key it ever saw.
    """
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    from repro.core.events import NIL
    churn = max(1, events // phases - 2 * threads)
    next_tid = 1
    emitted = 0
    phase = 0
    while emitted < events:
        tids = list(range(next_tid, next_tid + threads))
        next_tid += threads
        for tid in tids:
            builder.fork(0, tid)
        shadow = [dict() for _ in range(objects)]
        for _ in range(min(churn, max(1, events - emitted - 2 * threads))):
            tid = rng.choice(tids)
            index = rng.randrange(objects)
            obj = f"d{index}"
            key = f"p{phase}k{rng.randrange(keys)}"
            roll = rng.random()
            if roll < 0.6:
                value = rng.randrange(8)
                prev = shadow[index].get(key, NIL)
                shadow[index][key] = value
                builder.invoke(tid, obj, "put", key, value, returns=prev)
            elif roll < 0.9:
                builder.invoke(tid, obj, "get", key,
                               returns=shadow[index].get(key, NIL))
            else:
                size = sum(1 for v in shadow[index].values() if v is not NIL)
                builder.invoke(tid, obj, "size", returns=size)
        for tid in tids:
            builder.join(0, tid)
        emitted += 2 * threads + churn
        phase += 1
    return builder.build(stamp=False)


def streaming_memory_gate(events: int = 200_000, objects: int = 8,
                          threads: int = 8, phases: int = 20, seed: int = 0,
                          prune_interval: int = 256, window: int = 512,
                          max_ratio: float = 0.10) -> bool:
    """Bounded-memory gate: streaming peak footprint vs. unpruned total.

    Runs the phased joinall workload twice — batch with pruning off, then
    :class:`~repro.core.stream.StreamAnalyzer` with pruning/eviction on —
    and requires the streaming peak (active + interned points, sampled at
    every maintenance window) to stay under ``max_ratio`` of the unpruned
    final count.  Race verdicts are asserted identical first, so the gate
    cannot pass by dropping work.
    """
    from repro.core.stream import StreamAnalyzer

    print(f"\nstreaming memory gate: {events} events, {phases} fork/join "
          f"phases over {objects} objects ...")
    trace = phased_trace(events, objects=objects, threads=threads,
                         phases=phases, seed=seed)
    baseline = register_all(
        CommutativityRaceDetector(root=0, keep_reports=False), objects)
    baseline.run(trace)
    unpruned = (baseline.active_point_count()
                + baseline.interned_point_count())

    analyzer = register_all(
        StreamAnalyzer(root=0, keep_reports=False,
                       prune_interval=prune_interval, window=window),
        objects)
    analyzer.run(trace)
    assert analyzer.stats.races == baseline.stats.races, (
        f"verdict drift under streaming: {analyzer.stats.races} != "
        f"{baseline.stats.races}")

    peak = analyzer.peak_active + analyzer.peak_interned
    ratio = peak / unpruned if unpruned else 0.0
    verdict = "PASS" if ratio < max_ratio else "FAIL"
    print(f"  unpruned final footprint: "
          f"{baseline.active_point_count()} active + "
          f"{baseline.interned_point_count()} interned = {unpruned} points")
    print(f"  streaming peak footprint: {analyzer.peak_active} active + "
          f"{analyzer.peak_interned} interned = {peak} points "
          f"({analyzer.stats.points_pruned} pruned, "
          f"{analyzer.stats.interned_points_evicted} evicted, "
          f"{analyzer.threads_retired} threads retired)")
    print(f"streaming memory gate: {ratio:.1%} of unpruned "
          f"(budget {max_ratio:.0%}) [{verdict}]")
    return ratio < max_ratio


# -- hot-path microbench (PR 4) ---------------------------------------------


def _seed_stamp_next(self, tid):
    """The pre-CoW per-event stamp: advance, then copy the whole dict.

    Monkeypatched over ``MutableVectorClock.stamp_next`` for the seed
    baselines of the hot-path benchmarks.  The guarded invalidation keeps
    the CoW bookkeeping of the *other* operations (fork/join/acq/rel still
    run the real handlers) consistent, so verdicts are unchanged.
    """
    entries = self._entries
    entries[tid] = entries.get(tid, 0) + 1
    if self._base is not None:
        self._invalidate()
    return VectorClock._trusted(dict(entries))


@contextlib.contextmanager
def _seed_stamping():
    """Run the enclosed block under the seed's always-copy stamping."""
    saved = MutableVectorClock.stamp_next
    MutableVectorClock.stamp_next = _seed_stamp_next
    try:
        yield
    finally:
        MutableVectorClock.stamp_next = saved


def _interleaved_best(run_fast, run_seed, repeats: int):
    """Warm both modes up once, then alternate and keep best-of-N times.

    The same discipline as the overhead gates: interleaving means machine
    drift hits both modes alike, and the minimum discards GC/scheduler
    outliers.
    """
    run_fast(), run_seed()                          # warmup, discarded
    fast, seed = [], []
    for _ in range(repeats):
        fast.append(run_fast())
        seed.append(run_seed())
    return min(fast), min(seed)


def stamping_bench(events: int, threads: int, seed: int = 0,
                   repeats: int = 5) -> dict:
    """Phase-A stamping alone: copy-on-write freeze vs. per-event copy.

    Runs just the happens-before tracker over a synthetic trace — the
    sequential Phase A of the sharded pipeline is exactly this loop — and
    compares the fused CoW ``stamp_next`` against the seed's
    advance-then-copy-the-dict stamp.
    """
    trace = synthetic_trace(events, objects=4, threads=threads, seed=seed)

    def observe_all():
        tracker = HappensBeforeTracker(root=trace.root)
        start = time.perf_counter()
        for event in trace:
            tracker.observe(event)
        return time.perf_counter() - start

    def run_seed():
        with _seed_stamping():
            return observe_all()

    best_cow, best_seed = _interleaved_best(observe_all, run_seed, repeats)
    return {
        "events": len(trace),
        "threads": threads,
        "cow_seconds": best_cow,
        "seed_seconds": best_seed,
        "cow_events_per_s": len(trace) / best_cow,
        "seed_events_per_s": len(trace) / best_seed,
        "speedup": best_seed / best_cow,
    }


def detector_bench(trace, objects: int, repeats: int = 5) -> dict:
    """End-to-end detector throughput, compiled path vs. seed path.

    Compiled = check plans + interned access points + CoW stamping (the
    default).  Seed = ``compiled=False`` (representation dispatch per
    action) under the seed's copying stamp.  Verdicts are asserted equal
    before any timing counts.
    """
    def run_once(compiled):
        # adaptive is pinned off so this leg keeps measuring exactly the
        # PR 4 delta (plan compilation + interning + CoW stamping) now
        # that epoch-adaptive clocks are the constructor default; the
        # epoch win has its own leg and gate (epoch_batch_bench).
        detector = register_all(
            CommutativityRaceDetector(root=0, keep_reports=False,
                                      compiled=compiled, adaptive=False),
            objects)
        return timed_run(detector, trace), detector

    _, fast = run_once(True)
    with _seed_stamping():
        _, slow = run_once(False)
    got = (fast.stats.races, fast.stats.conflict_checks)
    want = (slow.stats.races, slow.stats.conflict_checks)
    assert got == want, f"verdict drift on compiled path: {got} != {want}"

    def run_seed():
        with _seed_stamping():
            return run_once(False)[0]

    best_fast, best_seed = _interleaved_best(
        lambda: run_once(True)[0], run_seed, repeats)
    return {
        "events": len(trace),
        "objects": objects,
        "races": fast.stats.races,
        "compiled_seconds": best_fast,
        "seed_seconds": best_seed,
        "compiled_events_per_s": len(trace) / best_fast,
        "seed_events_per_s": len(trace) / best_seed,
        "speedup": best_seed / best_fast,
    }


def golden_corpus_bench(repeats: int = 5, passes: int = 20) -> dict:
    """Replay the frozen golden traces (``tests/data``) in both modes.

    The traces are small, so each timed run replays the whole corpus
    ``passes`` times.  Race and check counts are asserted identical
    between the modes before timing (the byte-level report identity is
    the test suite's job; the bench only needs to not time a lie).
    """
    registry = bundled_objects()
    cases = []
    for path in sorted(GOLDEN_DIR.glob("*.jsonl")):
        expected_path = GOLDEN_DIR / "expected" / f"{path.stem}.json"
        with open(expected_path, encoding="utf-8") as stream:
            bindings = json.load(stream)["bindings"]
        with open(path, encoding="utf-8") as stream:
            trace = load_trace(stream)
        cases.append((path.stem, trace, bindings))
    if not cases:
        raise SystemExit(f"no golden traces found under {GOLDEN_DIR}")
    events_per_pass = sum(len(trace) for _, trace, _ in cases)

    def replay_all(compiled):
        # Time only detector.run: the corpus traces are tiny, so detector
        # construction and plan compilation (both once-per-object setup,
        # not per-event work) would otherwise swamp the hot path.
        verdicts = []
        total = 0.0
        for _ in range(passes):
            verdicts.clear()
            for _, trace, bindings in cases:
                # adaptive pinned off for the same reason as detector_bench:
                # this leg times the PR 4 compiled-path delta in isolation.
                detector = CommutativityRaceDetector(
                    root=trace.root, keep_reports=False, compiled=compiled,
                    adaptive=False)
                for obj, kind in bindings.items():
                    detector.register_object(
                        obj, registry[kind].representation())
                start = time.perf_counter()
                detector.run(trace)
                total += time.perf_counter() - start
                verdicts.append((detector.stats.races,
                                 detector.stats.conflict_checks))
        return total, verdicts

    _, fast_verdicts = replay_all(True)
    with _seed_stamping():
        _, seed_verdicts = replay_all(False)
    assert fast_verdicts == seed_verdicts, (
        "verdict drift on the golden corpus: "
        f"{fast_verdicts} != {seed_verdicts}")

    def run_seed():
        with _seed_stamping():
            return replay_all(False)[0]

    best_fast, best_seed = _interleaved_best(
        lambda: replay_all(True)[0], run_seed, repeats)
    total = events_per_pass * passes
    return {
        "traces": [name for name, _, _ in cases],
        "events_per_pass": events_per_pass,
        "passes": passes,
        "compiled_seconds": best_fast,
        "seed_seconds": best_seed,
        "compiled_events_per_s": total / best_fast,
        "seed_events_per_s": total / best_seed,
        "speedup": best_seed / best_fast,
    }


# -- epoch-adaptive + columnar batch leg (PR 7) ------------------------------


def contended_trace(events: int, objects: int = 8, threads: int = 64,
                    seed: int = 0, keys: int = 2, lock_rate: float = 0.05,
                    shared_share: float = 0.02, put_share: float = 0.9):
    """Thread-partitioned keys under a shared lock: the epoch sweet spot.

    Every thread owns a private slice of each object's key space and only
    ``shared_share`` of its operations stray into a common pool, so most
    access points are only ever touched (or re-touched in order) by one
    thread — exactly what an epoch certificate covers.  The shared lock,
    taken on ``lock_rate`` of the operations, meanwhile mixes every
    thread's component into every other thread's clock, so the
    full-vector-clock mode pays O(threads) per phase-2 join and per
    phase-1 candidate comparison where the epoch mode pays O(1).  This is
    the realistic shape the paper's Section 6 workloads have: wide clocks,
    mostly thread-local data, occasional genuine sharing (the unlocked
    shared-pool touches keep real races — and promotions — in the trace).
    ``put_share`` skews the mix toward writes, whose conflict degree is 2
    (w conflicts with r and w), doubling the phase-1 comparisons the
    full-VC mode pays per action.
    """
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    worker_tids = list(range(1, threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)
    shadow = [dict() for _ in range(objects)]
    from repro.core.events import NIL
    budget = events - threads  # forks already emitted
    for _ in range(budget):
        tid = rng.choice(worker_tids)
        index = rng.randrange(objects)
        obj = f"d{index}"
        locked = rng.random() < lock_rate
        if locked:
            builder.acquire(tid, "L")
        if rng.random() < shared_share:
            key = f"s{rng.randrange(keys)}"
        else:
            key = f"t{tid}k{rng.randrange(keys)}"
        if rng.random() < put_share:
            value = rng.randrange(8)
            prev = shadow[index].get(key, NIL)
            shadow[index][key] = value
            builder.invoke(tid, obj, "put", key, value, returns=prev)
        else:
            builder.invoke(tid, obj, "get", key,
                           returns=shadow[index].get(key, NIL))
        if locked:
            builder.release(tid, "L")
    return builder.build(stamp=False)


def epoch_batch_bench(trace, objects: int, threads: int,
                      batch_window: int = 256, repeats: int = 5) -> dict:
    """Epoch-adaptive clocks + columnar batching vs. the PR 4 hot path.

    Both sides run the compiled check-plan loop; the baseline pins
    ``adaptive=False, batch_window=0`` (exactly the configuration the PR 4
    gate froze) and the candidate runs epochs plus a columnar check
    window.  Race and conflict-check counts are asserted identical before
    any timing counts — the speedup cannot come from dropping work.
    """
    def run_once(adaptive, window):
        detector = register_all(
            CommutativityRaceDetector(root=0, keep_reports=False,
                                      adaptive=adaptive,
                                      batch_window=window),
            objects)
        return timed_run(detector, trace), detector

    _, fast = run_once(True, batch_window)
    _, slow = run_once(False, 0)
    got = (fast.stats.races, fast.stats.conflict_checks)
    want = (slow.stats.races, slow.stats.conflict_checks)
    assert got == want, f"verdict drift on epoch+batch path: {got} != {want}"

    best_fast, best_base = _interleaved_best(
        lambda: run_once(True, batch_window)[0],
        lambda: run_once(False, 0)[0], repeats)
    return {
        "events": len(trace),
        "objects": objects,
        "threads": threads,
        "batch_window": batch_window,
        "races": fast.stats.races,
        "epoch_promotions": fast.stats.epoch_promotions,
        "epoch_seconds": best_fast,
        "fullvc_seconds": best_base,
        "epoch_events_per_s": len(trace) / best_fast,
        "fullvc_events_per_s": len(trace) / best_base,
        "speedup": best_base / best_fast,
    }


def hotpath_suite(events: int, objects: int, threads: int, seed: int = 0,
                  repeats: int = 5, corpus_passes: int = 20,
                  batch_window: int = 256) -> dict:
    """All four hot-path legs; returns the machine-readable result dict."""
    trace = synthetic_trace(events, objects, threads, seed)
    # The epoch leg pins its own workload shape (64 threads, thread-local
    # keys, write-heavy) regardless of the sweep arguments: wide clocks
    # are what make the O(threads)-vs-O(1) delta the story, and the run
    # must be long enough that per-event costs, not one-off interning,
    # decide the ratio — hence the 100k-event floor even in smoke mode
    # (trace generation is a one-off outside the timers).
    epoch_threads = 64
    epoch_trace = contended_trace(max(events, 100_000), objects=8,
                                  threads=epoch_threads, seed=seed)
    return {
        "benchmark": "hotpath",
        "config": {"events": events, "objects": objects, "threads": threads,
                   "seed": seed, "repeats": repeats,
                   "corpus_passes": corpus_passes,
                   "batch_window": batch_window},
        # The stamping leg has the same floor rationale: 100k events so
        # startup noise can't decide it.
        "stamping": stamping_bench(max(events, 100_000),
                                   threads=max(threads, 16),
                                   seed=seed, repeats=repeats),
        "detector": detector_bench(trace, objects, repeats=repeats),
        "golden_corpus": golden_corpus_bench(repeats=repeats,
                                             passes=corpus_passes),
        "epoch_batch": epoch_batch_bench(epoch_trace, 8, epoch_threads,
                                         batch_window=batch_window,
                                         repeats=repeats),
    }


def hotpath_gate(events: int, objects: int, threads: int, seed: int = 0,
                 repeats: int = 5, corpus_passes: int = 20,
                 json_path: str | None = None,
                 epoch_json_path: str | None = None,
                 stamping_min: float = 1.5,
                 detector_min: float = 1.3,
                 epoch_min: float = 3.0) -> bool:
    """Run the suite, print it, gate on the speedup floors, write the JSON.

    Floors (from the PR acceptance criteria): CoW stamping must be
    >=1.5x the seed stamp on the Phase-A microbench, the compiled
    detector >=1.3x the seed path end-to-end (both PR 4), and the
    epoch-adaptive + columnar-batch detector >=3.0x the compiled
    full-vector-clock path on the contended workload (PR 7).  As with
    the overhead gates, a first-attempt breach triggers one longer
    re-measurement before the verdict sticks.
    """
    def passed(results):
        return (results["stamping"]["speedup"] >= stamping_min
                and results["detector"]["speedup"] >= detector_min
                and results["epoch_batch"]["speedup"] >= epoch_min)

    results = hotpath_suite(events, objects, threads, seed,
                            repeats=repeats, corpus_passes=corpus_passes)
    if not passed(results):
        print(f"\nhot-path gate: stamping {results['stamping']['speedup']:.2f}x "
              f"/ detector {results['detector']['speedup']:.2f}x "
              f"/ epoch+batch {results['epoch_batch']['speedup']:.2f}x below "
              f"the {stamping_min:.1f}x/{detector_min:.1f}x/{epoch_min:.1f}x "
              f"floors on the first attempt; re-measuring")
        results = hotpath_suite(events, objects, threads, seed,
                                repeats=2 * repeats,
                                corpus_passes=corpus_passes)
    ok = passed(results)
    results["gates"] = {
        "stamping_min": stamping_min,
        "detector_min": detector_min,
        "epoch_min": epoch_min,
        "pass": ok,
    }

    stamping, detector, corpus = (results["stamping"], results["detector"],
                                  results["golden_corpus"])
    epoch = results["epoch_batch"]
    print("\nhot-path microbench (interleaved, best of "
          f"{results['config']['repeats']})")
    print(f"  stamping   ({stamping['threads']} threads): "
          f"CoW {stamping['cow_events_per_s']:>9.0f} ev/s, "
          f"seed {stamping['seed_events_per_s']:>9.0f} ev/s -> "
          f"{stamping['speedup']:.2f}x (floor {stamping_min:.1f}x)")
    print(f"  detector   ({detector['objects']} objects): "
          f"compiled {detector['compiled_events_per_s']:>9.0f} ev/s, "
          f"seed {detector['seed_events_per_s']:>9.0f} ev/s -> "
          f"{detector['speedup']:.2f}x (floor {detector_min:.1f}x)")
    print(f"  golden corpus ({len(corpus['traces'])} traces): "
          f"compiled {corpus['compiled_events_per_s']:>9.0f} ev/s, "
          f"seed {corpus['seed_events_per_s']:>9.0f} ev/s -> "
          f"{corpus['speedup']:.2f}x")
    print(f"  epoch+batch ({epoch['threads']} threads, window "
          f"{epoch['batch_window']}): "
          f"epochs {epoch['epoch_events_per_s']:>9.0f} ev/s, "
          f"full VC {epoch['fullvc_events_per_s']:>9.0f} ev/s -> "
          f"{epoch['speedup']:.2f}x (floor {epoch_min:.1f}x, "
          f"{epoch['epoch_promotions']} promotions)")
    print(f"hot-path gate: [{'PASS' if ok else 'FAIL'}]")

    if json_path:
        with open(json_path, "w", encoding="utf-8") as out:
            json.dump(results, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"hot-path results written to {json_path}")
    if epoch_json_path:
        # The PR 7 record stands alone: the epoch+batch leg plus its gate,
        # in the same machine-readable shape as the PR 4 file.
        pr7 = {
            "benchmark": "epoch_batch",
            "config": results["config"],
            "epoch_batch": epoch,
            "gates": {"epoch_min": epoch_min,
                      "pass": epoch["speedup"] >= epoch_min},
        }
        with open(epoch_json_path, "w", encoding="utf-8") as out:
            json.dump(pr7, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"epoch+batch results written to {epoch_json_path}")
    return ok


# -- predictive overhead leg (PR 10) -----------------------------------------


def predict_overhead_gate(repeats: int = 5, passes: int = 10,
                          predict_window: int = 64,
                          max_ratio: float = 2.0,
                          json_path: str | None = None) -> bool:
    """Predictive overhead on the golden corpus, gated at < ``max_ratio``.

    Replays the frozen golden traces witnessed-only and with
    ``predict_window`` set, interleaved best-of-N; the predictive run
    (candidate closures + witness scheduling + validation replays) must
    stay under ``max_ratio`` times the witnessed-only wall time.
    Witnessed verdicts are asserted identical between the modes first —
    the contract says prediction only *adds* — so the gate cannot pass
    by dropping work.  A first-attempt breach triggers one longer
    re-measurement before the verdict sticks.
    """
    registry = bundled_objects()
    cases = []
    for path in sorted(GOLDEN_DIR.glob("*.jsonl")):
        expected_path = GOLDEN_DIR / "expected" / f"{path.stem}.json"
        with open(expected_path, encoding="utf-8") as stream:
            bindings = json.load(stream)["bindings"]
        with open(path, encoding="utf-8") as stream:
            trace = load_trace(stream)
        cases.append((path.stem, trace, bindings))
    if not cases:
        raise SystemExit(f"no golden traces found under {GOLDEN_DIR}")
    events_per_pass = sum(len(trace) for _, trace, _ in cases)

    def replay_all(window):
        verdicts = []
        predictions = 0
        total = 0.0
        for _ in range(passes):
            verdicts.clear()
            predictions = 0
            for _, trace, bindings in cases:
                detector = CommutativityRaceDetector(
                    root=trace.root, predict_window=window)
                for obj, kind in bindings.items():
                    detector.register_object(
                        obj, registry[kind].representation())
                start = time.perf_counter()
                detector.run(trace)
                total += time.perf_counter() - start
                verdicts.append((detector.stats.races,
                                 detector.stats.conflict_checks))
                predictions += len(detector.predicted)
        return total, verdicts, predictions

    print(f"\npredictive overhead gate: {len(cases)} golden traces, "
          f"{events_per_pass} events/pass x {passes} passes, "
          f"window {predict_window} ...")
    _, plain_verdicts, _ = replay_all(0)
    _, predict_verdicts, predicted = replay_all(predict_window)
    assert predict_verdicts == plain_verdicts, (
        "witnessed verdict drift under prediction: "
        f"{predict_verdicts} != {plain_verdicts}")

    def measure(rounds):
        best_plain, best_predict = _interleaved_best(
            lambda: replay_all(0)[0],
            lambda: replay_all(predict_window)[0], rounds)
        return best_plain, best_predict, best_predict / best_plain

    best_plain, best_predict, ratio = measure(repeats)
    if ratio >= max_ratio:
        print(f"  predictive overhead {ratio:.2f}x over the "
              f"{max_ratio:.1f}x budget on the first attempt; re-measuring")
        best_plain, best_predict, ratio = measure(2 * repeats)
    ok = ratio < max_ratio

    print(f"  witnessed-only: {best_plain:.3f}s "
          f"({events_per_pass * passes / best_plain:,.0f} ev/s)")
    print(f"  predictive:     {best_predict:.3f}s "
          f"({events_per_pass * passes / best_predict:,.0f} ev/s, "
          f"{predicted} predicted race(s)/pass)")
    print(f"predictive overhead gate: {ratio:.2f}x of witnessed-only "
          f"(budget {max_ratio:.1f}x) [{'PASS' if ok else 'FAIL'}]")

    if json_path:
        record = {
            "benchmark": "predict_overhead",
            "config": {"traces": [name for name, _, _ in cases],
                       "events_per_pass": events_per_pass,
                       "passes": passes,
                       "predict_window": predict_window,
                       "repeats": repeats},
            "witnessed_seconds": best_plain,
            "predict_seconds": best_predict,
            "predicted_per_pass": predicted,
            "ratio": ratio,
            "gates": {"max_ratio": max_ratio, "pass": ok},
        }
        with open(json_path, "w", encoding="utf-8") as out:
            json.dump(record, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"predictive results written to {json_path}")
    return ok


# -- shared-memory backend fan-out leg (PR 9) --------------------------------


def fanout_trace(events: int, objects: int = 8, threads: int = 768,
                 put_share: float = 0.9, seed: int = 0):
    """Wide-clock fan-out workload: butterfly mixing, then lock-free churn.

    A hypercube gossip prologue (``log2(threads)`` rounds of pairwise
    lock handoffs — concurrent pairs, never a total order, so the
    epoch-adaptive stamping cannot collapse the clocks) leaves every
    thread with a full-width vector clock.  The churn phase then runs
    sync-free put/get rounds on thread-private keys: each stamped action
    carries an O(threads) clock but opens no new synchronization window.
    This is the shape that separates the execution backends — the pickle
    backend re-serializes the wide clock mapping on every single action,
    while the shm rings ship each clock base once per shard and stream
    8-byte stamps after that.
    """
    builder = TraceBuilder(root=0)
    tids = list(range(1, threads + 1))
    for tid in tids:
        builder.fork(0, tid)
    rounds = max(1, (threads - 1).bit_length())
    for r in range(rounds):
        step = 1 << r
        for i in range(threads):
            j = i ^ step
            if j >= threads or i > j:
                continue
            lock = f"m{r}.{i}"
            a, b = tids[i], tids[j]
            builder.acquire(a, lock)
            builder.release(a, lock)
            builder.acquire(b, lock)      # b inherits a's clock
            builder.release(b, lock)
            builder.acquire(a, lock)      # a inherits b's in return
            builder.release(a, lock)
    from repro.core.events import NIL
    rng = random.Random(seed)
    shadow: dict = {}
    for n in range(events):
        tid = tids[n % threads]
        obj = f"d{n % objects}"
        key = f"t{tid}"
        if rng.random() < put_share:
            builder.invoke(tid, obj, "put", key, n, returns=NIL)
            shadow[(obj, key)] = n
        else:
            builder.invoke(tid, obj, "get", key,
                           returns=shadow.get((obj, key), NIL))
    return builder.build(stamp=False)


def backend_fanout_bench(events: int = 60_000, objects: int = 8,
                         threads: int = 768, workers: int = 8,
                         repeats: int = 2, seed: int = 0) -> dict:
    """End-to-end pickle vs. shm on the 8-worker fan-out workload.

    Each backend's warmup run carries an exact-sampling obs registry, so
    the IPC story (bytes on the wire, serialization seconds) comes out of
    the same suite without ever instrumenting a timed run.  Verdicts are
    asserted identical between the backends before any time is believed.
    """
    trace = fanout_trace(events, objects=objects, threads=threads, seed=seed)

    def run_once(backend, obs=None):
        detector = register_all(
            ShardedDetector(root=0, workers=workers, backend=backend,
                            keep_reports=False, obs=obs), objects)
        return timed_run(detector, trace), detector

    ipc: dict = {}
    verdicts = {}
    selected = {}

    def instrumented(backend):
        obs = Registry(sample_interval=1)
        seconds, detector = run_once(backend, obs=obs)
        snap = obs.snapshot()
        counters, timers = snap["counters"], snap["timers"]
        ipc[backend] = {
            "ipc_bytes_pickled": counters.get("ipc_bytes_pickled", 0),
            "shm_bytes_written": counters.get("shm_bytes_written", 0),
            "serialize_seconds": round(
                timers.get("ipc_serialize", {}).get("total_ns", 0) / 1e9, 4),
            "shm_encode_seconds": round(
                timers.get("shm_encode", {}).get("total_ns", 0) / 1e9, 4),
            "shm_ring_hwm": snap["gauges"].get("shm_ring_hwm", 0),
        }
        verdicts[backend] = (detector.stats.races,
                             detector.stats.conflict_checks)
        selected[backend] = detector.backend.selected
        return seconds

    # Warmup (discarded, doubles as the IPC measurement), then alternate.
    instrumented("pickle"), instrumented("shm")
    assert verdicts["pickle"] == verdicts["shm"], (
        f"verdict drift between backends: {verdicts}")
    times: dict = {"pickle": [], "shm": []}
    for _ in range(repeats):
        for backend in ("pickle", "shm"):
            times[backend].append(run_once(backend)[0])
    best = {backend: min(samples) for backend, samples in times.items()}
    return {
        "events": len(trace),
        "churn_events": events,
        "objects": objects,
        "threads": threads,
        "workers": workers,
        "repeats": repeats,
        "selected": selected,
        "races": verdicts["pickle"][0],
        "pickle_seconds": best["pickle"],
        "shm_seconds": best["shm"],
        "pickle_events_per_s": len(trace) / best["pickle"],
        "shm_events_per_s": len(trace) / best["shm"],
        "ipc": ipc,
        "speedup": best["pickle"] / best["shm"],
    }


def backend_gate(events: int = 60_000, objects: int = 8, threads: int = 768,
                 workers: int = 8, repeats: int = 2, seed: int = 0,
                 fanout_min: float = 2.0,
                 json_path: str | None = "BENCH_PR9.json") -> bool:
    """The PR 9 acceptance gate: shm >=2x pickle, end to end, 8 workers.

    Skips (passing, recorded as skipped) when the host cannot select the
    shm backend at all — the fallback chain would silently time pickle
    against itself.  A first-attempt breach triggers one longer
    re-measurement before the verdict sticks, mirroring the other gates.
    """
    from repro.core.backend import shm_available
    if not shm_available():
        print("backend fan-out gate: [SKIP] no shared memory on this host")
        if json_path:
            record = {"benchmark": "backend_fanout",
                      "skipped": "no shared memory on this host"}
            with open(json_path, "w", encoding="utf-8") as out:
                json.dump(record, out, indent=2, sort_keys=True)
                out.write("\n")
        return True

    results = backend_fanout_bench(events, objects, threads, workers,
                                   repeats=repeats, seed=seed)
    if results["speedup"] < fanout_min:
        print(f"\nbackend fan-out gate: {results['speedup']:.2f}x below the "
              f"{fanout_min:.1f}x floor on the first attempt; re-measuring")
        results = backend_fanout_bench(events, objects, threads, workers,
                                       repeats=2 * repeats, seed=seed)
    ok = results["speedup"] >= fanout_min
    results["gates"] = {"fanout_min": fanout_min, "pass": ok}
    record = {"benchmark": "backend_fanout", "fanout": results,
              "gates": results.pop("gates")}

    ipc = results["ipc"]
    print(f"\nbackend fan-out ({results['threads']} threads, "
          f"{results['workers']} workers, {results['events']} events, "
          f"best of {results['repeats']})")
    print(f"  pickle: {results['pickle_seconds']:>7.3f}s "
          f"{results['pickle_events_per_s']:>9.0f} ev/s  "
          f"({ipc['pickle']['ipc_bytes_pickled']:>11,} B pickled, "
          f"{ipc['pickle']['serialize_seconds']:.3f}s serialize)")
    print(f"  shm:    {results['shm_seconds']:>7.3f}s "
          f"{results['shm_events_per_s']:>9.0f} ev/s  "
          f"({ipc['shm']['shm_bytes_written']:>11,} B rings, "
          f"{ipc['shm']['ipc_bytes_pickled']:,} B init pickles)")
    print(f"  speedup: {results['speedup']:.2f}x (floor {fanout_min:.1f}x)")
    print(f"backend fan-out gate: [{'PASS' if ok else 'FAIL'}]")

    if json_path:
        with open(json_path, "w", encoding="utf-8") as out:
            json.dump(record, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"backend fan-out results written to {json_path}")
    return ok


def ipc_report(events: int = 60_000, objects: int = 8, threads: int = 768,
               workers: int = 8, seed: int = 0) -> None:
    """The ``--ipc`` leg: bytes on the wire and serialization seconds.

    One instrumented run per backend over the fan-out workload, printed
    as a per-backend transport table — the IPC contract (init pickles
    stay constant, ring bytes carry the stream) stated in numbers.
    """
    results = backend_fanout_bench(events, objects, threads, workers,
                                   repeats=1, seed=seed)
    ipc = results["ipc"]
    header = (f"{'backend':>8} {'wall s':>8} {'pickled B':>12} "
              f"{'ring B':>12} {'serialize s':>12} {'encode s':>9}")
    print(f"\nIPC transport report ({results['events']} events, "
          f"{threads} threads, {workers} workers)")
    print(header)
    print("-" * len(header))
    for backend in ("pickle", "shm"):
        stats = ipc[backend]
        wall = results[f"{backend}_seconds"]
        print(f"{backend:>8} {wall:>8.3f} "
              f"{stats['ipc_bytes_pickled']:>12,} "
              f"{stats['shm_bytes_written']:>12,} "
              f"{stats['serialize_seconds']:>12.3f} "
              f"{stats['shm_encode_seconds']:>9.3f}")
    print(f"speedup: {results['speedup']:.2f}x "
          f"(shm ring high-water mark {ipc['shm']['shm_ring_hwm']:,} B)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--objects", type=int, default=32)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts to sweep")
    parser.add_argument("--keys", type=int, default=64,
                        help="key space per object (smaller = racier)")
    parser.add_argument("--lock-rate", type=float, default=0.05,
                        help="fraction of ops under a shared lock")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: scaled-down sweep plus the overhead "
                             "and hot-path gates (exit 1 on any breach)")
    parser.add_argument("--hotpath", action="store_true",
                        help="run only the hot-path microbench suite "
                             "(stamping, end-to-end detector, golden "
                             "corpus), write the results JSON, and gate "
                             "on the speedup floors (exit 1 on a breach)")
    parser.add_argument("--stream", action="store_true",
                        help="run only the streaming memory gate: peak "
                             "active+interned points of a pruning "
                             "StreamAnalyzer over a joinall-heavy phased "
                             "trace must stay under 10%% of the unpruned "
                             "footprint (exit 1 on a breach)")
    parser.add_argument("--predict", action="store_true",
                        help="run only the predictive overhead gate: the "
                             "golden corpus with --predict-style analysis "
                             "must stay under 2x the witnessed-only wall "
                             "time (exit 1 on a breach)")
    parser.add_argument("--predict-json", metavar="PATH",
                        default="BENCH_PR10.json",
                        help="where --predict writes the predictive leg's "
                             "record (default: %(default)s)")
    parser.add_argument("--ipc", action="store_true",
                        help="run only the IPC transport report: one "
                             "instrumented fan-out run per execution "
                             "backend, printing bytes on the wire and "
                             "serialization seconds for each")
    parser.add_argument("--hotpath-json", metavar="PATH",
                        default="BENCH_PR4.json",
                        help="where --hotpath/--smoke write the hot-path "
                             "results (default: %(default)s)")
    parser.add_argument("--epoch-json", metavar="PATH",
                        default="BENCH_PR7.json",
                        help="where --hotpath/--smoke write the "
                             "epoch+batch leg's standalone record "
                             "(default: %(default)s)")
    parser.add_argument("--backend-json", metavar="PATH",
                        default="BENCH_PR9.json",
                        help="where --hotpath/--smoke write the backend "
                             "fan-out leg's record "
                             "(default: %(default)s)")
    parser.add_argument("--stats-json", metavar="PATH",
                        help="write the sequential run's observability "
                             "report (exact sampling) to PATH")
    args = parser.parse_args(argv)
    if args.smoke:
        args.events = min(args.events, 20_000)
        args.objects = min(args.objects, 8)
        args.threads = min(args.threads, 4)
        args.workers = "2"
    worker_counts = [int(w) for w in args.workers.split(",")]

    if args.stream:
        # The gate's default workload is 200k events (the acceptance
        # criterion's size); an explicit --events overrides it.
        import sys
        given = argv if argv is not None else sys.argv[1:]
        events = args.events if "--events" in given else 200_000
        ok = streaming_memory_gate(events=events, seed=args.seed)
        return 0 if ok else 1

    if args.predict:
        ok = predict_overhead_gate(repeats=3 if args.smoke else 5,
                                   passes=5 if args.smoke else 10,
                                   json_path=args.predict_json)
        return 0 if ok else 1

    if args.ipc:
        ipc_report(seed=args.seed)
        return 0

    if args.hotpath:
        ok = hotpath_gate(args.events, args.objects, args.threads,
                          seed=args.seed,
                          repeats=3 if args.smoke else 5,
                          corpus_passes=10 if args.smoke else 25,
                          json_path=args.hotpath_json,
                          epoch_json_path=args.epoch_json)
        ok = backend_gate(seed=args.seed,
                          repeats=1 if args.smoke else 2,
                          json_path=args.backend_json) and ok
        return 0 if ok else 1

    print(f"generating {args.events} events over {args.objects} objects, "
          f"{args.threads} threads ...")
    trace = synthetic_trace(args.events, args.objects, args.threads,
                            args.seed, keys=args.keys,
                            lock_rate=args.lock_rate)

    # Throughput mode: count races, don't materialize reports (the same
    # keep_reports=False knob the long sequential benchmarks use).
    sequential = register_all(
        CommutativityRaceDetector(root=0, keep_reports=False), args.objects)
    seq_seconds = timed_run(sequential, trace)
    baseline = (len(trace) / seq_seconds, seq_seconds)
    reference = (sequential.stats.races, sequential.stats.conflict_checks)

    # Phase-A share of the sequential cost bounds the parallel speedup.
    probe = ShardedDetector(root=0, workers=0)
    start = time.perf_counter()
    probe._stamp_and_partition(trace)
    phase_a_seconds = time.perf_counter() - start
    serial_share = min(1.0, phase_a_seconds / seq_seconds)
    amdahl = 1.0 / (serial_share + (1 - serial_share) / max(worker_counts))

    header = f"{'config':>12} {'seconds':>9} {'events/s':>10} {'speedup':>8}"
    print(f"\n{header}\n{'-' * len(header)}")
    print(f"{'sequential':>12} {seq_seconds:>9.3f} "
          f"{baseline[0]:>10.0f} {'1.00x':>8}")
    for workers in worker_counts:
        detector = register_all(
            ShardedDetector(root=0, workers=workers, keep_reports=False),
            args.objects)
        seconds = timed_run(detector, trace)
        got = (detector.stats.races, detector.stats.conflict_checks)
        assert got == reference, (
            f"verdict drift at workers={workers}: {got} != {reference}")
        speedup = seq_seconds / seconds
        print(f"{f'{workers} workers':>12} {seconds:>9.3f} "
              f"{len(trace) / seconds:>10.0f} {speedup:>7.2f}x")
    print(f"\nphase A (sequential HB pass): {phase_a_seconds:.3f}s "
          f"({serial_share:.0%} of sequential run)")
    print(f"Amdahl ceiling at {max(worker_counts)} workers: "
          f"{amdahl:.2f}x; races found: {reference[0]}")

    if args.stats_json:
        obs = Registry(sample_interval=1)
        instrumented = register_all(
            CommutativityRaceDetector(root=0, keep_reports=False, obs=obs),
            args.objects)
        instrumented.run(trace)
        from repro.obs import publish_detector_stats
        publish_detector_stats(obs, instrumented.stats)
        report = build_report(obs, meta={
            "detector": "rd2", "workers": 1, "events": len(trace),
            "trace": "synthetic", "seed": args.seed,
        })
        with open(args.stats_json, "w", encoding="utf-8") as out:
            write_report(report, out)
        print(f"observability report written to {args.stats_json}")

    if args.smoke:
        # The observability gate times the default (compiled) detector, so
        # the compiled path is also held to the existing 5% obs budget.
        ok = overhead_gate(trace, args.objects)
        ok = supervisor_overhead_gate(trace, args.objects) and ok
        ok = hotpath_gate(args.events, args.objects, args.threads,
                          seed=args.seed, repeats=3, corpus_passes=10,
                          json_path=args.hotpath_json,
                          epoch_json_path=args.epoch_json) and ok
        ok = backend_gate(seed=args.seed, repeats=1,
                          json_path=args.backend_json) and ok
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
