#!/usr/bin/env python
"""Parallel scaling: throughput of the two-phase sharded analyzer.

Generates a synthetic multi-object trace (default 100k events: dictionary
shards under put/get/size churn from several unordered threads), runs the
sequential :class:`CommutativityRaceDetector` as the baseline, then the
:class:`ShardedDetector` at increasing worker counts, and reports
events/second plus speedup over the sequential pass.  The differential
guarantee is asserted on the way: every configuration must report the
same number of races and conflict checks.

The pipeline's phase A (the happens-before pass) is inherently
sequential, so Amdahl bounds the speedup by the phase-B share of the
sequential runtime — the report prints that share so the measured
scaling can be judged against the ceiling.  On a single-CPU container the
pool configurations show overhead, not speedup; run on >=4 cores to see
the paper-style scaling (>=1.8x at 4 workers is typical, since phase B
dominates at realistic object counts).

``--smoke`` runs a scaled-down sweep plus two 5%-budget gates the CI
smoke job enforces (each fails the run with exit 1 on a breach): the
*observability overhead gate* (detector timed with metrics disabled vs.
the sampled registry enabled) and the *supervisor overhead gate* (the
sharded pool timed with shard supervision on vs. the bare ``pool.map``
baseline, on the fault-free path).

Run:  PYTHONPATH=src python bench/parallel_scaling.py [--events N]
          [--objects K] [--threads T] [--workers 1,2,4]
      PYTHONPATH=src python bench/parallel_scaling.py --smoke
"""

from __future__ import annotations

import argparse
import random
import time

from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.core.trace import TraceBuilder
from repro.obs import Registry, build_report, write_report
from repro.specs.dictionary import dictionary_representation


def synthetic_trace(events: int, objects: int, threads: int, seed: int = 0,
                    keys: int = 64, lock_rate: float = 0.05):
    """A put/get/size workload spread over ``objects`` dictionaries.

    Returns come from a per-object shadow dict, so the trace is a
    consistent execution.  ``keys`` sizes each object's key space and
    ``lock_rate`` the fraction of operations done under a shared lock —
    together they set the race density (smaller key space, less locking:
    more races).
    """
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    worker_tids = list(range(1, threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)
    shadow = [dict() for _ in range(objects)]
    from repro.core.events import NIL
    budget = events - threads  # forks already emitted
    for _ in range(budget):
        tid = rng.choice(worker_tids)
        index = rng.randrange(objects)
        obj = f"d{index}"
        locked = rng.random() < lock_rate
        if locked:
            builder.acquire(tid, "L")
        roll = rng.random()
        if roll < 0.6:
            key = f"k{rng.randrange(keys)}"
            value = rng.randrange(8)
            prev = shadow[index].get(key, NIL)
            shadow[index][key] = value
            builder.invoke(tid, obj, "put", key, value, returns=prev)
        elif roll < 0.9:
            key = f"k{rng.randrange(keys)}"
            builder.invoke(tid, obj, "get", key,
                           returns=shadow[index].get(key, NIL))
        else:
            size = sum(1 for v in shadow[index].values() if v is not NIL)
            builder.invoke(tid, obj, "size", returns=size)
        if locked:
            builder.release(tid, "L")
    return builder.build(stamp=False)


def register_all(detector, objects: int):
    for index in range(objects):
        detector.register_object(f"d{index}", dictionary_representation())
    return detector


def timed_run(detector, trace):
    start = time.perf_counter()
    detector.run(trace)
    return time.perf_counter() - start


def overhead_gate(trace, objects: int, repeats: int = 12,
                  threshold: float = 0.05) -> bool:
    """Time the detector with obs off vs. sampled obs on; gate at 5%.

    One warmup run of each mode first (the first runs after startup pay
    allocator growth and code warmup that would otherwise be charged to
    whichever mode goes first), then the modes alternate and the
    best-of-``repeats`` wall times are compared, so slow outliers and
    machine drift don't decide the verdict.
    """
    def run_once(obs):
        detector = register_all(
            CommutativityRaceDetector(root=0, keep_reports=False, obs=obs),
            objects)
        return timed_run(detector, trace)

    def measure(rounds):
        run_once(None), run_once(Registry())        # warmup, discarded
        off, on = [], []
        for _ in range(rounds):
            off.append(run_once(None))
            on.append(run_once(Registry()))
        return min(on) / min(off) - 1.0, min(off), min(on)

    overhead, best_off, best_on = measure(repeats)
    if overhead > threshold:
        # One noise spike shouldn't fail CI: confirm with a longer rerun.
        print(f"\nobservability overhead gate: {overhead:+.1%} over a "
              f"{threshold:.0%} budget on the first attempt; re-measuring")
        overhead, best_off, best_on = measure(2 * repeats)
    verdict = "PASS" if overhead <= threshold else "FAIL"
    print(f"\nobservability overhead gate: disabled {best_off:.3f}s, "
          f"enabled {best_on:.3f}s -> {overhead:+.1%} "
          f"(budget {threshold:.0%}) [{verdict}]")
    return overhead <= threshold


def supervisor_overhead_gate(trace, objects: int, workers: int = 2,
                             repeats: int = 5,
                             threshold: float = 0.05) -> bool:
    """Time the sharded pool with supervision on vs. off; gate at 5%.

    Supervision replaces one ``pool.map`` with per-job ``apply_async`` +
    timed ``get``; on the fault-free path that must be noise, not a tax.
    Pool startup dominates these runs (and is identical in both modes), so
    fewer repeats suffice than for the in-process observability gate; the
    same warmup / alternate / best-of-N / re-measure discipline applies.
    """
    def run_once(supervise):
        detector = register_all(
            ShardedDetector(root=0, workers=workers, keep_reports=False,
                            supervise=supervise),
            objects)
        return timed_run(detector, trace)

    def measure(rounds):
        run_once(False), run_once(True)             # warmup, discarded
        bare, supervised = [], []
        for _ in range(rounds):
            bare.append(run_once(False))
            supervised.append(run_once(True))
        return min(supervised) / min(bare) - 1.0, min(bare), min(supervised)

    overhead, best_bare, best_sup = measure(repeats)
    if overhead > threshold:
        print(f"\nsupervisor overhead gate: {overhead:+.1%} over a "
              f"{threshold:.0%} budget on the first attempt; re-measuring")
        overhead, best_bare, best_sup = measure(2 * repeats)
    verdict = "PASS" if overhead <= threshold else "FAIL"
    print(f"\nsupervisor overhead gate ({workers} workers): bare pool.map "
          f"{best_bare:.3f}s, supervised {best_sup:.3f}s -> {overhead:+.1%} "
          f"(budget {threshold:.0%}) [{verdict}]")
    return overhead <= threshold


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--objects", type=int, default=32)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts to sweep")
    parser.add_argument("--keys", type=int, default=64,
                        help="key space per object (smaller = racier)")
    parser.add_argument("--lock-rate", type=float, default=0.05,
                        help="fraction of ops under a shared lock")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: scaled-down sweep plus the "
                             "observability overhead gate (exit 1 on a "
                             "budget breach)")
    parser.add_argument("--stats-json", metavar="PATH",
                        help="write the sequential run's observability "
                             "report (exact sampling) to PATH")
    args = parser.parse_args(argv)
    if args.smoke:
        args.events = min(args.events, 20_000)
        args.objects = min(args.objects, 8)
        args.threads = min(args.threads, 4)
        args.workers = "2"
    worker_counts = [int(w) for w in args.workers.split(",")]

    print(f"generating {args.events} events over {args.objects} objects, "
          f"{args.threads} threads ...")
    trace = synthetic_trace(args.events, args.objects, args.threads,
                            args.seed, keys=args.keys,
                            lock_rate=args.lock_rate)

    # Throughput mode: count races, don't materialize reports (the same
    # keep_reports=False knob the long sequential benchmarks use).
    sequential = register_all(
        CommutativityRaceDetector(root=0, keep_reports=False), args.objects)
    seq_seconds = timed_run(sequential, trace)
    baseline = (len(trace) / seq_seconds, seq_seconds)
    reference = (sequential.stats.races, sequential.stats.conflict_checks)

    # Phase-A share of the sequential cost bounds the parallel speedup.
    probe = ShardedDetector(root=0, workers=0)
    start = time.perf_counter()
    probe._stamp_and_partition(trace)
    phase_a_seconds = time.perf_counter() - start
    serial_share = min(1.0, phase_a_seconds / seq_seconds)
    amdahl = 1.0 / (serial_share + (1 - serial_share) / max(worker_counts))

    header = f"{'config':>12} {'seconds':>9} {'events/s':>10} {'speedup':>8}"
    print(f"\n{header}\n{'-' * len(header)}")
    print(f"{'sequential':>12} {seq_seconds:>9.3f} "
          f"{baseline[0]:>10.0f} {'1.00x':>8}")
    for workers in worker_counts:
        detector = register_all(
            ShardedDetector(root=0, workers=workers, keep_reports=False),
            args.objects)
        seconds = timed_run(detector, trace)
        got = (detector.stats.races, detector.stats.conflict_checks)
        assert got == reference, (
            f"verdict drift at workers={workers}: {got} != {reference}")
        speedup = seq_seconds / seconds
        print(f"{f'{workers} workers':>12} {seconds:>9.3f} "
              f"{len(trace) / seconds:>10.0f} {speedup:>7.2f}x")
    print(f"\nphase A (sequential HB pass): {phase_a_seconds:.3f}s "
          f"({serial_share:.0%} of sequential run)")
    print(f"Amdahl ceiling at {max(worker_counts)} workers: "
          f"{amdahl:.2f}x; races found: {reference[0]}")

    if args.stats_json:
        obs = Registry(sample_interval=1)
        instrumented = register_all(
            CommutativityRaceDetector(root=0, keep_reports=False, obs=obs),
            args.objects)
        instrumented.run(trace)
        from repro.obs import publish_detector_stats
        publish_detector_stats(obs, instrumented.stats)
        report = build_report(obs, meta={
            "detector": "rd2", "workers": 1, "events": len(trace),
            "trace": "synthetic", "seed": args.seed,
        })
        with open(args.stats_json, "w", encoding="utf-8") as out:
            write_report(report, out)
        print(f"observability report written to {args.stats_json}")

    if args.smoke:
        ok = overhead_gate(trace, args.objects)
        ok = supervisor_overhead_gate(trace, args.objects) and ok
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
