#!/usr/bin/env python
"""Throughput of the exhaustive spec checker.

Verification runs on every push (the ``spec-verify`` CI job), so the
sweep must stay cheap.  This benchmark times ``verify_spec`` per kind at
the registry's default depth and one level deeper, and reports reachable
states, realizable actions, checked action pairs, and pairs/second — the
number that degrades first if a registry invocation grid grows careless.

::

    PYTHONPATH=src python bench/spec_verify.py
    PYTHONPATH=src python bench/spec_verify.py --depth 4 --repeat 5
    PYTHONPATH=src python bench/spec_verify.py --gate 2.0   # fail if any
                                                            # kind > 2s

The ``--gate`` option makes the script CI-usable: it exits 1 if any
single kind's verification exceeds the budget (seconds), which is how a
combinatorial blow-up in a bounded universe shows up before it slows
every push.
"""

import argparse
import sys
import time

from repro.obs import Registry
from repro.verify import verifiable_objects, verify_spec


def bench_kind(kind, depth, repeat):
    entry = verifiable_objects()[kind]
    domain = entry.domain(depth)
    spec = entry.spec()
    semantics = entry.semantics()
    waivers = entry.waiver_map()
    best = None
    pairs = 0
    for _ in range(repeat):
        obs = Registry(sample_interval=1)
        start = time.perf_counter()
        verdict = verify_spec(spec, semantics, domain, waivers, obs=obs)
        elapsed = time.perf_counter() - start
        if not verdict.ok:
            raise SystemExit(f"{kind}: verification FAILED during bench")
        pairs = obs.snapshot()["counters"]["verify_action_pairs"]
        best = elapsed if best is None else min(best, elapsed)
    described = domain.describe()
    return {"kind": kind, "depth": described["depth"],
            "states": described["states"], "actions": described["actions"],
            "action_pairs": pairs, "seconds": best,
            "pairs_per_sec": pairs / best if best else float("inf")}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("kinds", nargs="*",
                        help="kinds to benchmark (default: all)")
    parser.add_argument("--depth", type=int, default=None,
                        help="override the per-kind default depth")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions, best-of (default 3)")
    parser.add_argument("--gate", type=float, default=None, metavar="SECS",
                        help="exit 1 if any kind exceeds this budget")
    args = parser.parse_args(argv)

    kinds = args.kinds or sorted(verifiable_objects())
    header = (f"{'kind':<16} {'depth':>5} {'states':>7} {'actions':>8} "
              f"{'pairs':>9} {'seconds':>9} {'pairs/s':>10}")
    print(header)
    print("-" * len(header))
    breaches = []
    for kind in kinds:
        row = bench_kind(kind, args.depth, args.repeat)
        print(f"{row['kind']:<16} {row['depth']:>5} {row['states']:>7} "
              f"{row['actions']:>8} {row['action_pairs']:>9} "
              f"{row['seconds']:>9.4f} {row['pairs_per_sec']:>10.0f}")
        if args.gate is not None and row["seconds"] > args.gate:
            breaches.append((kind, row["seconds"]))
    if breaches:
        for kind, seconds in breaches:
            print(f"GATE BREACH: {kind} took {seconds:.3f}s "
                  f"(budget {args.gate:.3f}s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
