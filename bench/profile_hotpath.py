#!/usr/bin/env python
"""Profile the detector's per-event hot path over a golden trace.

Replays one frozen trace from ``tests/data`` through the sequential
detector many times under :mod:`cProfile` and prints the top functions by
cumulative time — the view that surfaced the pre-PR-4 costs (per-event
``freeze()`` dict copies, ``points_of`` re-validation, candidate
generators) and that should now show the compiled plan loop at the top.

Run:  PYTHONPATH=src python bench/profile_hotpath.py
          [--trace NAME] [--passes N] [--top N] [--seed-path]

``--seed-path`` profiles the baseline instead (``compiled=False`` under
the seed's copying clock stamp), for before/after comparisons.
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from parallel_scaling import GOLDEN_DIR, _seed_stamping  # noqa: E402

from repro.core.detector import CommutativityRaceDetector  # noqa: E402
from repro.core.serialize import load_trace  # noqa: E402
from repro.specs import bundled_objects  # noqa: E402


def load_case(name: str):
    import json
    expected_path = GOLDEN_DIR / "expected" / f"{name}.json"
    if not expected_path.exists():
        known = sorted(path.stem for path in GOLDEN_DIR.glob("*.jsonl"))
        raise SystemExit(f"unknown golden trace {name!r}; "
                         f"choose from: {', '.join(known)}")
    with open(expected_path, encoding="utf-8") as stream:
        bindings = json.load(stream)["bindings"]
    with open(GOLDEN_DIR / f"{name}.jsonl", encoding="utf-8") as stream:
        trace = load_trace(stream)
    return trace, bindings


def replay(trace, bindings, passes: int, compiled: bool) -> None:
    registry = bundled_objects()
    for _ in range(passes):
        detector = CommutativityRaceDetector(
            root=trace.root, keep_reports=False, compiled=compiled)
        for obj, kind in bindings.items():
            detector.register_object(obj, registry[kind].representation())
        detector.run(trace)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="multi_object_mixed",
                        help="golden trace name under tests/data "
                             "(default: %(default)s)")
    parser.add_argument("--passes", type=int, default=500,
                        help="replays per profile run (default: %(default)s)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cumulative-time table to print")
    parser.add_argument("--seed-path", action="store_true",
                        help="profile the seed path (compiled=False plus "
                             "the copying clock stamp) instead of the "
                             "compiled hot path")
    args = parser.parse_args(argv)

    trace, bindings = load_case(args.trace)
    mode = "seed" if args.seed_path else "compiled"
    print(f"profiling {mode} path: {args.passes} passes over "
          f"{args.trace!r} ({len(trace)} events)\n")

    profiler = cProfile.Profile()
    if args.seed_path:
        with _seed_stamping():
            profiler.runcall(replay, trace, bindings, args.passes, False)
    else:
        profiler.runcall(replay, trace, bindings, args.passes, True)

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
