"""Legacy setup shim.

The offline environment this project targets ships setuptools but not the
``wheel`` package, so PEP 660 editable installs (which build a wheel) fail.
Keeping a ``setup.py`` and omitting ``[build-system]`` from pyproject.toml
lets ``pip install -e .`` fall back to the classic ``setup.py develop``
path, which needs neither network access nor ``wheel``.
"""

from setuptools import setup

setup()
