"""Pytest fixtures; the strategy helpers live in tests.support."""

from typing import Dict

import pytest
from hypothesis import settings

from repro.specs import BundledObject, bundled_objects

# Derandomize property tests: every run explores the same example sequence,
# so the suite's verdict is reproducible (matching the repository-wide
# everything-is-seeded policy).
settings.register_profile("deterministic", derandomize=True)
settings.load_profile("deterministic")


@pytest.fixture(scope="session")
def bundle() -> Dict[str, BundledObject]:
    return bundled_objects()
