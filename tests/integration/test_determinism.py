"""Cross-run determinism of the whole stack (a substitution requirement:
seeded scheduling must make every experiment reproducible)."""

import pytest

from repro.apps.polepos.circuits import CIRCUITS, CircuitConfig, run_circuit
from repro.bench.fig4 import run_fig4
from repro.bench.scaling import scaling_trace
from repro.runtime.analyzers import FastTrackAnalyzer, Rd2Analyzer
from repro.runtime.monitor import Monitor
from repro.sched.workload import WorkloadConfig, generate_trace


def tiny(name, ops=20):
    config = CIRCUITS[name]
    return CircuitConfig(**{**config.__dict__, "ops_per_worker": ops})


class TestCircuitDeterminism:
    @pytest.mark.parametrize("name", ["ComplexConcurrency",
                                      "InsertCentricConcurrency"])
    def test_identical_race_reports_across_runs(self, name):
        def run_once():
            rd2, fasttrack = Rd2Analyzer(), FastTrackAnalyzer()
            monitor = Monitor(analyzers=[rd2, fasttrack])
            run_circuit(tiny(name), monitor, seed=13)
            return ([str(r) for r in rd2.races()],
                    [str(r) for r in fasttrack.races()])

        assert run_once() == run_once()

    def test_different_seeds_vary_interleavings(self):
        def count_races(seed):
            rd2 = Rd2Analyzer()
            monitor = Monitor(analyzers=[rd2])
            run_circuit(tiny("ComplexConcurrency"), monitor, seed=seed)
            return len(rd2.races())

        counts = {count_races(seed) for seed in range(5)}
        assert len(counts) > 1, "seeds should explore distinct schedules"

    def test_event_stream_identical_across_configs(self):
        """The same seed must produce the same trace whether or not
        analyzers are attached — otherwise Table 2 cells would not be
        comparable."""
        def stream(analyzers):
            monitor = Monitor(analyzers=analyzers, record_trace=True)
            run_circuit(tiny("ComplexConcurrency", ops=10), monitor, seed=3)
            return [str(event) for event in monitor.trace]

        with_rd2 = stream([Rd2Analyzer()])
        with_ft = stream([FastTrackAnalyzer()])
        assert with_rd2 == with_ft


class TestGeneratorDeterminism:
    def test_workload_generator(self):
        config = WorkloadConfig(threads=3, ops_per_thread=12, seed=21)
        assert ([str(e) for e in generate_trace(config).trace]
                == [str(e) for e in generate_trace(config).trace])

    def test_scaling_trace(self):
        first = scaling_trace(50, seed=2)
        second = scaling_trace(50, seed=2)
        assert [str(e) for e in first] == [str(e) for e in second]

    def test_fig4_counts_stable(self):
        assert run_fig4(put_counts=(7,)) == run_fig4(put_counts=(7,))
