"""Differential harness: streaming analysis ≡ batch analysis.

Streaming changes *when* the detector works — incrementally, with
periodic pruning, intern eviction and thread retirement — but must never
change *what* it reports: race reports byte-identical (clocks included)
to the batch detector on the same trace, across a 120-seed random
corpus, hypothesis-shrunk programs with pruning on and off, and through
a real on-disk follow of a trace written (and killed) underneath the
reader.  The memory side of the bargain is checked too: on a
joinall-heavy workload the footprint tracks the *concurrent* footprint,
not the history.
"""

import os
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings

from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.core.serialize import TailReader, dump_trace, dumps_trace
from repro.core.stream import StreamAnalyzer, follow_analyze
from repro.testing.faults import truncate_file

from tests.support import (build_multi_object_trace, multi_object_programs,
                           race_snapshot, random_multi_object_program,
                           register_bindings)

DIFFERENTIAL_SEEDS = range(120)


def batch_run(trace, bindings, **kw):
    detector = register_bindings(
        CommutativityRaceDetector(root=trace.root, **kw), bindings)
    detector.run(trace)
    return detector


def stream_run(trace, bindings, **kw):
    kw.setdefault("prune_interval", 3)
    kw.setdefault("window", 5)
    analyzer = register_bindings(
        StreamAnalyzer(root=trace.root, **kw), bindings)
    analyzer.run(trace)
    return analyzer


def snapshots(detector_or_analyzer):
    return [race_snapshot(r) for r in detector_or_analyzer.races]


class TestStreamingCorpus:
    def test_byte_identical_across_120_seeds(self):
        """Pruning + eviction + retirement change nothing reported."""
        nonempty = 0
        for seed in DIFFERENTIAL_SEEDS:
            trace, bindings = build_multi_object_trace(
                random_multi_object_program(seed))
            batch = batch_run(trace, bindings)
            streamed = stream_run(trace, bindings)
            assert snapshots(streamed) == snapshots(batch), f"seed {seed}"
            nonempty += bool(batch.races)
        assert nonempty >= 20  # the corpus must exercise the race paths

    @given(multi_object_programs())
    @settings(max_examples=50, deadline=None)
    def test_streaming_property_prune_on(self, program):
        trace, bindings = build_multi_object_trace(program)
        batch = batch_run(trace, bindings)
        streamed = stream_run(trace, bindings, prune_interval=1, window=2)
        assert snapshots(streamed) == snapshots(batch)

    @given(multi_object_programs())
    @settings(max_examples=30, deadline=None)
    def test_streaming_property_prune_off(self, program):
        trace, bindings = build_multi_object_trace(program)
        batch = batch_run(trace, bindings)
        streamed = stream_run(trace, bindings, prune_interval=0)
        assert snapshots(streamed) == snapshots(batch)
        # Without pruning nothing may be evicted either.
        assert streamed.stats.interned_points_evicted == 0

    def test_sharded_pruning_matches_sequential(self):
        """--prune-interval through the two-phase pipeline: same races,
        same prune/eviction counters, shard for shard."""
        for seed in range(40):
            trace, bindings = build_multi_object_trace(
                random_multi_object_program(seed))
            sequential = batch_run(trace, bindings, prune_interval=3)
            sharded = register_bindings(
                ShardedDetector(root=trace.root, workers=0,
                                prune_interval=3), bindings)
            sharded.run(trace)
            assert snapshots(sharded) == snapshots(sequential), f"seed {seed}"
            assert sharded.stats.points_pruned \
                == sequential.stats.points_pruned
            assert sharded.stats.interned_points_evicted \
                == sequential.stats.interned_points_evicted


class TestMemoryBound:
    def phased_program(self, phases=6, threads=3, ops=12):
        """fork/churn/joinall cycles with phase-scoped dictionary keys."""
        from repro.core.events import NIL
        from repro.core.trace import TraceBuilder
        import random as _random
        rng = _random.Random(9)
        builder = TraceBuilder(root=0)
        next_tid = 1
        shadow = {}  # keys are phase-scoped, so one shadow serves them all
        for phase in range(phases):
            tids = list(range(next_tid, next_tid + threads))
            next_tid += threads
            for tid in tids:
                builder.fork(0, tid)
            for _ in range(ops):
                tid = rng.choice(tids)
                key = f"p{phase}k{rng.randrange(4)}"
                prev = shadow.get(key, NIL)
                shadow[key] = rng.randrange(4)
                builder.invoke(tid, "d", "put", key, shadow[key],
                               returns=prev)
            for tid in tids:
                builder.join(0, tid)
        # One root action after the last joinall: pruning triggers on
        # actions, so without it the final phase would never be reclaimed.
        builder.invoke(0, "d", "put", "zfinal", 1, returns=NIL)
        return builder.build()

    def test_footprint_tracks_concurrency_not_history(self):
        trace = self.phased_program()
        bindings = {"d": "dictionary"}
        unpruned = batch_run(trace, bindings)
        streamed = stream_run(trace, bindings, prune_interval=1, window=2)
        # One phase is live at a time: the streaming peak must be on the
        # scale of one phase's footprint, far under the full history the
        # unpruned detector retains.
        history = (unpruned.active_point_count()
                   + unpruned.interned_point_count())
        peak = streamed.peak_active + streamed.peak_interned
        assert peak < history / 2
        detector = streamed.detector
        assert detector.active_point_count() == 0  # all phases joined
        assert detector.interned_point_count() == 0
        assert streamed.stats.interned_points_evicted > 0
        # ...and only the live threads' clocks remain.
        assert detector.happens_before.known_threads() == {0}
        assert snapshots(streamed) == snapshots(unpruned)


class TestFollowLiveWriter:
    def build_analyzer(self, bindings, **kw):
        kw.setdefault("prune_interval", 2)
        kw.setdefault("window", 3)
        return lambda root: register_bindings(
            StreamAnalyzer(root=root, **kw), bindings)

    def test_follow_a_trace_while_it_is_written(self, tmp_path):
        trace, bindings = build_multi_object_trace(
            random_multi_object_program(0))
        assert len(trace) > 10
        text = dumps_trace(trace)
        lines = text.splitlines(keepends=True)
        path = str(tmp_path / "live.jsonl")

        def writer():
            with open(path, "w", encoding="utf-8") as out:
                for line in lines:
                    # Tear each record across two flushes so the reader
                    # sees genuine partial tails, not just slow lines.
                    out.write(line[:3])
                    out.flush()
                    time.sleep(0.002)
                    out.write(line[3:])
                    out.flush()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            analyzer, status = follow_analyze(
                path, self.build_analyzer(bindings),
                poll_interval=0.001, idle_timeout=5.0)
        finally:
            thread.join()
        assert status.complete
        assert status.events_read == len(trace)
        batch = batch_run(trace, bindings)
        assert snapshots(analyzer) == snapshots(batch)

    def test_killed_writer_does_not_wedge_the_reader(self, tmp_path):
        """A writer dead mid-record: the follow ends at the idle budget
        with a resume offset, and resuming after the writer's restart
        yields the full batch verdict."""
        trace, bindings = build_multi_object_trace(
            random_multi_object_program(0))
        text = dumps_trace(trace)
        path = str(tmp_path / "killed.jsonl")
        with open(path, "w", encoding="utf-8") as out:
            out.write(text)
        truncate_file(path, drop_bytes=9)  # SIGKILL mid-record, simulated

        reader = TailReader(path)
        start = time.monotonic()
        analyzer, status = follow_analyze(
            path, self.build_analyzer(bindings),
            poll_interval=0.001, idle_timeout=0.05, reader=reader)
        assert time.monotonic() - start < 2.0  # returned, not wedged
        assert not status.complete
        assert status.truncated_tail
        assert 0 < status.events_read < len(trace)
        assert 0 < status.resume_offset < len(text.encode())

        # The writer comes back and finishes the file; a fresh reader
        # resumes from the recorded offset without replaying the prefix.
        with open(path, "w", encoding="utf-8") as out:
            out.write(text)
        resumed = TailReader(path, resume_offset=status.resume_offset,
                             root=reader.root,
                             declared_events=reader.declared_events,
                             events_read=status.events_read)
        for event in resumed.poll():
            analyzer.process(event)
        assert resumed.done
        analyzer.finish()
        batch = batch_run(trace, bindings)
        assert snapshots(analyzer) == snapshots(batch)


TRACE = "tests/data/multi_object_mixed.jsonl"
OBJECTS = ("--object", "a=accumulator", "--object", "d=dictionary",
           "--object", "r=register")


def run_cli(*argv, env_extra=None):
    env = dict(os.environ, PYTHONPATH="src")
    env.update(env_extra or {})
    repo = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    return subprocess.run([sys.executable, "-m", "repro.cli", *argv],
                          capture_output=True, text=True, env=env, cwd=repo)


class TestFollowCli:
    def test_follow_matches_batch_report(self, tmp_path):
        batch = run_cli(TRACE, *OBJECTS)
        followed = run_cli(TRACE, *OBJECTS, "--follow", "--window", "7",
                           "--prune-interval", "3", "--follow-timeout", "5")
        assert followed.returncode == batch.returncode == 1
        # Same grouped summary; the follow run additionally streamed each
        # race as it was found.
        assert followed.stdout.count("race:") >= 1
        batch_groups = [l for l in batch.stdout.splitlines()
                        if l.startswith("  ")]
        follow_groups = [l for l in followed.stdout.splitlines()
                         if l.startswith("  ")]
        assert follow_groups == batch_groups

    def test_follow_reports_incomplete_trace_on_stderr(self, tmp_path):
        text = open(TRACE, encoding="utf-8").read()
        path = str(tmp_path / "partial.jsonl")
        with open(path, "w", encoding="utf-8") as out:
            out.write(text)
        truncate_file(path, drop_bytes=20)
        result = run_cli(path, *OBJECTS, "--follow",
                         "--follow-timeout", "0.2")
        assert "trace incomplete" in result.stderr
        assert "resume offset" in result.stderr

    def test_idle_timeout_inside_window_still_flushes_stats_json(
            self, tmp_path):
        """Regression: a --follow run whose idle timeout fires mid-window
        (here the window is far larger than the trace, so no periodic
        boundary ever fires) must still leave a complete, atomic
        --stats-json snapshot on the follow-mode schema."""
        import json
        text = open(TRACE, encoding="utf-8").read()
        path = str(tmp_path / "partial.jsonl")
        with open(path, "w", encoding="utf-8") as out:
            out.write(text)
        truncate_file(path, drop_bytes=20)
        stats = str(tmp_path / "follow.stats.json")
        result = run_cli(path, *OBJECTS, "--follow",
                         "--follow-timeout", "0.3",
                         "--window", "100000", "--stats-json", stats)
        assert "trace incomplete" in result.stderr
        report = json.loads(open(stats, encoding="utf-8").read())
        # The pending window was flushed on exit: exactly the finish()
        # maintenance ran, and the event count covers everything read
        # after the last (never-reached) periodic boundary.
        assert report["meta"]["windows"] >= 1
        declared = json.loads(text.splitlines()[0])["events"]
        assert 0 < report["meta"]["events"] < declared
        assert "trace incomplete" in result.stderr
        # Atomic rewrite: no half-written temp file may survive.
        assert not os.path.exists(stats + ".tmp")

    def test_oversized_frame_fails_cleanly(self, tmp_path):
        """A poisoned (runaway) record ends the follow with a clean data
        error instead of wedging at the same resume offset forever."""
        text = open(TRACE, encoding="utf-8").read()
        lines = text.splitlines(keepends=True)
        path = str(tmp_path / "poison.jsonl")
        with open(path, "w", encoding="utf-8") as out:
            out.writelines(lines[:5])
            out.write('{"kind": "action", "pad": "' + "x" * (2 << 20)
                      + '"}\n')
        result = run_cli(path, *OBJECTS, "--follow",
                         "--follow-timeout", "0.3")
        assert result.returncode == 3
        assert "spans" in result.stderr and "cap" in result.stderr
