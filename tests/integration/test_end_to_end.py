"""End-to-end pipelines: scheduler → runtime → analyzers → verdicts."""

import pytest

from repro.core.oracle import CommutativityOracle
from repro.core.races import CommutativityRace
from repro.runtime.analyzers import (DirectAnalyzer, FastTrackAnalyzer,
                                     Rd2Analyzer)
from repro.runtime.collections_rt import (MonitoredCounter, MonitoredDict,
                                          MonitoredSet)
from repro.runtime.monitor import Monitor
from repro.runtime.shared import MonitoredLock, SharedVar, interface_event
from repro.sched.scheduler import Scheduler
from repro.specs.dictionary import extended_dictionary_spec


def fig1_program(monitor, scheduler, hosts):
    """The paper's Fig. 1, parameterized over the host list."""
    def main():
        connections = MonitoredDict(monitor, name="o")

        def connect(host, serial):
            connections.put(host, f"c{serial}")

        handles = [scheduler.spawn(connect, host, index)
                   for index, host in enumerate(hosts)]
        scheduler.join_all(handles)
        return connections.size()

    return scheduler.run(main)


class TestFig1:
    def test_duplicate_hosts_race(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        size = fig1_program(monitor, Scheduler(monitor, seed=1),
                            ["a.com", "a.com", "b.com"])
        assert size == 2
        races = rd2.races()
        assert races
        assert all(race.obj == "o" for race in races)
        assert all(race.current.method == "put" for race in races)

    def test_unique_hosts_race_free(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        size = fig1_program(monitor, Scheduler(monitor, seed=1),
                            ["a.com", "b.com", "c.com"])
        assert size == 3
        assert rd2.races() == []

    def test_size_after_joinall_never_races(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        fig1_program(monitor, Scheduler(monitor, seed=1),
                     ["a.com", "a.com"])
        assert all(race.current.method != "size" for race in rd2.races())


class TestOnlineVsOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_recorded_trace_confirms_online_verdicts(self, seed):
        """Record the runtime's interface trace; the offline oracle must
        agree with the online detector (Theorem 5.1, end to end)."""
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2], record_trace=True)
        scheduler = Scheduler(monitor, seed=seed)

        def main():
            d = MonitoredDict(monitor, name="d")
            s = MonitoredSet(monitor, name="s")

            def worker(i):
                d.put(f"k{i % 2}", i)
                s.add(i % 3)
                d.get("k0")
                d.size()

            scheduler.join_all([scheduler.spawn(worker, i)
                                for i in range(3)])

        scheduler.run(main)

        # Replay the interface-level trace through the oracle.
        from repro.core.trace import Trace
        interface = Trace(root=0)
        for event in monitor.trace:
            if interface_event(event):
                # Re-create the event sans stale stamps.
                from dataclasses import replace
                interface.append(replace(event, clock=None, index=-1))
        interface.stamp()
        oracle = CommutativityOracle()
        from repro.specs.set_spec import set_spec
        oracle.register_object("d", extended_dictionary_spec().commutes)
        oracle.register_object("s", set_spec().commutes)
        assert bool(rd2.races()) == bool(oracle.racing_pairs(interface))


class TestCommutativityVsReadWrite:
    def test_counter_separates_the_analyses(self):
        """Concurrent increments: a read/write race but no commutativity
        race — the generalization argument of the paper's introduction."""
        rd2, fasttrack = Rd2Analyzer(), FastTrackAnalyzer()
        monitor = Monitor(analyzers=[rd2, fasttrack])
        scheduler = Scheduler(monitor, seed=0)

        def main():
            counter = MonitoredCounter(monitor, name="c")
            raw = SharedVar(monitor, 0, name="raw")

            def worker():
                counter.add(1)      # commutes: no RD2 race
                raw.add(1)          # unsynchronized RMW: FastTrack race

            scheduler.join_all([scheduler.spawn(worker) for _ in range(3)])
            counter.read()          # would race, but ordered by joins

        scheduler.run(main)
        assert rd2.races() == []
        assert any(race.location == "raw" for race in fasttrack.races())

    def test_unjoined_read_races_commutatively(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        scheduler = Scheduler(monitor, seed=0)

        def main():
            counter = MonitoredCounter(monitor, name="c")

            def worker():
                counter.add(1)

            handle = scheduler.spawn(worker)
            counter.read()           # concurrent with the add
            scheduler.join(handle)

        scheduler.run(main)
        assert any(isinstance(race, CommutativityRace)
                   for race in rd2.races())


class TestLockDiscipline:
    def test_locked_check_then_act_is_race_free(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        scheduler = Scheduler(monitor, seed=3)

        def main():
            d = MonitoredDict(monitor, name="d")
            lock = MonitoredLock(monitor, name="guard")
            lock.bind_scheduler(scheduler)

            def worker(i):
                with lock:
                    if not d.contains("hot"):
                        d.put("hot", i)

            scheduler.join_all([scheduler.spawn(worker, i)
                                for i in range(4)])

        scheduler.run(main)
        assert rd2.races() == []

    def test_unlocked_check_then_act_races(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        scheduler = Scheduler(monitor, seed=3)

        def main():
            d = MonitoredDict(monitor, name="d")

            def worker(i):
                if not d.contains("hot"):
                    d.put("hot", i)

            scheduler.join_all([scheduler.spawn(worker, i)
                                for i in range(4)])

        scheduler.run(main)
        assert rd2.races()


class TestDirectAgreesEndToEnd:
    def test_direct_and_rd2_agree_on_program(self):
        rd2, direct = Rd2Analyzer(), DirectAnalyzer()
        monitor = Monitor(analyzers=[rd2, direct])
        scheduler = Scheduler(monitor, seed=5)

        def main():
            d = MonitoredDict(monitor, name="d")

            def worker(i):
                d.put("k", i)
                d.size()

            scheduler.join_all([scheduler.spawn(worker, i)
                                for i in range(3)])

        scheduler.run(main)
        assert bool(rd2.races()) == bool(direct.races())
