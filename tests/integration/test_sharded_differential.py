"""Differential harness: ShardedDetector ≡ CommutativityRaceDetector.

The two-phase pipeline's whole claim is that fanning Algorithm 1's
per-object work out by shard changes *nothing*: same race reports, in the
same order, with the same counters.  This suite checks that claim
report-for-report over a large randomized multi-object corpus (plain
seeded loop, >=100 seeds), via hypothesis-shrunk programs, and through a
real multiprocessing pool.
"""

import pytest
from hypothesis import given, settings

from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.parallel import ShardedDetector

from tests.support import (build_multi_object_trace, multi_object_programs,
                           random_multi_object_program, register_bindings)

DIFFERENTIAL_SEEDS = range(120)


def run_pair(trace, bindings, *, workers, seq_kw=None, shard_kw=None):
    sequential = register_bindings(
        CommutativityRaceDetector(root=0, **(seq_kw or {})), bindings)
    sharded = register_bindings(
        ShardedDetector(root=0, workers=workers, **(shard_kw or {})), bindings)
    sequential.run(trace)
    sharded.run(trace)
    return sequential, sharded


def assert_identical(sequential, sharded):
    assert sharded.races == sequential.races
    assert sharded.stats == sequential.stats


class TestDifferentialCorpus:
    def test_inline_sharding_across_120_seeds(self):
        """Report-for-report equality on >=100 plain-random seeds."""
        nonempty = 0
        for seed in DIFFERENTIAL_SEEDS:
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            sequential, sharded = run_pair(trace, bindings, workers=1)
            assert_identical(sequential, sharded)
            nonempty += bool(sequential.races)
        # The corpus must actually exercise the race paths, not vacuously
        # compare empty reports.
        assert nonempty >= 20

    @given(multi_object_programs())
    @settings(max_examples=60, deadline=None)
    def test_inline_sharding_property(self, program):
        trace, bindings = build_multi_object_trace(program)
        sequential, sharded = run_pair(trace, bindings, workers=0)
        assert_identical(sequential, sharded)

    @given(multi_object_programs())
    @settings(max_examples=30, deadline=None)
    def test_adaptive_sharding_property(self, program):
        trace, bindings = build_multi_object_trace(program)
        sequential, sharded = run_pair(
            trace, bindings, workers=1,
            seq_kw={"adaptive": True}, shard_kw={"adaptive": True})
        assert_identical(sequential, sharded)

    @pytest.mark.parametrize("seed", [3, 17, 41, 77])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_pool_sharding(self, seed, workers):
        """The real multiprocessing path: pickled shards, merged results."""
        program = random_multi_object_program(seed, max_ops=60)
        trace, bindings = build_multi_object_trace(program)
        sequential, sharded = run_pair(trace, bindings, workers=workers)
        assert_identical(sequential, sharded)

    def test_scan_strategy_sharding(self):
        for seed in range(20):
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            sequential, sharded = run_pair(
                trace, bindings, workers=1,
                seq_kw={"strategy": Strategy.SCAN},
                shard_kw={"strategy": Strategy.SCAN})
            assert_identical(sequential, sharded)


class TestCompiledDifferential:
    """The compiled hot path vs. the seed path, report for report.

    ``compiled=True`` (check plans + interned points) is the default; the
    seed path (``compiled=False``) keeps the per-action representation
    dispatch.  Both must produce identical reports *and* identical stats —
    including across the process pool, where plans travel pickled.
    """

    def test_compiled_vs_seed_sequential_across_seeds(self):
        nonempty = 0
        for seed in range(60):
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            compiled = register_bindings(
                CommutativityRaceDetector(root=0), bindings)
            dispatch = register_bindings(
                CommutativityRaceDetector(root=0, compiled=False), bindings)
            compiled.run(trace)
            dispatch.run(trace)
            assert compiled.races == dispatch.races
            assert compiled.stats == dispatch.stats
            nonempty += bool(compiled.races)
        assert nonempty >= 10

    @pytest.mark.parametrize("seed", [3, 17, 41])
    def test_compiled_process_pool(self, seed):
        """Plans pickled into real workers match the uncompiled sequential."""
        program = random_multi_object_program(seed, max_ops=60)
        trace, bindings = build_multi_object_trace(program)
        sequential, sharded = run_pair(
            trace, bindings, workers=2, seq_kw={"compiled": False})
        assert_identical(sequential, sharded)

    def test_uncompiled_sharding_matches_compiled_sequential(self):
        """The mixed pairing the matrix suite doesn't cover directly."""
        for seed in range(20):
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            sequential, sharded = run_pair(
                trace, bindings, workers=1, shard_kw={"compiled": False})
            assert_identical(sequential, sharded)


class TestMergedCountersAgree:
    """Satellite: sharded stats must merge, not drop, shard counters."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_conflict_checks_and_all_counters(self, workers):
        for seed in range(30):
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            sequential, sharded = run_pair(trace, bindings, workers=workers)
            assert sharded.stats.conflict_checks == \
                sequential.stats.conflict_checks
            assert sharded.stats.actions == sequential.stats.actions
            assert sharded.stats.points_touched == \
                sequential.stats.points_touched
            assert sharded.stats.races == sequential.stats.races
            assert sharded.stats.events == sequential.stats.events
            assert sharded.stats.checks_per_action() == pytest.approx(
                sequential.stats.checks_per_action())


class TestMergeSemantics:
    def test_on_race_fires_in_event_index_order(self):
        program = random_multi_object_program(8, max_objects=4, max_ops=40)
        trace, bindings = build_multi_object_trace(program)
        sequential, _ = run_pair(trace, bindings, workers=1)
        seen = []
        sharded = register_bindings(
            ShardedDetector(root=0, workers=1, on_race=seen.append), bindings)
        sharded.run(trace)
        assert seen == sequential.races

    def test_keep_reports_false_still_counts(self):
        program = random_multi_object_program(8)
        trace, bindings = build_multi_object_trace(program)
        sequential, _ = run_pair(trace, bindings, workers=1)
        sharded = register_bindings(
            ShardedDetector(root=0, workers=1, keep_reports=False), bindings)
        sharded.run(trace)
        assert sharded.races == []
        assert sharded.stats.races == sequential.stats.races
