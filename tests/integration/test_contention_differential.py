"""Differential sweep on the contention-adversarial corpus (PR 7).

``tests.support.build_contention_trace`` manufactures the epoch
machinery's worst case — cross-thread argument re-targeting (forcing
promotions and races on shared points) plus tid churn (forcing dead
clock components into carried epochs, so deflation, compaction and
pruning all do real work).  This sweep runs that corpus through every
PR 7 execution mode and demands byte-identical reports against the
plain full-vector-clock batch detector:

* the streaming analyzer with epochs, batching, pruning and windowed
  maintenance all on at once;
* the sharded two-phase pipeline with epochs and batching on, under
  real worker processes;
* the sequential detector with epochs + batching, as the control that
  isolates the sharding axis.

Counter caveat: the stream/sharded paths may legitimately differ from
the sequential run in *epoch counters* (a deflation can be followed by a
re-promotion the uninterrupted run never needed), so the sweep compares
race snapshots — the paper-visible output — not epoch bookkeeping.
"""

from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.core.stream import StreamAnalyzer

from tests.support import (build_contention_trace, contention_program,
                           race_snapshot, register_bindings)

DIFFERENTIAL_SEEDS = range(120)


def corpus():
    for seed in DIFFERENTIAL_SEEDS:
        yield seed, build_contention_trace(contention_program(seed))


def plain_run(trace, bindings):
    detector = register_bindings(
        CommutativityRaceDetector(root=trace.root, adaptive=False), bindings)
    detector.run(trace)
    return detector


def snapshots(detector_or_analyzer):
    return [race_snapshot(r) for r in detector_or_analyzer.races]


class TestContentionCorpus:
    def test_streaming_epochs_byte_identical_across_120_seeds(self):
        """Epochs + batching + pruning + deflation change nothing."""
        nonempty = promotions = 0
        for seed, (trace, bindings) in corpus():
            plain = plain_run(trace, bindings)
            streamed = register_bindings(
                StreamAnalyzer(root=trace.root, adaptive=True, window=5,
                               prune_interval=3, batch_window=4), bindings)
            streamed.run(trace)
            assert snapshots(streamed) == snapshots(plain), f"seed {seed}"
            nonempty += bool(plain.races)
            promotions += streamed.stats.epoch_promotions
        # The corpus must genuinely exercise the adversarial paths: races
        # found on a healthy share of seeds, and real epoch promotions.
        assert nonempty >= 40
        assert promotions >= 100

    def test_sharded_epochs_byte_identical_across_120_seeds(self):
        """The two-phase pipeline with epochs + batching, worker
        processes on, against the sequential plain detector."""
        for seed, (trace, bindings) in corpus():
            plain = plain_run(trace, bindings)
            sharded = register_bindings(
                ShardedDetector(root=trace.root, workers=2, adaptive=True,
                                batch_window=4), bindings)
            sharded.run(trace)
            assert snapshots(sharded) == snapshots(plain), f"seed {seed}"
            assert sharded.stats.races == plain.stats.races, f"seed {seed}"

    def test_sequential_epochs_match_stats_too(self):
        """Without maintenance windows the uninterrupted sequential run
        must match the plain detector's *checking* counters exactly —
        epochs change representation, never which pairs are checked."""
        for seed, (trace, bindings) in corpus():
            plain = plain_run(trace, bindings)
            adaptive = register_bindings(
                CommutativityRaceDetector(root=trace.root, adaptive=True,
                                          batch_window=4), bindings)
            adaptive.run(trace)
            assert snapshots(adaptive) == snapshots(plain), f"seed {seed}"
            assert adaptive.stats.races == plain.stats.races
            assert adaptive.stats.conflict_checks == plain.stats.conflict_checks
