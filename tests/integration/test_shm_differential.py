"""Differential fleet: the shm backend ≡ sequential, fork and spawn.

The equivalence matrix proves the backend axes under whatever start
method CI selected for the whole run; this suite pins the shm transport
under **both** start methods explicitly, in one process, because the two
fail differently: fork shares the resource-tracker (double-unlink bugs),
spawn re-imports everything (pickling bugs in the init payload, ring
re-attachment by name).  Plus the seeded fleets the issue asks for:
byte-identical reports across composition knobs, fault-free supervision,
and the IPC observability counters the backend promises.
"""

import multiprocessing
import pickle

import pytest

from repro.core.backend import shm_available
from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.obs import Registry

from tests.support import (build_multi_object_trace,
                           random_multi_object_program, race_snapshot,
                           register_bindings)

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no shared memory on this host")

START_METHODS = [
    pytest.param(method, marks=pytest.mark.skipif(
        method not in multiprocessing.get_all_start_methods(),
        reason=f"{method} start method unavailable"))
    for method in ("fork", "spawn")
]


def reference_snapshots(trace, bindings):
    detector = register_bindings(
        CommutativityRaceDetector(root=0, compiled=False, adaptive=False),
        bindings)
    detector.run(trace)
    return [race_snapshot(race) for race in detector.races]


def run_shm(trace, bindings, mp_context, **kw):
    detector = register_bindings(
        ShardedDetector(root=0, workers=2, backend="shm",
                        mp_context=mp_context, **kw), bindings)
    detector.run(trace)
    return detector


@pytest.mark.parametrize("mp_context", START_METHODS)
class TestShmDifferential:
    def test_seeded_fleet_byte_identical(self, mp_context):
        seeds = range(20) if mp_context == "fork" else (4, 9, 41)
        nonempty = 0
        for seed in seeds:
            program = random_multi_object_program(seed, max_ops=60)
            trace, bindings = build_multi_object_trace(program)
            want = reference_snapshots(trace, bindings)
            det = run_shm(trace, bindings, mp_context)
            assert det.backend.selected == "shm"
            assert [race_snapshot(r) for r in det.races] == want, seed
            assert not det.faults.records()
            nonempty += bool(want)
        assert nonempty >= 2, "corpus never exercised the race paths"

    def test_composition_knobs_stay_invisible(self, mp_context):
        for seed in (3, 17):
            program = random_multi_object_program(seed, max_ops=60)
            trace, bindings = build_multi_object_trace(program)
            want = reference_snapshots(trace, bindings)
            det = run_shm(trace, bindings, mp_context, adaptive=True,
                          prune_interval=7, batch_window=16)
            assert [race_snapshot(r) for r in det.races] == want, seed

    def test_tiny_rings_block_but_never_corrupt(self, mp_context):
        """Force constant producer stalls: rings two slots deep must
        still deliver byte-identical reports — wraparound and
        backpressure under a real consumer process."""
        program = random_multi_object_program(9, max_ops=60)
        trace, bindings = build_multi_object_trace(program)
        want = reference_snapshots(trace, bindings)
        det = run_shm(trace, bindings, mp_context,
                      ring_slots=2, ring_side_bytes=512)
        assert [race_snapshot(r) for r in det.races] == want
        assert not det.faults.records()


class TestShmObservability:
    def test_ipc_counters_reflect_the_transport(self):
        program = random_multi_object_program(9, max_ops=60)
        trace, bindings = build_multi_object_trace(program)
        obs = Registry(enabled=True)
        det = run_shm(trace, bindings, "fork", obs=obs)
        snap = obs.snapshot()
        # The init payloads are the only pickle the shm backend pays.
        assert snap["counters"]["ipc_bytes_pickled"] > 0
        assert snap["counters"]["shm_bytes_written"] > 0
        assert snap["gauges"]["shm_ring_hwm"] > 0
        assert snap["timers"]["shm_encode"]["count"] >= 1
        # Sanity: the per-action stream dwarfs the one-shot init pickle
        # on any non-trivial trace.
        assert det.races is not None

    def test_init_payload_pickles_exclude_actions(self):
        """The zero-pickle claim, stated as bytes: the pickled init blob
        must not grow with the trace, only the ring traffic may."""
        volumes = {}
        for ops in (80, 320):
            program = random_multi_object_program(4, max_ops=ops)
            trace, bindings = build_multi_object_trace(program)
            obs = Registry(enabled=True)
            run_shm(trace, bindings, "fork", obs=obs)
            snap = obs.snapshot()["counters"]
            volumes[ops] = (snap["ipc_bytes_pickled"],
                            snap["shm_bytes_written"])
        pickled_small, shm_small = volumes[80]
        pickled_big, shm_big = volumes[320]
        assert shm_big > shm_small
        # Init payload: registrations + knobs, independent of event count
        # (allow slack for prune snapshots and pickle framing).
        assert pickled_big < pickled_small * 2
