"""Predictive differential sweep: validated supersets, replayable witnesses.

The predictive mode's contract (``docs/prediction.md``): strictly more
races, never different ones.  Concretely, over a 120-seed randomized
multi-object corpus:

1. the witnessed report is untouched — byte-identical with prediction on
   and off (prediction only *adds*, so witnessed ∪ predicted ⊇ witnessed);
2. every prediction ships a witness reordering that replays through the
   standard detector to the very race reported — byte-identically — and
   zero candidates survive unvalidated;
3. trace families that cannot race (single-threaded, fully serialized by
   one lock) predict nothing;
4. the engines agree: sequential, sharded and streaming prediction
   produce identical prediction lists.
"""

import random

from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.core.stream import StreamAnalyzer

from tests.support import (build_multi_object_trace,
                           random_multi_object_program, race_snapshot,
                           register_bindings)

PREDICT_WINDOW = 64

# 120 seeds, sized so the full sweep (closures + witness replays) stays
# inside a test budget: ops per thread is the candidate-count lever.
CORPUS_SEEDS = range(120)


def corpus_program(seed):
    return random_multi_object_program(seed, max_threads=3, max_ops=16)


def run_sequential(trace, bindings, predict_window=0):
    detector = register_bindings(
        CommutativityRaceDetector(root=0, predict_window=predict_window),
        bindings)
    detector.run(trace)
    return detector


def prediction_key(prediction):
    return (prediction.pair, tuple(sorted(race_snapshot(
        prediction.race).items())))


class TestPredictiveDifferential:
    def test_validated_superset_across_the_corpus(self):
        for seed in CORPUS_SEEDS:
            trace, bindings = build_multi_object_trace(corpus_program(seed))
            witnessed = run_sequential(trace, bindings)
            predictive = run_sequential(trace, bindings,
                                        predict_window=PREDICT_WINDOW)
            # (1) witnessed report byte-identical with prediction on.
            assert ([race_snapshot(r) for r in predictive.races]
                    == [race_snapshot(r) for r in witnessed.races]), seed
            # (2) zero unvalidated predictions: every candidate either
            # dropped for a proven reason or shipped validated.
            predictor = predictive._predictor
            counts = predictor.counts
            assert counts.get("predict_candidates", 0) == (
                counts.get("predict_validated", 0)
                + counts.get("predict_dropped_ordered", 0)
                + counts.get("predict_dropped_stuck", 0)), seed
            assert counts.get("predict_dropped_unvalidated", 0) == 0, seed
            assert len(predictive.predicted) == counts.get(
                "predict_validated", 0), seed

    def test_every_witness_replays_byte_identically(self):
        replayed = 0
        for seed in CORPUS_SEEDS:
            trace, bindings = build_multi_object_trace(corpus_program(seed))
            predictive = run_sequential(trace, bindings,
                                        predict_window=PREDICT_WINDOW)
            for prediction in predictive.predicted:
                replay = register_bindings(
                    CommutativityRaceDetector(root=0), bindings)
                races = replay.run(list(prediction.witness))
                snapshots = [race_snapshot(r) for r in races]
                assert race_snapshot(prediction.race) in snapshots, (
                    seed, prediction.pair)
                replayed += 1
        # The corpus must actually exercise the claim.
        assert replayed >= 20

    def test_race_free_families_predict_nothing(self):
        rng = random.Random(0xF4EE)
        checked = 0
        for seed in range(40):
            program = corpus_program(seed)
            object_kinds, _, _, ops, _, join_all = program
            if rng.random() < 0.5:
                # Single-threaded: no cross-thread pairs at all.
                program = (object_kinds, seed, 1, ops, 0.0, join_all)
            else:
                # Fully serialized: every action in its own critical
                # section on one global lock — mutual exclusion pins the
                # observed order of every conflicting pair.
                program = (object_kinds, seed, 3, ops, 1.0, join_all)
            trace, bindings = build_multi_object_trace(program)
            predictive = run_sequential(trace, bindings,
                                        predict_window=PREDICT_WINDOW)
            assert predictive.races == [], seed
            assert predictive.predicted == [], seed
            checked += 1
        assert checked == 40

    def test_engines_agree_on_predictions(self):
        for seed in list(CORPUS_SEEDS)[:24]:
            trace, bindings = build_multi_object_trace(corpus_program(seed))
            sequential = run_sequential(trace, bindings,
                                        predict_window=PREDICT_WINDOW)
            want = [prediction_key(p) for p in sequential.predicted]

            sharded = register_bindings(
                ShardedDetector(root=0, workers=2,
                                predict_window=PREDICT_WINDOW), bindings)
            sharded.run(trace)
            assert [prediction_key(p) for p in sharded.predicted] \
                == want, seed

            streaming = register_bindings(
                StreamAnalyzer(root=0, window=16,
                               predict_window=PREDICT_WINDOW), bindings)
            streaming.run(trace)
            assert [prediction_key(p) for p in streaming.predicted] \
                == want, seed
