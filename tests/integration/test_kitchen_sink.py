"""Whole-stack stress: every facility at once, deterministically.

One program using nested forks, locks, a barrier, a semaphore, an atomic
block, and four monitored collection kinds, run under RD2 + FastTrack +
the online atomicity analyzer simultaneously.  Assertions: it completes,
verdicts are identical across repeated runs of the same seed, and each
analyzer sees what it should.
"""

import pytest

from repro.atomicity import AtomicityAnalyzer, ConflictMode, atomic
from repro.runtime import (Monitor, MonitoredCounter, MonitoredDict,
                           MonitoredLock, MonitoredQueue, MonitoredSet,
                           Rd2Analyzer, FastTrackAnalyzer, SharedVar)
from repro.sched import Barrier, Scheduler, Semaphore


def kitchen_sink(monitor, scheduler):
    results = {}
    table = MonitoredDict(monitor, name="table")
    members = MonitoredSet(monitor, name="members")
    hits = MonitoredCounter(monitor, name="hits")
    work = MonitoredQueue(monitor, name="work")
    plain = SharedVar(monitor, 0, name="plainField")
    guard = MonitoredLock(monitor, name="guard")
    guard.bind_scheduler(scheduler)
    gate = Barrier(monitor, scheduler, parties=3, name="gate")
    tokens = Semaphore(monitor, scheduler, permits=1, name="tokens")

    def stage_one(worker):
        members.add(worker)
        hits.add(1)
        plain.add(1)                     # unsynchronized: FastTrack bait
        with guard:
            if not table.contains("leader"):
                table.put("leader", worker)
        gate.wait()
        # Post-barrier: everyone sees the leader; reads commute.
        table.get("leader")
        with tokens:
            work.enq(f"job-{worker}")

    def nested_parent():
        child = scheduler.spawn(lambda: hits.add(1))
        scheduler.join(child)
        with atomic(monitor):
            hits.add(1)
            hits.add(1)

    workers = [scheduler.spawn(stage_one, w) for w in range(3)]
    workers.append(scheduler.spawn(nested_parent))
    scheduler.join_all(workers)
    results["size"] = table.size()
    results["members"] = members.size()
    results["queued"] = work.size()
    results["hits"] = hits.read()
    return results


def run_once(seed):
    rd2 = Rd2Analyzer()
    fasttrack = FastTrackAnalyzer()
    online = AtomicityAnalyzer(ConflictMode.COMMUTATIVITY)
    monitor = Monitor(analyzers=[rd2, fasttrack, online])
    scheduler = Scheduler(monitor, seed=seed)
    results = scheduler.run(kitchen_sink, monitor, scheduler)
    return results, rd2, fasttrack, online, monitor


class TestKitchenSink:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_functional_outcome(self, seed):
        results, *_ = run_once(seed)
        assert results["size"] == 1          # exactly one leader
        assert results["members"] == 3
        assert results["queued"] == 3
        assert results["hits"] == 6          # 3 workers + 3 nested adds

    @pytest.mark.parametrize("seed", [0, 7])
    def test_bitwise_repeatability(self, seed):
        first = run_once(seed)
        second = run_once(seed)
        assert first[0] == second[0]
        for index in (1, 2):
            assert ([str(r) for r in first[index].races()]
                    == [str(r) for r in second[index].races()])
        assert first[4].events_emitted == second[4].events_emitted

    def test_analyzer_specific_verdicts(self):
        any_ft_race = False
        for seed in range(8):
            results, rd2, fasttrack, online, _ = run_once(seed)
            # The lock disciplines the check-then-act; the barrier orders
            # the post-barrier reads; counter adds commute; the semaphore
            # serializes the enqueues: RD2 stays silent.
            assert rd2.races() == [], f"seed {seed}: {rd2.races()[:1]}"
            # The atomic block touches only commuting adds: serializable.
            assert online.violation_count == 0
            any_ft_race = any_ft_race or any(
                race.location == "plainField"
                for race in fasttrack.races())
        assert any_ft_race, "the plain field must race on some schedule"

    def test_summary_renders(self):
        _, _, _, _, monitor = run_once(2)
        text = monitor.summary()
        assert "events" in text
        assert "[rd2]" in text
