"""The introduction's generalization claim, executable.

"Conceptually, our work can be seen as generalizing classical read-write
race detection": instantiate the commutativity detector with the *register*
specification (write conflicts with write and read; silent writes and reads
commute) and it must agree with FastTrack on which registers race — while
richer specifications (counter, dictionary) strictly refine the verdicts.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.fasttrack import FastTrack
from repro.core.detector import CommutativityRaceDetector
from repro.core.events import Action
from repro.core.trace import TraceBuilder
from repro.specs.register import RegisterSemantics, register_representation


def register_program(seed, threads, ops):
    """Parallel traces: register actions + matching read/write events.

    Every register action additionally emits the memory access it embodies
    on a location mirroring the register, so FastTrack sees the classical
    view of the same execution.  All writes store fresh values (no silent
    writes), making the register conflict relation coincide with
    read/write conflicts.
    """
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    tids = list(range(1, threads + 1))
    for tid in tids:
        builder.fork(0, tid)
    registers = ["r0", "r1"]
    contents = {name: 0 for name in registers}
    fresh = 1
    for _ in range(ops):
        tid = rng.choice(tids)
        name = rng.choice(registers)
        if rng.random() < 0.5:
            previous = contents[name]
            value = fresh
            fresh += 1
            contents[name] = value
            builder.action(tid, Action(name, "write", (value,),
                                       (previous,)))
            builder.write(tid, f"loc:{name}")
        else:
            builder.action(tid, Action(name, "read", (),
                                       (contents[name],)))
            builder.read(tid, f"loc:{name}")
    return builder.build()


programs = st.tuples(st.integers(0, 2 ** 32 - 1),
                     st.integers(min_value=2, max_value=4),
                     st.integers(min_value=0, max_value=40))


@given(programs)
@settings(max_examples=60, deadline=None)
def test_register_spec_matches_fasttrack_verdicts(program):
    trace = register_program(*program)

    rd2 = CommutativityRaceDetector(root=0)
    for name in ("r0", "r1"):
        rd2.register_object(name, register_representation())
    fasttrack = FastTrack(root=0)
    for event in trace:
        rd2.process(event)
        fasttrack.process(event)

    racy_registers = {race.obj for race in rd2.races}
    racy_locations = {str(race.location).split(":", 1)[1]
                      for race in fasttrack.races}
    assert racy_registers == racy_locations


def test_silent_writes_separate_the_analyses():
    """Where the generalization is strict: a silent write (v = p) commutes
    at the register level but still conflicts at the memory level."""
    builder = (TraceBuilder(root=0)
               .fork(0, 1).fork(0, 2))
    builder.action(1, Action("r", "write", (7,), (7,)))  # silent
    builder.write(1, "loc:r")
    builder.action(2, Action("r", "read", (), (7,)))
    builder.read(2, "loc:r")
    trace = builder.build()

    rd2 = CommutativityRaceDetector(root=0)
    rd2.register_object("r", register_representation())
    fasttrack = FastTrack(root=0)
    for event in trace:
        rd2.process(event)
        fasttrack.process(event)

    assert rd2.races == []           # silent write commutes with the read
    assert fasttrack.race_count == 1  # but it is still a memory race
