"""Schedule exploration."""

import pytest

from repro.runtime.analyzers import FastTrackAnalyzer, Rd2Analyzer
from repro.runtime.collections_rt import MonitoredDict
from repro.runtime.shared import SharedVar
from repro.sched.explore import explore


def racy_program(monitor, scheduler):
    shared = MonitoredDict(monitor, name="o")

    def worker(i):
        shared.put("hot", i)

    scheduler.join_all([scheduler.spawn(worker, i) for i in range(3)])
    return shared.get("hot")


def clean_program(monitor, scheduler):
    shared = MonitoredDict(monitor, name="o")

    def worker(i):
        shared.put(f"key{i}", i)

    scheduler.join_all([scheduler.spawn(worker, i) for i in range(3)])
    return shared.size()


class TestExplore:
    def test_racy_program_found_on_every_seed(self):
        result = explore(racy_program, seeds=range(6))
        assert result.race_frequency == 1.0
        assert result.racy_seeds == list(range(6))

    def test_clean_program_never_flags(self):
        result = explore(clean_program, seeds=range(6))
        assert result.race_frequency == 0.0
        assert result.racy_seeds == []
        assert result.all_groups() == ()

    def test_outcomes_carry_program_results(self):
        result = explore(clean_program, seeds=range(3))
        assert all(outcome.result == 3 for outcome in result.outcomes)

    def test_groups_deduplicate_across_seeds(self):
        result = explore(racy_program, seeds=range(5))
        groups = result.all_groups()
        assert len(groups) == 1
        assert groups[0].count == len(result.all_reports())

    def test_stop_at_first(self):
        result = explore(racy_program, seeds=range(100), stop_at_first=True)
        assert len(result.outcomes) == 1
        assert result.outcomes[0].raced

    def test_stop_at_first_builds_exactly_one_analyzer(self):
        # Regression audit of the docstring promise ("returns as soon as
        # one racy interleaving is found"): an immediately-racy program
        # must construct exactly one analyzer — the seed loop breaks
        # before building the next run's.
        constructed = []

        def counting_factory():
            analyzer = Rd2Analyzer()
            constructed.append(analyzer)
            return analyzer

        result = explore(racy_program, seeds=range(100),
                         analyzer_factory=counting_factory,
                         stop_at_first=True)
        assert len(constructed) == 1
        assert len(result.outcomes) == 1

    def test_stop_at_first_keeps_scanning_clean_seeds(self):
        constructed = []

        def counting_factory():
            analyzer = Rd2Analyzer()
            constructed.append(analyzer)
            return analyzer

        explore(clean_program, seeds=range(4),
                analyzer_factory=counting_factory, stop_at_first=True)
        assert len(constructed) == 4

    def test_alternate_analyzer(self):
        def field_racer(monitor, scheduler):
            var = SharedVar(monitor, 0, name="f")

            def worker():
                var.add(1)

            scheduler.join_all([scheduler.spawn(worker) for _ in range(2)])

        result = explore(field_racer, seeds=range(4),
                         analyzer_factory=FastTrackAnalyzer)
        assert result.race_frequency > 0

    def test_summary_mentions_frequency_and_groups(self):
        result = explore(racy_program, seeds=range(3))
        text = result.summary()
        assert "3 interleavings" in text
        assert "100%" in text
        assert "[" in text

    def test_summary_caps_racy_seed_listing(self):
        from repro.sched.explore import ExplorationResult
        cap = ExplorationResult.SUMMARY_SEED_CAP
        result = explore(racy_program, seeds=range(cap + 9))
        first_line = result.summary().splitlines()[0]
        # Exact counts survive the cap; the listing itself elides.
        assert f"{cap + 9} raced" in first_line
        assert f"+9 more" in first_line
        assert str(cap - 1) in first_line
        assert f" {cap + 5}," not in first_line

    def test_summary_below_cap_lists_every_seed(self):
        result = explore(racy_program, seeds=range(3))
        first_line = result.summary().splitlines()[0]
        assert "racy seeds: [0, 1, 2]" in first_line
        assert "more" not in first_line

    def test_empty_seed_set(self):
        result = explore(racy_program, seeds=())
        assert result.race_frequency == 0.0
        assert result.outcomes == []
        # Zero-outcome edge: no division by zero, empty dedup.
        assert result.all_groups() == ()
        assert "0 interleavings: 0 raced (0%)" in result.summary()

    def test_all_racy_edge(self):
        result = explore(racy_program, seeds=range(4))
        assert result.race_frequency == 1.0
        groups = result.all_groups()
        # Dedup across seeds: one group carrying every report.
        assert len(groups) == 1
        assert groups[0].count == len(result.all_reports())
        assert len(result.all_reports()) >= 4

    def test_seeds_are_independent(self):
        first = explore(racy_program, seeds=[7])
        second = explore(racy_program, seeds=[7])
        assert ([str(r) for r in first.all_reports()]
                == [str(r) for r in second.all_reports()])
