"""The deterministic cooperative scheduler."""

import pytest

from repro.core.errors import SchedulerError
from repro.core.events import EventKind
from repro.runtime.monitor import Monitor
from repro.runtime.shared import MonitoredLock, SharedVar
from repro.sched.scheduler import Scheduler, TaskHandle


def run_program(body, seed=0, record=False, switch_probability=1.0):
    monitor = Monitor(record_trace=record) if record else Monitor()
    scheduler = Scheduler(monitor, seed=seed,
                          switch_probability=switch_probability)
    result = scheduler.run(body, scheduler, monitor)
    return result, scheduler, monitor


class TestBasics:
    def test_root_runs_and_returns(self):
        def main(sched, monitor):
            return 42
        result, _, _ = run_program(main)
        assert result == 42

    def test_spawn_and_join_return_values(self):
        def main(sched, monitor):
            handles = [sched.spawn(lambda i=i: i * i) for i in range(5)]
            return sched.join_all(handles)
        result, _, _ = run_program(main)
        assert result == [0, 1, 4, 9, 16]

    def test_tids_are_sequential(self):
        def main(sched, monitor):
            handles = [sched.spawn(lambda: None) for _ in range(3)]
            sched.join_all(handles)
            return [h.tid for h in handles]
        result, _, _ = run_program(main)
        assert result == [1, 2, 3]

    def test_join_unknown_task_rejected(self):
        def main(sched, monitor):
            sched.join(TaskHandle(99))
        with pytest.raises(SchedulerError):
            run_program(main)

    def test_scheduler_single_use(self):
        monitor = Monitor()
        scheduler = Scheduler(monitor)
        scheduler.run(lambda: None)
        with pytest.raises(SchedulerError):
            scheduler.run(lambda: None)

    def test_task_exception_propagates(self):
        def main(sched, monitor):
            raise RuntimeError("boom")
        with pytest.raises(RuntimeError, match="boom"):
            run_program(main)

    def test_joined_failure_propagates(self):
        def main(sched, monitor):
            def bad():
                raise ValueError("inner")
            handle = sched.spawn(bad)
            sched.join(handle)
        with pytest.raises(SchedulerError, match="failed"):
            run_program(main)


class TestEvents:
    def test_fork_join_events_emitted(self):
        def main(sched, monitor):
            handle = sched.spawn(lambda: None)
            sched.join(handle)
        _, _, monitor = run_program(main, record=True)
        kinds = [event.kind for event in monitor.trace]
        assert EventKind.FORK in kinds
        assert EventKind.JOIN in kinds
        fork_index = kinds.index(EventKind.FORK)
        join_index = kinds.index(EventKind.JOIN)
        assert fork_index < join_index

    def test_monitor_tid_follows_tasks(self):
        observed = []

        def main(sched, monitor):
            observed.append(monitor.current_tid())
            def child():
                observed.append(monitor.current_tid())
            sched.join(sched.spawn(child))
        run_program(main)
        assert observed == [0, 1]


class TestDeterminism:
    @staticmethod
    def interleaving_program(sched, monitor):
        log = []
        var = SharedVar(monitor, 0)

        def worker(label):
            for _ in range(5):
                var.read()
                log.append(label)

        handles = [sched.spawn(worker, c) for c in "abc"]
        sched.join_all(handles)
        return "".join(log)

    def test_same_seed_same_interleaving(self):
        first, _, _ = run_program(self.interleaving_program, seed=11,
                                  record=True)
        second, _, _ = run_program(self.interleaving_program, seed=11,
                                   record=True)
        assert first == second

    def test_different_seeds_differ(self):
        outcomes = {run_program(self.interleaving_program, seed=s,
                                record=True)[0]
                    for s in range(6)}
        assert len(outcomes) > 1

    def test_interleaving_actually_mixes_threads(self):
        result, _, _ = run_program(self.interleaving_program, seed=3,
                                   record=True)
        assert result not in ("aaaaabbbbbccccc", "cccccbbbbbaaaaa")

    def test_switch_probability_zero_runs_in_bursts(self):
        result, scheduler, _ = run_program(self.interleaving_program,
                                           seed=0, record=True,
                                           switch_probability=0.0)
        # With no preemption, each worker runs to completion once started.
        assert result in {"".join(c * 5 for c in perm)
                          for perm in (("a", "b", "c"), ("a", "c", "b"),
                                       ("b", "a", "c"), ("b", "c", "a"),
                                       ("c", "a", "b"), ("c", "b", "a"))}


class TestLocks:
    def test_lock_provides_mutual_exclusion(self):
        def main(sched, monitor):
            lock = MonitoredLock(monitor, name="L")
            lock.bind_scheduler(sched)
            var = SharedVar(monitor, 0)
            def worker():
                for _ in range(10):
                    with lock:
                        current = var.read()   # preemption point inside
                        var.write(current + 1)
            handles = [sched.spawn(worker) for _ in range(3)]
            sched.join_all(handles)
            return var.read()
        result, _, _ = run_program(main, seed=5)
        assert result == 30

    def test_unlocked_counter_loses_updates(self):
        def main(sched, monitor):
            var = SharedVar(monitor, 0)
            def worker():
                for _ in range(10):
                    var.add(1)
            handles = [sched.spawn(worker) for _ in range(3)]
            sched.join_all(handles)
            return var.read()
        losses = []
        for seed in range(8):
            result, _, _ = run_program(main, seed=seed)
            losses.append(result < 30)
        assert any(losses), "expected at least one seed to lose an update"

    def test_release_of_unheld_lock_rejected(self):
        def main(sched, monitor):
            sched.lock_release("L")
        with pytest.raises(SchedulerError):
            run_program(main)

    def test_self_deadlock_detected(self):
        def main(sched, monitor):
            lock = MonitoredLock(monitor, name="L")
            lock.bind_scheduler(sched)
            lock.acquire()
            lock.acquire()  # nobody can release it
        with pytest.raises(SchedulerError, match="deadlock"):
            run_program(main)

    def test_two_task_deadlock_detected(self):
        def main(sched, monitor):
            l1 = MonitoredLock(monitor, name="L1")
            l2 = MonitoredLock(monitor, name="L2")
            l1.bind_scheduler(sched)
            l2.bind_scheduler(sched)

            def left():
                with l1:
                    for _ in range(3):
                        monitor.preempt()
                    with l2:
                        pass

            def right():
                with l2:
                    for _ in range(3):
                        monitor.preempt()
                    with l1:
                        pass

            sched.join_all([sched.spawn(left), sched.spawn(right)])
        with pytest.raises(SchedulerError):
            run_program(main, seed=1)


class TestScale:
    def test_many_tasks(self):
        def main(sched, monitor):
            handles = [sched.spawn(lambda i=i: i) for i in range(40)]
            return sum(sched.join_all(handles))
        result, _, _ = run_program(main)
        assert result == sum(range(40))

    def test_nested_spawn(self):
        def main(sched, monitor):
            def parent():
                child = sched.spawn(lambda: "leaf")
                return sched.join(child)
            handle = sched.spawn(parent)
            return sched.join(handle)
        result, _, _ = run_program(main)
        assert result == "leaf"

    def test_context_switches_counted(self):
        _, scheduler, _ = run_program(self.noisy, seed=0)
        assert scheduler.context_switches > 0

    @staticmethod
    def noisy(sched, monitor):
        var = SharedVar(monitor, 0)
        def worker():
            for _ in range(5):
                var.read()
        sched.join_all([sched.spawn(worker) for _ in range(3)])
