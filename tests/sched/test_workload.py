"""The synthetic workload / trace generator."""

import pytest

from repro.core.events import EventKind
from repro.logic.semantics import final_state
from repro.sched.workload import WorkloadConfig, generate_trace


class TestStructure:
    def test_forks_precede_worker_events(self):
        workload = generate_trace(WorkloadConfig(threads=3, ops_per_thread=5))
        kinds = [event.kind for event in workload.trace]
        assert kinds[:3] == [EventKind.FORK] * 3

    def test_join_at_end_appends_size_observation(self):
        workload = generate_trace(WorkloadConfig(
            threads=2, ops_per_thread=4, join_at_end=True))
        last = workload.trace.events[-1]
        assert last.kind is EventKind.ACTION
        assert last.action.method == "size"
        assert last.tid == 0

    def test_no_join_option(self):
        workload = generate_trace(WorkloadConfig(
            threads=2, ops_per_thread=4, join_at_end=False))
        kinds = {event.kind for event in workload.trace}
        assert EventKind.JOIN not in kinds

    def test_op_counts(self):
        config = WorkloadConfig(threads=3, ops_per_thread=7,
                                join_at_end=False)
        workload = generate_trace(config)
        actions = workload.trace.actions()
        assert len(actions) == 21

    def test_lock_probability_one_wraps_every_op(self):
        config = WorkloadConfig(threads=2, ops_per_thread=5,
                                lock_probability=1.0, join_at_end=False)
        workload = generate_trace(config)
        kinds = [event.kind for event in workload.trace]
        assert kinds.count(EventKind.ACQUIRE) == 10
        assert kinds.count(EventKind.RELEASE) == 10

    def test_multiple_objects(self):
        config = WorkloadConfig(objects=(("dictionary", 2), ("counter", 1)),
                                threads=2, ops_per_thread=20)
        workload = generate_trace(config)
        assert len(workload.objects) == 3
        touched = set(workload.trace.objects())
        assert touched <= set(workload.objects)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            generate_trace(WorkloadConfig(objects=(("warp-drive", 1),)))


class TestConsistency:
    @pytest.mark.parametrize("kind", ["dictionary", "set", "counter",
                                      "register", "msetlog", "accumulator"])
    def test_returns_are_realizable_in_trace_order(self, kind):
        config = WorkloadConfig(threads=3, ops_per_thread=15,
                                objects=((kind, 1),), seed=5)
        workload = generate_trace(config)
        (obj_id, bundled), = workload.objects.items()
        semantics = bundled.semantics()
        actions = [e.action for e in workload.trace.actions(obj_id)]
        state = final_state(semantics, semantics.initial_state(), actions)
        assert state is not None, "recorded returns must replay cleanly"
        assert state == workload.final_states[obj_id]

    def test_reproducible(self):
        config = WorkloadConfig(threads=4, ops_per_thread=10, seed=99)
        first = generate_trace(config)
        second = generate_trace(config)
        assert [str(e) for e in first.trace] == [str(e) for e in second.trace]

    def test_seeds_vary_traces(self):
        base = WorkloadConfig(threads=4, ops_per_thread=10, seed=1)
        other = WorkloadConfig(threads=4, ops_per_thread=10, seed=2)
        assert ([str(e) for e in generate_trace(base).trace]
                != [str(e) for e in generate_trace(other).trace])

    def test_register_all_helper(self):
        workload = generate_trace(WorkloadConfig(threads=2,
                                                 ops_per_thread=3))
        seen = {}
        workload.register_all(lambda obj, bundled: seen.update({obj: bundled}))
        assert seen.keys() == workload.objects.keys()
