"""Barrier and Semaphore: scheduling behaviour and happens-before."""

import pytest

from repro.core.errors import SchedulerError
from repro.runtime.analyzers import Rd2Analyzer
from repro.runtime.collections_rt import MonitoredDict
from repro.runtime.monitor import Monitor
from repro.runtime.shared import SharedVar
from repro.sched.primitives import Barrier, Semaphore
from repro.sched.scheduler import Scheduler


def run(body, seed=0, analyzers=()):
    monitor = Monitor(analyzers=list(analyzers))
    scheduler = Scheduler(monitor, seed=seed)
    result = scheduler.run(body, scheduler, monitor)
    return result, monitor


class TestBarrierScheduling:
    def test_all_parties_pass_together(self):
        def main(sched, monitor):
            barrier = Barrier(monitor, sched, parties=3)
            log = []

            def worker(label):
                log.append(("before", label))
                barrier.wait()
                log.append(("after", label))

            sched.join_all([sched.spawn(worker, c) for c in "abc"])
            return log

        log, _ = run(main, seed=4)
        befores = [i for i, (phase, _) in enumerate(log) if phase == "before"]
        afters = [i for i, (phase, _) in enumerate(log) if phase == "after"]
        assert max(befores) < min(afters)

    def test_arrival_indices(self):
        def main(sched, monitor):
            barrier = Barrier(monitor, sched, parties=2)
            indices = []

            def worker():
                indices.append(barrier.wait())

            sched.join_all([sched.spawn(worker), sched.spawn(worker)])
            return sorted(indices)

        indices, _ = run(main)
        assert indices == [1, 2]

    def test_cyclic_reuse(self):
        def main(sched, monitor):
            barrier = Barrier(monitor, sched, parties=2)
            log = []

            def worker(label):
                for round_number in range(3):
                    barrier.wait()
                    log.append((round_number, label))

            sched.join_all([sched.spawn(worker, "x"),
                            sched.spawn(worker, "y")])
            return log

        log, _ = run(main, seed=9)
        rounds = [r for r, _ in log]
        assert rounds == sorted(rounds)

    def test_single_party_barrier_never_blocks(self):
        def main(sched, monitor):
            barrier = Barrier(monitor, sched, parties=1)
            return [barrier.wait(), barrier.wait()]

        result, _ = run(main)
        assert result == [1, 1]

    def test_insufficient_parties_deadlocks(self):
        def main(sched, monitor):
            barrier = Barrier(monitor, sched, parties=3)
            def worker():
                barrier.wait()
            sched.join_all([sched.spawn(worker), sched.spawn(worker)])

        with pytest.raises(SchedulerError):
            run(main)

    def test_invalid_parties(self):
        def main(sched, monitor):
            Barrier(monitor, sched, parties=0)
        with pytest.raises(ValueError):
            run(main)


class TestBarrierHappensBefore:
    def test_barrier_orders_operations_like_joinall(self):
        """puts before the barrier vs. a size after it: no race."""
        def main(sched, monitor):
            shared = MonitoredDict(monitor, name="d")
            barrier = Barrier(monitor, sched, parties=3)

            def writer(i):
                shared.put(f"k{i}", i)
                barrier.wait()

            def reader():
                barrier.wait()
                shared.size()

            sched.join_all([sched.spawn(writer, 0), sched.spawn(writer, 1),
                            sched.spawn(reader)])

        rd2 = Rd2Analyzer()
        _, monitor = run(main, seed=2, analyzers=[rd2])
        assert rd2.races() == []

    def test_without_barrier_the_same_program_races(self):
        def main(sched, monitor):
            shared = MonitoredDict(monitor, name="d")

            def writer(i):
                shared.put(f"k{i}", i)

            def reader():
                shared.size()

            sched.join_all([sched.spawn(writer, 0), sched.spawn(writer, 1),
                            sched.spawn(reader)])

        races_seen = False
        for seed in range(6):
            rd2 = Rd2Analyzer()
            run(main, seed=seed, analyzers=[rd2])
            races_seen = races_seen or bool(rd2.races())
        assert races_seen

    def test_same_side_operations_still_race_across_barrier_uses(self):
        """The barrier orders across it, not within a side."""
        def main(sched, monitor):
            shared = MonitoredDict(monitor, name="d")
            barrier = Barrier(monitor, sched, parties=2)

            def worker(i):
                shared.put("hot", i)       # same key: pre-barrier race
                barrier.wait()

            sched.join_all([sched.spawn(worker, 1), sched.spawn(worker, 2)])

        rd2 = Rd2Analyzer()
        run(main, seed=1, analyzers=[rd2])
        assert rd2.races()


class TestSemaphore:
    def test_mutual_exclusion_with_one_permit(self):
        def main(sched, monitor):
            semaphore = Semaphore(monitor, sched, permits=1)
            var = SharedVar(monitor, 0)

            def worker():
                for _ in range(5):
                    with semaphore:
                        current = var.read()
                        var.write(current + 1)

            sched.join_all([sched.spawn(worker) for _ in range(3)])
            return var.read()

        result, _ = run(main, seed=7)
        assert result == 15

    def test_counting_blocks_past_capacity(self):
        def main(sched, monitor):
            semaphore = Semaphore(monitor, sched, permits=2)
            in_section = SharedVar(monitor, 0)
            peak = SharedVar(monitor, 0)

            def worker():
                with semaphore:
                    now = in_section.read() + 1
                    in_section.write(now)
                    if now > peak.read():
                        peak.write(now)
                    monitor.preempt()
                    in_section.write(in_section.read() - 1)

            sched.join_all([sched.spawn(worker) for _ in range(5)])
            return peak.read()

        peak, _ = run(main, seed=3)
        assert 1 <= peak <= 2

    def test_release_beyond_initial_permits(self):
        def main(sched, monitor):
            semaphore = Semaphore(monitor, sched, permits=0)
            semaphore.release()
            semaphore.acquire()
            return semaphore.permits

        result, _ = run(main)
        assert result == 0

    def test_acquire_with_zero_permits_deadlocks_alone(self):
        def main(sched, monitor):
            Semaphore(monitor, sched, permits=0).acquire()

        with pytest.raises(SchedulerError):
            run(main)

    def test_negative_permits_rejected(self):
        def main(sched, monitor):
            Semaphore(monitor, sched, permits=-1)
        with pytest.raises(ValueError):
            run(main)

    def test_semaphore_creates_hb_edges(self):
        """Handoff through a semaphore orders producer and consumer."""
        def main(sched, monitor):
            semaphore = Semaphore(monitor, sched, permits=0)
            shared = MonitoredDict(monitor, name="d")

            def producer():
                shared.put("item", "ready")
                semaphore.release()

            def consumer():
                semaphore.acquire()
                shared.get("item")

            sched.join_all([sched.spawn(producer), sched.spawn(consumer)])

        rd2 = Rd2Analyzer()
        _, monitor = run(main, seed=5, analyzers=[rd2])
        assert rd2.races() == []
