"""Backend selection: the resolution table and its fallback reasons.

``resolve_backend`` must never fail hard — every request maps to a
usable backend, and whenever the selection differs from the request the
:class:`~repro.core.backend.BackendChoice` carries a human-readable
reason (the CLI prints it; operators grep for it).  The probes are
monkeypatched here so the whole table is testable on any host,
including hosts where shared memory or subinterpreters genuinely work.
"""

import pytest

from repro.core import backend
from repro.core.backend import BackendChoice, resolve_backend


@pytest.fixture
def probes(monkeypatch):
    """Control every runtime probe; returns a dict to flip per-test."""
    state = {"shm": True, "free_threaded": False,
             "subinterp": (True, "")}
    monkeypatch.setattr(backend, "shm_available", lambda: state["shm"])
    monkeypatch.setattr(backend, "free_threaded",
                        lambda: state["free_threaded"])
    monkeypatch.setattr(backend, "subinterpreters_available",
                        lambda: state["subinterp"])
    return state


class TestResolutionTable:
    def test_pickle_and_thread_always_honored(self, probes):
        probes["shm"] = False
        probes["subinterp"] = (False, "gone")
        for name in ("pickle", "thread"):
            choice = resolve_backend(name)
            assert choice == BackendChoice(name, name)
            assert choice.describe() == name

    def test_shm_honored_when_available(self, probes):
        assert resolve_backend("shm") == BackendChoice("shm", "shm")

    def test_shm_falls_back_to_pickle_with_reason(self, probes):
        probes["shm"] = False
        choice = resolve_backend("shm")
        assert (choice.selected, choice.requested) == ("pickle", "shm")
        assert "unavailable" in choice.reason
        assert choice.reason in choice.describe()

    def test_subinterp_chain(self, probes):
        assert resolve_backend("subinterp").selected == "subinterp"
        probes["subinterp"] = (False, "probe failed: boom")
        choice = resolve_backend("subinterp")
        assert choice.selected == "shm"
        assert "boom" in choice.reason
        probes["shm"] = False
        choice = resolve_backend("subinterp")
        assert choice.selected == "pickle"
        assert "boom" in choice.reason and "unavailable" in choice.reason

    def test_auto_prefers_free_threading_then_shm_then_pickle(self, probes):
        probes["free_threaded"] = True
        assert resolve_backend("auto").selected == "thread"
        probes["free_threaded"] = False
        choice = resolve_backend("auto")
        assert choice.selected == "shm"
        assert "GIL" in choice.reason
        probes["shm"] = False
        assert resolve_backend("auto").selected == "pickle"

    def test_unknown_backend_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("carrier-pigeon")


class TestProbes:
    def test_probe_results_are_cached(self, monkeypatch):
        backend._reset_probe_cache()
        calls = {"n": 0}
        from multiprocessing import shared_memory
        original = shared_memory.SharedMemory

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(shared_memory, "SharedMemory", counting)
        try:
            first = backend.shm_available()
            again = backend.shm_available()
        finally:
            backend._reset_probe_cache()
        assert first is again
        assert calls["n"] <= 1

    def test_reset_hook_forgets_cached_probes(self):
        backend._reset_probe_cache()
        assert backend._SHM_PROBE is None
        assert backend._SUBINTERP_PROBE is None
        backend.shm_available()
        assert backend._SHM_PROBE is not None
        backend._reset_probe_cache()
        assert backend._SHM_PROBE is None

    def test_choice_is_immutable(self):
        choice = BackendChoice("auto", "shm", "why")
        with pytest.raises(Exception):
            choice.selected = "pickle"
