"""Race-report grouping (redundancy collapsing)."""

from repro.core.access_points import AccessPoint
from repro.core.events import NIL, Action
from repro.core.races import (CommutativityRace, DataRace, LocksetWarning,
                              group_races)
from repro.core.trace import TraceBuilder
from repro.core.vector_clock import VectorClock


def commutativity_race(obj="o", schema1="w", schema2="w", key="k"):
    return CommutativityRace(
        obj=obj,
        current=Action(obj, "put", (key, 1), (0,)),
        current_clock=VectorClock({1: 1}),
        point=AccessPoint(obj, schema1, key),
        prior_point=AccessPoint(obj, schema2, key),
        prior_clock=VectorClock({2: 1}),
    )


def data_race(location="x", access="write", conflicting="write"):
    return DataRace(location=location, access=access, tid=1,
                    clock=VectorClock({1: 1}), conflicting=conflicting,
                    conflicting_tid=2)


class TestGrouping:
    def test_same_schema_pair_collapses_across_keys(self):
        reports = [commutativity_race(key=f"k{i}") for i in range(5)]
        groups = group_races(reports)
        assert len(groups) == 1
        assert groups[0].count == 5

    def test_different_schema_pairs_stay_separate(self):
        reports = [commutativity_race(schema1="w", schema2="w"),
                   commutativity_race(schema1="w", schema2="r")]
        assert len(group_races(reports)) == 2

    def test_schema_pair_is_unordered(self):
        reports = [commutativity_race(schema1="w", schema2="r"),
                   commutativity_race(schema1="r", schema2="w")]
        assert len(group_races(reports)) == 1

    def test_objects_separate_groups(self):
        reports = [commutativity_race(obj="o1"),
                   commutativity_race(obj="o2")]
        assert len(group_races(reports)) == 2

    def test_data_races_group_by_location_and_kinds(self):
        reports = [data_race(), data_race(),
                   data_race(access="read", conflicting="write"),
                   data_race(location="y")]
        groups = group_races(reports)
        assert len(groups) == 3
        assert groups[0].count == 2

    def test_rw_and_wr_group_together(self):
        reports = [data_race(access="read", conflicting="write"),
                   data_race(access="write", conflicting="read")]
        assert len(group_races(reports)) == 1

    def test_largest_group_first(self):
        reports = ([data_race(location="rare")]
                   + [data_race(location="hot")] * 4)
        groups = group_races(reports)
        assert groups[0].count == 4
        assert groups[0].sample.location == "hot"

    def test_sample_is_first_report(self):
        first = commutativity_race(key="first")
        later = commutativity_race(key="later")
        groups = group_races([first, later])
        assert groups[0].sample is first

    def test_lockset_warnings(self):
        reports = [LocksetWarning("x", "write", 1),
                   LocksetWarning("x", "read", 2)]
        assert len(group_races(reports)) == 1

    def test_str(self):
        group = group_races([data_race(), data_race()])[0]
        assert str(group).startswith("[2x]")

    def test_empty(self):
        assert group_races([]) == ()


class TestEndToEndGrouping:
    def test_detector_output_groups_sensibly(self):
        from repro.core.detector import CommutativityRaceDetector
        from repro.specs.dictionary import dictionary_representation
        builder = TraceBuilder(root=0)
        for worker in range(1, 7):
            builder.fork(0, worker)
        # Three racing put/put pairs on distinct keys: one group.
        for pair in range(3):
            builder.invoke(2 * pair + 1, "o", "put", f"k{pair}", 1,
                           returns=NIL)
            builder.invoke(2 * pair + 2, "o", "put", f"k{pair}", 2,
                           returns=1)
        detector = CommutativityRaceDetector(root=0)
        detector.register_object("o", dictionary_representation())
        races = detector.run(builder.build())
        assert len(races) == 3
        groups = group_races(races)
        assert len(groups) == 1
        assert groups[0].count == 3
