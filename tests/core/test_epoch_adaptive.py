"""Property tests locking down epoch-adaptive point clocks (PR 7).

Three promises, each stated as a hypothesis property over the
contention-adversarial corpus (``tests.support.build_contention_trace`` —
cross-thread argument re-targeting plus tid churn, the epoch machinery's
worst case):

* **Verdict preservation** — inflation, inline re-deflation and
  maintenance-window deflation never change a report: every adaptive
  configuration (including a streaming analyzer deflating every few
  events) is byte-identical to the always-full-vector-clock detector.
* **Contention-only inflation** — a point inflates iff a second thread
  touches it *concurrently*.  The O(1) epoch certificate
  (``stamp <= C[tid]``) is checked against an independent reference that
  replays the trace with full ``⊑`` comparisons, so a certificate that
  ever disagreed with the real ordering relation would show up as a
  promotion-count mismatch.
* **Persistence** — epoch state survives pickling mid-run (the sharded
  pipeline's transport) and a checkpoint/resume cycle reproduces the
  uninterrupted run exactly with epochs and batching on.
"""

import pickle
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import CheckpointConfig
from repro.core.detector import CommutativityRaceDetector
from repro.core.events import EventKind, join_event
from repro.core.hb import HappensBeforeTracker
from repro.core.parallel import ShardedDetector
from repro.core.plan import _PointEpoch
from repro.core.stream import StreamAnalyzer
from repro.specs import bundled_objects

from tests.support import (build_contention_trace, build_multi_object_trace,
                           contention_program, race_snapshot,
                           register_bindings)

seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)


def adversarial_case(seed):
    return build_contention_trace(contention_program(seed))


def snapshots(races):
    return [race_snapshot(r) for r in races]


class TestVerdictPreservation:
    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_adaptive_with_streaming_deflation_byte_identical(self, seed):
        """Deflating every 3 events never perturbs a single report."""
        trace, bindings = adversarial_case(seed)
        plain = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=False), bindings)
        plain.run(trace)
        analyzer = register_bindings(
            StreamAnalyzer(root=0, adaptive=True, window=3,
                           prune_interval=2, batch_window=2), bindings)
        analyzer.run(trace)
        assert snapshots(analyzer.races) == snapshots(plain.races)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_explicit_deflation_between_events_byte_identical(self, seed):
        """deflate_point_clocks() at arbitrary boundaries is invisible."""
        trace, bindings = adversarial_case(seed)
        plain = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=False), bindings)
        plain.run(trace)
        adaptive = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=True), bindings)
        for index, event in enumerate(trace):
            adaptive.process(event)
            if index % 5 == 4:
                adaptive.deflate_point_clocks()
        assert snapshots(adaptive.races) == snapshots(plain.races)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_deflation_restores_epochs(self, seed):
        """After deflation only genuinely-contended points stay inflated.

        Once every worker is joined, one live thread (the root) remains,
        so every point clock is coverable by a single-component
        certificate: a final deflation must leave no full vector clocks.
        """
        trace, bindings = adversarial_case(seed)
        detector = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=True), bindings)
        detector.run(trace)
        hb = detector.happens_before
        for tid in list(hb.live_threads()):
            if tid != 0:
                detector.process(join_event(0, tid))
        hb.retire_joined_threads()
        detector.deflate_point_clocks()
        for state in detector._objects.values():
            for prior in state.point_clock.values():
                assert type(prior) is _PointEpoch


class TestContentionOnlyInflation:
    @staticmethod
    def reference_promotions(trace, bindings):
        """Replay with full ``⊑`` comparisons instead of certificates.

        The point state machine is the detector's, but ordering is
        decided by ``VectorClock.leq`` on the stored full clock — no
        epoch certificate anywhere.  Equality with the detector's
        ``epoch_promotions`` therefore proves both that inflation fires
        exactly on concurrent cross-thread touches and that the O(1)
        certificate never disagrees with the real ordering relation.
        """
        registry = bundled_objects()
        reps = {name: registry[kind].representation()
                for name, kind in bindings.items()}
        hb = HappensBeforeTracker(root=trace.root)
        # pt -> [owner_tid, clock, inflated]
        points = {}
        promotions = 0
        for event in trace:
            clock = hb.observe(event)
            if event.kind is not EventKind.ACTION:
                continue
            action = event.action
            rep = reps.get(action.obj)
            if rep is None:
                continue
            for pt in rep.points_of(action):
                entry = points.get(pt)
                if entry is None:
                    points[pt] = [event.tid, clock, False]
                elif entry[2]:
                    if entry[1].leq(clock):  # inline re-deflation
                        points[pt] = [event.tid, clock, False]
                    else:
                        entry[1] = entry[1].join(clock)
                elif entry[0] == event.tid or entry[1].leq(clock):
                    points[pt] = [event.tid, clock, False]
                else:
                    promotions += 1
                    points[pt] = [event.tid, entry[1].join(clock), True]
        return promotions

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_promotion_count_matches_full_comparison_reference(self, seed):
        trace, bindings = adversarial_case(seed)
        detector = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=True), bindings)
        detector.run(trace)
        assert (detector.stats.epoch_promotions
                == self.reference_promotions(trace, bindings))

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_single_thread_never_promotes(self, seed):
        kinds = contention_program(seed)[0]
        trace, bindings = build_multi_object_trace(
            (kinds, seed, 1, 40, 0.0, False))
        detector = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=True), bindings)
        detector.run(trace)
        assert detector.stats.epoch_promotions == 0
        assert detector.stats.races == 0

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_fully_locked_trace_never_promotes(self, seed):
        """lock_rate=1.0 totally orders the actions: no contention."""
        kinds = contention_program(seed)[0]
        trace, bindings = build_multi_object_trace(
            (kinds, seed, 4, 40, 1.0, False))
        detector = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=True), bindings)
        detector.run(trace)
        assert detector.stats.epoch_promotions == 0
        assert detector.stats.races == 0


class TestPersistence:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_epoch_state_pickles_mid_run(self, seed):
        """A mid-run detector (epochs, inflated points, pending batch)
        pickles, and the copy finishes the trace identically."""
        trace, bindings = adversarial_case(seed)
        events = list(trace)
        cut = len(events) // 2
        original = register_bindings(
            CommutativityRaceDetector(root=0, adaptive=True,
                                      batch_window=3), bindings)
        for event in events[:cut]:
            original.process(event)
        clone = pickle.loads(pickle.dumps(original))
        for event in events[cut:]:
            original.process(event)
            clone.process(event)
        original.flush_batch()
        clone.flush_batch()
        assert snapshots(clone.races) == snapshots(original.races)
        assert clone.stats == original.stats

    def test_point_epoch_pickles_by_name(self):
        from repro.core.vector_clock import VectorClock
        epoch = _PointEpoch(3, 7, VectorClock({3: 7}))
        clone = pickle.loads(pickle.dumps(epoch))
        assert clone.tid == 3 and clone.stamp == 7
        assert clone.clock == epoch.clock

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_resume_with_epochs_and_batching(self, seed):
        """Resume reconstructs worker-side epoch state deterministically."""
        trace, bindings = adversarial_case(seed)
        # tempfile instead of the tmp_path fixture: function-scoped pytest
        # fixtures don't reset between hypothesis examples.
        with tempfile.TemporaryDirectory() as tmp:
            self._resume_case(trace, bindings, f"{tmp}/ck")

    def _resume_case(self, trace, bindings, path):
        interval = max(1, len(trace) // 3)
        full = register_bindings(
            ShardedDetector(root=0, workers=1, adaptive=True, batch_window=4,
                            checkpoint=CheckpointConfig(path,
                                                        interval=interval)),
            bindings)
        full.run(trace)
        resumed = register_bindings(
            ShardedDetector(root=0, workers=1, adaptive=True, batch_window=4,
                            resume_from=path), bindings)
        resumed.run(trace)
        assert not resumed.faults
        assert snapshots(resumed.races) == snapshots(full.races)
        assert resumed.stats == full.stats
