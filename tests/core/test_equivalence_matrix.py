"""Cross-configuration verdict preservation on one randomized corpus.

The detector docstring promises that its configuration knobs change cost,
never verdicts: adaptive point epochs vs plain vector clocks, and the
ENUMERATE vs SCAN phase-1 strategies (Section 5.4), must agree race for
race.  This suite pins that promise on the same randomized multi-object
corpus the sharded differential harness uses, for both the sequential
detector and the sharded pipeline.

Comparison granularity differs deliberately:

* ENUMERATE vs SCAN visit the same (point, candidate) pairs in different
  orders, so reports are compared as sorted full snapshots (clocks
  included) — content must match exactly, order may not.
* adaptive (epoch) mode carries the exact accumulated clock inside each
  epoch, so adaptive-vs-plain is compared **byte-identically** — same
  reports, same clocks, same order.  (Before clock-carrying epochs this
  suite had to fall back to verdict keys; the stronger identity is the
  point of the representation.)
* the compiled hot path (check plans + interned access points) is a pure
  execution strategy: it enumerates the same candidates in the same
  order as representation dispatch, so compiled-vs-uncompiled is the
  *strictest* comparison — reports equal in content **and order**, stats
  equal counter for counter.
* columnar batch checking replays the same loop window-at-a-time, and
  every window size must be invisible: reports and stats identical to
  per-event processing for any ``batch_window``.

The full-matrix test closes the loop: every configuration on the
compiled × adaptive × batch-window × (sequential|sharded) axes — 24
configurations — must report **byte-identically** to the one reference
everything is defined against, the sequential uncompiled plain detector.
"""

import os

import pytest

from repro.core.backend import (free_threaded, shm_available,
                                subinterpreters_available)
from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.parallel import ShardedDetector

from tests.support import (build_multi_object_trace, race_snapshot,
                           random_multi_object_program, register_bindings,
                           verdict_keys)

CORPUS_SEEDS = range(40)

# The CI matrix reruns this suite under both multiprocessing start
# methods (fork and spawn): worker transport must not perturb a verdict.
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None


def corpus():
    for seed in CORPUS_SEEDS:
        yield build_multi_object_trace(random_multi_object_program(seed))


def run_detector(trace, bindings, factory, **kw):
    if factory is ShardedDetector and START_METHOD:
        kw.setdefault("mp_context", START_METHOD)
    detector = register_bindings(factory(root=0, **kw), bindings)
    detector.run(trace)
    return detector


def snapshots(detector):
    """Race snapshots as sortable tuples (order-insensitive comparison)."""
    return sorted(tuple(sorted(race_snapshot(race).items()))
                  for race in detector.races)


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestStrategyEquivalence:
    def test_enumerate_vs_scan_same_reports(self, factory):
        for trace, bindings in corpus():
            enum = run_detector(trace, bindings, factory,
                                strategy=Strategy.ENUMERATE)
            scan = run_detector(trace, bindings, factory,
                                strategy=Strategy.SCAN)
            assert snapshots(enum) == snapshots(scan)
            assert enum.stats.races == scan.stats.races

    def test_auto_matches_enumerate_for_bundled_reps(self, factory):
        # Every bundled representation is bounded, so AUTO must resolve to
        # ENUMERATE — identical reports *and* identical check counts.
        for trace, bindings in corpus():
            auto = run_detector(trace, bindings, factory)
            enum = run_detector(trace, bindings, factory,
                                strategy=Strategy.ENUMERATE)
            assert auto.races == enum.races
            assert auto.stats == enum.stats


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestAdaptiveEquivalence:
    def test_adaptive_vs_plain_byte_identical(self, factory):
        for trace, bindings in corpus():
            plain = run_detector(trace, bindings, factory, adaptive=False)
            adaptive = run_detector(trace, bindings, factory, adaptive=True)
            assert ([race_snapshot(r) for r in adaptive.races]
                    == [race_snapshot(r) for r in plain.races])
            assert adaptive.stats.races == plain.stats.races


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestCompiledEquivalence:
    def test_compiled_vs_uncompiled_identical(self, factory):
        """The strict identity: same reports in the same order, same stats."""
        for trace, bindings in corpus():
            compiled = run_detector(trace, bindings, factory)
            dispatch = run_detector(trace, bindings, factory, compiled=False)
            assert compiled.races == dispatch.races
            assert compiled.stats == dispatch.stats

    def test_compiled_composes_with_adaptive_and_scan(self, factory):
        # The plan axis must be invisible whatever it is combined with:
        # under SCAN no plan compiles (the flag is a no-op), under
        # adaptive the epoch bookkeeping rides the compiled loop.
        for trace, bindings in corpus():
            for adaptive in (False, True):
                for strategy in (Strategy.ENUMERATE, Strategy.SCAN):
                    compiled = run_detector(trace, bindings, factory,
                                            adaptive=adaptive,
                                            strategy=strategy)
                    dispatch = run_detector(trace, bindings, factory,
                                            adaptive=adaptive,
                                            strategy=strategy,
                                            compiled=False)
                    assert compiled.races == dispatch.races
                    assert compiled.stats == dispatch.stats


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestBatchEquivalence:
    def test_batched_vs_per_event_identical(self, factory):
        """Any window size is invisible: same reports in order, same stats."""
        for trace, bindings in corpus():
            per_event = run_detector(trace, bindings, factory)
            for window in (1, 3, 64):
                batched = run_detector(trace, bindings, factory,
                                       batch_window=window)
                assert batched.races == per_event.races
                assert batched.stats == per_event.stats

    def test_batching_composes_with_pruning(self, factory):
        # Prune entry points drain the buffer first, so the prune cadence
        # (and its counters) must be unchanged by batching.
        for trace, bindings in corpus():
            per_event = run_detector(trace, bindings, factory,
                                     prune_interval=3)
            batched = run_detector(trace, bindings, factory,
                                   prune_interval=3, batch_window=7)
            assert batched.races == per_event.races
            assert batched.stats == per_event.stats


PREDICT_SEEDS = list(CORPUS_SEEDS)[:12]


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestPredictiveEquivalence:
    """The predictive pass rides every engine without perturbing it.

    Witnessed reports must stay byte-identical with prediction on, and
    the prediction list itself must be engine-independent: sequential
    and sharded (and, via its own suite, streaming) agree pair for pair,
    race for race.
    """

    def test_witnessed_reports_unchanged_by_prediction(self, factory):
        for seed in PREDICT_SEEDS:
            trace, bindings = build_multi_object_trace(
                random_multi_object_program(seed))
            plain = run_detector(trace, bindings, factory)
            predictive = run_detector(trace, bindings, factory,
                                      predict_window=32)
            assert ([race_snapshot(r) for r in predictive.races]
                    == [race_snapshot(r) for r in plain.races]), seed
            assert predictive.stats.races == plain.stats.races

    def test_predictions_match_the_sequential_reference(self, factory):
        for seed in PREDICT_SEEDS:
            trace, bindings = build_multi_object_trace(
                random_multi_object_program(seed))
            reference = run_detector(trace, bindings,
                                     CommutativityRaceDetector,
                                     predict_window=32)
            kw = ({"workers": 2} if factory is ShardedDetector else {})
            det = run_detector(trace, bindings, factory,
                               predict_window=32, **kw)
            assert ([(p.pair, race_snapshot(p.race)) for p in det.predicted]
                    == [(p.pair, race_snapshot(p.race))
                        for p in reference.predicted]), seed

    def test_prediction_composes_with_batch_and_adaptive(self, factory):
        for seed in PREDICT_SEEDS[:6]:
            trace, bindings = build_multi_object_trace(
                random_multi_object_program(seed))
            reference = run_detector(trace, bindings,
                                     CommutativityRaceDetector,
                                     predict_window=32)
            det = run_detector(trace, bindings, factory, predict_window=32,
                               adaptive=False, batch_window=7)
            assert ([(p.pair, race_snapshot(p.race)) for p in det.predicted]
                    == [(p.pair, race_snapshot(p.race))
                        for p in reference.predicted]), seed


class TestFullMatrix:
    def test_all_twenty_four_configurations_byte_identical(self):
        """compiled × adaptive × batch-window × (sequential|sharded).

        Every one of the 24 configurations must report byte-identically
        (clocks included, order included) to the reference everything is
        specified against: the sequential uncompiled plain detector.
        """
        for trace, bindings in corpus():
            reference = run_detector(trace, bindings,
                                     CommutativityRaceDetector,
                                     compiled=False, adaptive=False)
            want = [race_snapshot(r) for r in reference.races]
            for factory in (CommutativityRaceDetector, ShardedDetector):
                for compiled in (False, True):
                    for adaptive in (False, True):
                        for batch_window in (0, 1, 7):
                            det = run_detector(trace, bindings, factory,
                                               compiled=compiled,
                                               adaptive=adaptive,
                                               batch_window=batch_window)
                            got = [race_snapshot(r) for r in det.races]
                            assert got == want, (
                                f"{factory.__name__} compiled={compiled} "
                                f"adaptive={adaptive} "
                                f"batch_window={batch_window}")

    def test_scan_matrix_agrees_on_verdicts(self):
        """The SCAN strategy reorders reports, so its matrix leg is
        compared on verdict keys (the old 16-config identity)."""
        for trace, bindings in corpus():
            verdicts = set()
            for factory in (CommutativityRaceDetector, ShardedDetector):
                for compiled in (False, True):
                    for adaptive in (False, True):
                        for strategy in (Strategy.ENUMERATE, Strategy.SCAN):
                            det = run_detector(trace, bindings, factory,
                                               compiled=compiled,
                                               adaptive=adaptive,
                                               strategy=strategy)
                            verdicts.add(tuple(verdict_keys(det.races)))
            assert len(verdicts) == 1


# Shard-transport axes.  ``shm`` is expected everywhere CI runs; the
# ``thread`` axis only means true parallelism on a free-threaded (PEP
# 703) build and *skips* elsewhere rather than testing a degenerate
# configuration.  The CI matrix reruns this file under both fork and
# spawn (``REPRO_TEST_START_METHOD``), so each axis is proven under both
# start methods.
BACKEND_AXES = [
    pytest.param("shm", marks=pytest.mark.skipif(
        not shm_available(), reason="no shared memory on this host")),
    pytest.param("thread", marks=pytest.mark.skipif(
        not free_threaded(),
        reason="requires a free-threaded (PEP 703) interpreter")),
]

BACKEND_SEEDS = list(CORPUS_SEEDS)[:16]


@pytest.mark.parametrize("backend", BACKEND_AXES)
class TestBackendEquivalence:
    """The execution backend must be invisible, byte for byte.

    Every transport — pickled pool, shared-memory rings, free-threaded
    thread pool — replays the same stamped actions through the same
    detector, so reports must match the sequential uncompiled plain
    reference exactly: same races, same clocks, same order.
    """

    def test_byte_identical_to_sequential_reference(self, backend):
        for seed in BACKEND_SEEDS:
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            reference = run_detector(trace, bindings,
                                     CommutativityRaceDetector,
                                     compiled=False, adaptive=False)
            det = run_detector(trace, bindings, ShardedDetector,
                               workers=2, backend=backend)
            assert det.backend.selected == backend, det.backend
            assert ([race_snapshot(r) for r in det.races]
                    == [race_snapshot(r) for r in reference.races]), seed

    def test_stats_match_the_pickle_backend(self, backend):
        # Same transport-invisibility claim for the counters: whatever
        # crosses the process boundary, the detector work is identical.
        for seed in BACKEND_SEEDS[:6]:
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            pickled = run_detector(trace, bindings, ShardedDetector,
                                   workers=2, backend="pickle")
            other = run_detector(trace, bindings, ShardedDetector,
                                 workers=2, backend=backend)
            assert other.races == pickled.races
            assert other.stats == pickled.stats

    def test_composes_with_prune_batch_and_adaptive(self, backend):
        for seed in (3, 17, 41):
            program = random_multi_object_program(seed)
            trace, bindings = build_multi_object_trace(program)
            reference = run_detector(trace, bindings,
                                     CommutativityRaceDetector,
                                     compiled=False, adaptive=False)
            det = run_detector(trace, bindings, ShardedDetector,
                               workers=2, backend=backend, adaptive=True,
                               prune_interval=7, batch_window=16)
            assert ([race_snapshot(r) for r in det.races]
                    == [race_snapshot(r) for r in reference.races]), seed


class TestSubinterpreterAxis:
    """Optional axis: per-shard subinterpreters where the runtime has a
    usable implementation; skips (never fails) everywhere else."""

    pytestmark = pytest.mark.skipif(
        not subinterpreters_available()[0],
        reason=f"subinterpreters unusable "
               f"({subinterpreters_available()[1] or 'no module'})")

    def test_byte_identical_to_sequential_reference(self):
        for seed in (3, 17, 41, 77):
            program = random_multi_object_program(seed, max_ops=60)
            trace, bindings = build_multi_object_trace(program)
            reference = run_detector(trace, bindings,
                                     CommutativityRaceDetector,
                                     compiled=False, adaptive=False)
            det = run_detector(trace, bindings, ShardedDetector,
                               workers=2, backend="subinterp")
            assert det.backend.selected == "subinterp", det.backend
            assert ([race_snapshot(r) for r in det.races]
                    == [race_snapshot(r) for r in reference.races]), seed
