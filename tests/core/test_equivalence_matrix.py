"""Cross-configuration verdict preservation on one randomized corpus.

The detector docstring promises that its configuration knobs change cost,
never verdicts: adaptive point epochs vs plain vector clocks, and the
ENUMERATE vs SCAN phase-1 strategies (Section 5.4), must agree race for
race.  This suite pins that promise on the same randomized multi-object
corpus the sharded differential harness uses, for both the sequential
detector and the sharded pipeline.

Comparison granularity differs deliberately:

* ENUMERATE vs SCAN visit the same (point, candidate) pairs in different
  orders, so reports are compared as sorted full snapshots (clocks
  included) — content must match exactly, order may not.
* adaptive mode reports a *narrower* prior clock (the epoch) while a point
  is single-threaded, so adaptive-vs-plain equivalence is stated on
  verdict keys (object, action, point pair) — the same identity
  ``tests/core/test_adaptive.py`` uses.
* the compiled hot path (check plans + interned access points) is a pure
  execution strategy: it enumerates the same candidates in the same
  order as representation dispatch, so compiled-vs-uncompiled is the
  *strictest* comparison — reports equal in content **and order**, stats
  equal counter for counter.
"""

import pytest

from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.parallel import ShardedDetector

from tests.support import (build_multi_object_trace, race_snapshot,
                           random_multi_object_program, register_bindings,
                           verdict_keys)

CORPUS_SEEDS = range(40)


def corpus():
    for seed in CORPUS_SEEDS:
        yield build_multi_object_trace(random_multi_object_program(seed))


def run_detector(trace, bindings, factory, **kw):
    detector = register_bindings(factory(root=0, **kw), bindings)
    detector.run(trace)
    return detector


def snapshots(detector):
    """Race snapshots as sortable tuples (order-insensitive comparison)."""
    return sorted(tuple(sorted(race_snapshot(race).items()))
                  for race in detector.races)


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestStrategyEquivalence:
    def test_enumerate_vs_scan_same_reports(self, factory):
        for trace, bindings in corpus():
            enum = run_detector(trace, bindings, factory,
                                strategy=Strategy.ENUMERATE)
            scan = run_detector(trace, bindings, factory,
                                strategy=Strategy.SCAN)
            assert snapshots(enum) == snapshots(scan)
            assert enum.stats.races == scan.stats.races

    def test_auto_matches_enumerate_for_bundled_reps(self, factory):
        # Every bundled representation is bounded, so AUTO must resolve to
        # ENUMERATE — identical reports *and* identical check counts.
        for trace, bindings in corpus():
            auto = run_detector(trace, bindings, factory)
            enum = run_detector(trace, bindings, factory,
                                strategy=Strategy.ENUMERATE)
            assert auto.races == enum.races
            assert auto.stats == enum.stats


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestAdaptiveEquivalence:
    def test_adaptive_vs_plain_same_verdicts(self, factory):
        for trace, bindings in corpus():
            plain = run_detector(trace, bindings, factory)
            adaptive = run_detector(trace, bindings, factory, adaptive=True)
            assert verdict_keys(adaptive.races) == verdict_keys(plain.races)
            assert adaptive.stats.races == plain.stats.races


@pytest.mark.parametrize("factory", [CommutativityRaceDetector,
                                     ShardedDetector],
                         ids=["sequential", "sharded"])
class TestCompiledEquivalence:
    def test_compiled_vs_uncompiled_identical(self, factory):
        """The strict identity: same reports in the same order, same stats."""
        for trace, bindings in corpus():
            compiled = run_detector(trace, bindings, factory)
            dispatch = run_detector(trace, bindings, factory, compiled=False)
            assert compiled.races == dispatch.races
            assert compiled.stats == dispatch.stats

    def test_compiled_composes_with_adaptive_and_scan(self, factory):
        # The plan axis must be invisible whatever it is combined with:
        # under SCAN no plan compiles (the flag is a no-op), under
        # adaptive the epoch bookkeeping rides the compiled loop.
        for trace, bindings in corpus():
            for adaptive in (False, True):
                for strategy in (Strategy.ENUMERATE, Strategy.SCAN):
                    compiled = run_detector(trace, bindings, factory,
                                            adaptive=adaptive,
                                            strategy=strategy)
                    dispatch = run_detector(trace, bindings, factory,
                                            adaptive=adaptive,
                                            strategy=strategy,
                                            compiled=False)
                    assert compiled.races == dispatch.races
                    assert compiled.stats == dispatch.stats


class TestFullMatrixAgreesOnVerdicts:
    def test_all_sixteen_configurations(self):
        """compiled × adaptive × strategy × (sequential|sharded)."""
        for trace, bindings in corpus():
            verdicts = set()
            for factory in (CommutativityRaceDetector, ShardedDetector):
                for compiled in (False, True):
                    for adaptive in (False, True):
                        for strategy in (Strategy.ENUMERATE, Strategy.SCAN):
                            det = run_detector(trace, bindings, factory,
                                               compiled=compiled,
                                               adaptive=adaptive,
                                               strategy=strategy)
                            verdicts.add(tuple(verdict_keys(det.races)))
            assert len(verdicts) == 1
