"""Happens-before graph utilities."""

import networkx as nx
import pytest

from repro.core.events import NIL
from repro.core.graph import (concurrency_matrix, critical_path,
                              happens_before_graph, parallelism_profile)
from repro.core.trace import TraceBuilder


def diamond_trace():
    """Root forks two workers, each acts, then joins — a diamond."""
    return (TraceBuilder(root=0)
            .invoke(0, "o", "put", "seed", 0, returns=NIL)
            .fork(0, 1).fork(0, 2)
            .invoke(1, "o", "put", "a", 1, returns=NIL)
            .invoke(2, "o", "put", "b", 2, returns=NIL)
            .join_all(0, [1, 2])
            .invoke(0, "o", "size", returns=3)
            .build())


def sequential_trace(n=5):
    builder = TraceBuilder(root=0)
    for index in range(n):
        builder.invoke(0, "o", "put", f"k{index}", index, returns=NIL)
    return builder.build()


class TestHappensBeforeGraph:
    def test_diamond_shape(self):
        graph = happens_before_graph(diamond_trace())
        assert graph.number_of_nodes() == 4
        seed, left, right, size = sorted(graph.nodes)
        assert set(graph.successors(seed)) == {left, right}
        assert set(graph.predecessors(size)) == {left, right}
        assert not graph.has_edge(left, right)

    def test_transitive_reduction_applied(self):
        graph = happens_before_graph(sequential_trace(4))
        # A chain: each node points only to its successor.
        assert graph.number_of_edges() == 3

    def test_is_a_dag(self):
        graph = happens_before_graph(diamond_trace())
        assert nx.is_directed_acyclic_graph(graph)

    def test_node_attributes(self):
        graph = happens_before_graph(diamond_trace())
        node = next(iter(graph.nodes))
        assert "event" in graph.nodes[node]
        assert "label" in graph.nodes[node]

    def test_all_events_mode(self):
        graph = happens_before_graph(diamond_trace(), actions_only=False)
        assert graph.number_of_nodes() == len(diamond_trace())

    def test_empty_trace(self):
        graph = happens_before_graph(TraceBuilder(root=0).build())
        assert graph.number_of_nodes() == 0


class TestConcurrencyMatrix:
    def test_diamond_matrix(self):
        trace = diamond_trace()
        matrix = concurrency_matrix(trace)
        actions = trace.actions()
        seed, left, right, size = actions
        assert matrix[(left.index, right.index)] is True
        assert matrix[(seed.index, left.index)] is False
        assert matrix[(left.index, size.index)] is False

    def test_sequential_trace_has_no_parallelism(self):
        matrix = concurrency_matrix(sequential_trace())
        assert not any(matrix.values())


class TestCriticalPath:
    def test_sequential_trace_path_is_everything(self):
        trace = sequential_trace(5)
        assert len(critical_path(trace)) == 5

    def test_diamond_path_skips_one_branch(self):
        path = critical_path(diamond_trace())
        assert len(path) == 3  # seed → one worker → size

    def test_empty(self):
        assert critical_path(TraceBuilder(root=0).build()) == []


class TestRacingContext:
    def test_cones_of_a_racing_pair(self):
        from repro.core.graph import racing_context
        trace = diamond_trace()
        seed, left, right, _ = trace.actions()
        context = racing_context(trace, left, right)
        common_indices = {event.index for event in context["common"]}
        assert seed.index in common_indices          # shared causal past
        left_only = {event.index for event in context["first_only"]}
        right_only = {event.index for event in context["second_only"]}
        assert left.index not in left_only           # self excluded
        assert not (left_only & right_only)          # cones are disjoint

    def test_ordered_pair_shows_dependency(self):
        from repro.core.graph import racing_context
        trace = diamond_trace()
        seed, left, _, size = trace.actions()
        context = racing_context(trace, seed, size)
        second_only = {event.index for event in context["second_only"]}
        assert left.index in second_only   # size's cone contains the worker
        assert context["first_only"] == []


class TestProfile:
    def test_sequential_profile(self):
        profile = parallelism_profile(sequential_trace(5))
        assert profile["actions"] == 5
        assert profile["critical_path"] == 5
        assert profile["parallel_fraction"] == 0.0
        assert profile["average_width"] == 1.0

    def test_diamond_profile(self):
        profile = parallelism_profile(diamond_trace())
        assert profile["critical_path"] == 3
        assert 0 < profile["parallel_fraction"] < 1
        assert profile["average_width"] > 1.0

    def test_empty_profile(self):
        profile = parallelism_profile(TraceBuilder(root=0).build())
        assert profile["actions"] == 0
        assert profile["average_width"] == 0.0
