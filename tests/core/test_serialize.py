"""Trace persistence: JSONL round-trips."""

import io

import pytest
from hypothesis import given, settings

from repro.core.errors import ReproError
from repro.core.events import NIL, EventKind
from repro.core.serialize import (dump_trace, dumps_trace, load_trace,
                                  loads_trace)
from repro.core.trace import TraceBuilder

from tests.support import build_trace, trace_programs


def rich_trace():
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .invoke(1, "o", "put", "a.com", "c1", returns=NIL)
            .acquire(2, "L")
            .invoke(2, "o", "put", ("nested", "tuple"), 2, returns="c1")
            .release(2, "L")
            .write(1, "field")
            .read(2, "field")
            .begin(1)
            .invoke(1, "o", "size", returns=1)
            .commit(1)
            .join_all(0, [1, 2])
            .build())


class TestRoundTrip:
    def test_events_survive(self):
        original = rich_trace()
        restored = loads_trace(dumps_trace(original))
        assert len(restored) == len(original)
        assert [str(e) for e in restored] == [str(e) for e in original]

    def test_nil_identity_preserved(self):
        restored = loads_trace(dumps_trace(rich_trace()))
        put = restored.actions("o")[0]
        assert put.action.returns[0] is NIL

    def test_nested_tuples_preserved(self):
        restored = loads_trace(dumps_trace(rich_trace()))
        second_put = restored.actions("o")[1]
        assert second_put.action.args[0] == ("nested", "tuple")
        assert isinstance(second_put.action.args[0], tuple)

    def test_clocks_recomputed_on_load(self):
        restored = loads_trace(dumps_trace(rich_trace()))
        assert restored.stamped
        originals = rich_trace()
        for restored_event, original_event in zip(restored, originals):
            assert restored_event.clock == original_event.clock

    def test_load_without_stamping(self):
        restored = loads_trace(dumps_trace(rich_trace()), stamp=False)
        assert not restored.stamped

    def test_file_like_streams(self):
        buffer = io.StringIO()
        dump_trace(rich_trace(), buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == len(rich_trace())

    @given(trace_programs(kinds=("dictionary", "counter", "msetlog")))
    @settings(max_examples=25, deadline=None)
    def test_random_traces_round_trip(self, program):
        trace, _ = build_trace(program)
        restored = loads_trace(dumps_trace(trace))
        assert [str(e) for e in restored] == [str(e) for e in trace]

    def test_detector_verdicts_survive_round_trip(self):
        from repro.core.detector import CommutativityRaceDetector
        from repro.specs.dictionary import dictionary_representation
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .invoke(2, "o", "put", "k", 2, returns=1)
                 .build())
        restored = loads_trace(dumps_trace(trace))
        det = CommutativityRaceDetector(root=0)
        det.register_object("o", dictionary_representation())
        assert len(det.run(restored)) == 1


class TestErrors:
    def test_unserializable_value_rejected(self):
        trace = (TraceBuilder(root=0)
                 .invoke(0, "o", "put", object(), 1, returns=NIL)
                 .build())
        with pytest.raises(ReproError):
            dumps_trace(trace)

    def test_empty_stream_rejected(self):
        with pytest.raises(ReproError):
            loads_trace("")

    def test_wrong_header_rejected(self):
        with pytest.raises(ReproError):
            loads_trace('{"something": "else"}\n')

    def test_truncation_detected(self):
        text = dumps_trace(rich_trace())
        lines = text.strip().split("\n")
        with pytest.raises(ReproError):
            loads_trace("\n".join(lines[:-1]) + "\n")

    def test_unknown_sentinel_rejected(self):
        header = '{"repro-trace": 1, "root": 0, "events": 1}\n'
        bad = header + '{"kind": "read", "tid": 0, "location": {"$moon": 1}}\n'
        with pytest.raises(ReproError):
            loads_trace(bad)

    def test_bad_event_kind_rejected(self):
        header = '{"repro-trace": 1, "root": 0, "events": 1}\n'
        with pytest.raises(ReproError):
            loads_trace(header + '{"kind": "teleport", "tid": 0}\n')

    def test_blank_lines_tolerated(self):
        text = dumps_trace(rich_trace())
        padded = text.replace("\n", "\n\n", 3)
        assert len(loads_trace(padded)) == len(rich_trace())


class TestFrameCap:
    """TailReader must refuse oversized records instead of parking forever."""

    def _write(self, tmp_path, text):
        path = str(tmp_path / "capped.jsonl")
        with open(path, "w", encoding="utf-8") as out:
            out.write(text)
        return path

    def test_small_partial_tail_parks(self, tmp_path):
        from repro.core.serialize import TailReader
        text = dumps_trace(rich_trace())
        path = self._write(tmp_path, text[:-7])  # torn mid-record
        reader = TailReader(path, max_record_bytes=4096)
        reader.poll()
        assert reader.truncated  # parked, not raised

    def test_oversized_complete_line_raises(self, tmp_path):
        from repro.core.errors import FrameTooLargeError
        from repro.core.serialize import TailReader
        from repro.obs import Registry
        text = dumps_trace(rich_trace())
        poison = '{"kind": "action", "pad": "' + "x" * 8192 + '"}\n'
        path = self._write(tmp_path, text + poison)
        obs = Registry(sample_interval=1)
        reader = TailReader(path, max_record_bytes=4096, obs=obs)
        with pytest.raises(FrameTooLargeError, match="cap 4096"):
            reader.poll()
        assert obs.snapshot()["counters"]["stream_frame_errors"] == 1

    def test_runaway_unterminated_tail_raises(self, tmp_path):
        """A growing never-terminated record must not poison the resume
        offset: once it exceeds the cap the reader raises instead of
        reporting one more truncated tail."""
        from repro.core.errors import FrameTooLargeError
        from repro.core.serialize import TailReader
        text = dumps_trace(rich_trace())
        path = self._write(tmp_path, text + '{"kind": "' + "y" * 8192)
        reader = TailReader(path, max_record_bytes=4096)
        with pytest.raises(FrameTooLargeError):
            reader.poll()
        # Every complete record before the poison was still consumed.
        assert reader.events_read == len(rich_trace())

    def test_default_cap_is_generous(self, tmp_path):
        from repro.core.serialize import MAX_RECORD_BYTES, TailReader
        assert MAX_RECORD_BYTES >= 1 << 20
        text = dumps_trace(rich_trace())
        reader = TailReader(self._write(tmp_path, text))
        assert len(reader.poll()) == len(rich_trace())
        assert reader.done
