"""Active-point pruning (the Section 5.3 future-work optimization)."""

import pytest
from hypothesis import given, settings

from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.events import NIL
from repro.core.trace import TraceBuilder
from repro.specs.dictionary import dictionary_representation

from tests.support import build_trace, trace_programs


def detector(**kwargs):
    det = CommutativityRaceDetector(root=0, **kwargs)
    det.register_object("obj", dictionary_representation())
    return det


class TestPruneCriterion:
    def test_joinall_empties_active_sets(self):
        builder = TraceBuilder(root=0)
        for worker in (1, 2, 3):
            builder.fork(0, worker)
            builder.invoke(worker, "obj", "put", f"k{worker}", worker,
                           returns=NIL)
        builder.join_all(0, [1, 2, 3])
        det = detector()
        det.run(builder.build())
        before = det.active_point_count()
        assert before > 0
        reclaimed = det.prune_ordered_points()
        assert reclaimed == before
        assert det.active_point_count() == 0

    def test_concurrent_points_survive(self):
        builder = (TraceBuilder(root=0)
                   .fork(0, 1).fork(0, 2)
                   .invoke(1, "obj", "put", "a", 1, returns=NIL))
        det = detector()
        det.run(builder.build())
        # Thread 2 is still live and has not seen the put: must keep it.
        assert det.prune_ordered_points() == 0
        assert det.active_point_count() > 0

    def test_partial_join_prunes_partially(self):
        builder = (TraceBuilder(root=0)
                   .fork(0, 1).fork(0, 2)
                   .invoke(1, "obj", "put", "a", 1, returns=NIL)
                   .invoke(2, "obj", "put", "b", 2, returns=NIL)
                   .join(0, 1))
        det = detector()
        det.run(builder.build())
        # Thread 1's points are ⊑ both live clocks (root joined it; thread
        # 2 never saw them) — thread 2 is still live, so nothing with a
        # clock ⋢ T(2) can go.  Thread 1's put is NOT ⊑ T(2): kept.
        assert det.prune_ordered_points() == 0
        builder2 = builder.join(0, 2)
        det2 = detector()
        det2.run(builder2.build())
        # After both joins everything is ordered before the only live
        # thread (the root): pruning must empty the active sets.
        assert det2.prune_ordered_points() > 0
        assert det2.active_point_count() == 0

    def test_prune_on_empty_detector(self):
        assert detector().prune_ordered_points() == 0


class TestPruningPreservesVerdicts:
    @given(trace_programs(kinds=("dictionary", "set", "counter")))
    @settings(max_examples=40, deadline=None)
    def test_aggressive_pruning_same_races(self, program):
        trace, bundled = build_trace(program)

        plain = CommutativityRaceDetector(root=0)
        plain.register_object("obj", bundled.representation())
        plain.run(trace)

        pruned = CommutativityRaceDetector(root=0, prune_interval=1)
        pruned.register_object("obj", bundled.representation())
        pruned.run(trace)

        keyed = lambda det: sorted(
            (str(r.current), str(r.point), str(r.prior_point))
            for r in det.races)
        assert keyed(plain) == keyed(pruned)

    def test_race_still_detected_after_interleaved_prunes(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .invoke(2, "obj", "put", "k", 2, returns=1)
                 .build())
        det = detector(prune_interval=1)
        races = det.run(trace)
        assert len(races) == 1


class TestMemoryEffect:
    def test_pruning_bounds_active_sets_with_join_phases(self):
        """Fork/join phases: pruning keeps the footprint per-phase."""
        builder = TraceBuilder(root=0)
        tid = 1
        for phase in range(5):
            workers = []
            for _ in range(3):
                builder.fork(0, tid)
                builder.invoke(tid, "obj", "put", f"k{tid}", tid,
                               returns=NIL)
                workers.append(tid)
                tid += 1
            builder.join_all(0, workers)
        trace = builder.build()

        unpruned = detector()
        unpruned.run(trace)
        pruned = detector(prune_interval=1)
        pruned.run(trace)
        assert pruned.active_point_count() < unpruned.active_point_count()
