"""Active-point pruning (the Section 5.3 future-work optimization)."""

import pytest
from hypothesis import given, settings

from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.events import NIL
from repro.core.trace import TraceBuilder
from repro.specs.dictionary import dictionary_representation

from tests.support import build_trace, trace_programs


def detector(**kwargs):
    det = CommutativityRaceDetector(root=0, **kwargs)
    det.register_object("obj", dictionary_representation())
    return det


class TestPruneCriterion:
    def test_joinall_empties_active_sets(self):
        builder = TraceBuilder(root=0)
        for worker in (1, 2, 3):
            builder.fork(0, worker)
            builder.invoke(worker, "obj", "put", f"k{worker}", worker,
                           returns=NIL)
        builder.join_all(0, [1, 2, 3])
        det = detector()
        det.run(builder.build())
        before = det.active_point_count()
        assert before > 0
        reclaimed = det.prune_ordered_points()
        assert reclaimed == before
        assert det.active_point_count() == 0

    def test_concurrent_points_survive(self):
        builder = (TraceBuilder(root=0)
                   .fork(0, 1).fork(0, 2)
                   .invoke(1, "obj", "put", "a", 1, returns=NIL))
        det = detector()
        det.run(builder.build())
        # Thread 2 is still live and has not seen the put: must keep it.
        assert det.prune_ordered_points() == 0
        assert det.active_point_count() > 0

    def test_partial_join_prunes_partially(self):
        builder = (TraceBuilder(root=0)
                   .fork(0, 1).fork(0, 2)
                   .invoke(1, "obj", "put", "a", 1, returns=NIL)
                   .invoke(2, "obj", "put", "b", 2, returns=NIL)
                   .join(0, 1))
        det = detector()
        det.run(builder.build())
        # Thread 1's points are ⊑ both live clocks (root joined it; thread
        # 2 never saw them) — thread 2 is still live, so nothing with a
        # clock ⋢ T(2) can go.  Thread 1's put is NOT ⊑ T(2): kept.
        assert det.prune_ordered_points() == 0
        builder2 = builder.join(0, 2)
        det2 = detector()
        det2.run(builder2.build())
        # After both joins everything is ordered before the only live
        # thread (the root): pruning must empty the active sets.
        assert det2.prune_ordered_points() > 0
        assert det2.active_point_count() == 0

    def test_prune_on_empty_detector(self):
        assert detector().prune_ordered_points() == 0


class TestPruningPreservesVerdicts:
    @given(trace_programs(kinds=("dictionary", "set", "counter")))
    @settings(max_examples=40, deadline=None)
    def test_aggressive_pruning_same_races(self, program):
        trace, bundled = build_trace(program)

        plain = CommutativityRaceDetector(root=0)
        plain.register_object("obj", bundled.representation())
        plain.run(trace)

        pruned = CommutativityRaceDetector(root=0, prune_interval=1)
        pruned.register_object("obj", bundled.representation())
        pruned.run(trace)

        keyed = lambda det: sorted(
            (str(r.current), str(r.point), str(r.prior_point))
            for r in det.races)
        assert keyed(plain) == keyed(pruned)

    def test_race_still_detected_after_interleaved_prunes(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .invoke(2, "obj", "put", "k", 2, returns=1)
                 .build())
        det = detector(prune_interval=1)
        races = det.run(trace)
        assert len(races) == 1


class TestInternEviction:
    """Pruning must also reclaim the compiled path's intern table.

    PR 4's ``(schema, value) -> AccessPoint`` table made point lookup
    O(1) but retained every value-carrying point ever touched, so
    pruning bounded ``active(o)`` while memory still grew with history —
    the leak this PR fixes.
    """

    def joined_phase_trace(self, keys=4):
        builder = TraceBuilder(root=0)
        builder.fork(0, 1)
        for i in range(keys):
            builder.invoke(1, "obj", "put", f"k{i}", i, returns=NIL)
        builder.join(0, 1)
        # The post-join action both triggers interval pruning and shows
        # re-interning still works on a live key afterwards.
        builder.invoke(0, "obj", "put", "k0", 9, returns=0)
        return builder.build()

    def test_pruned_points_leave_the_intern_table(self):
        det = detector()
        det.run(self.joined_phase_trace())
        assert det.interned_point_count() > 4
        reclaimed = det.prune_ordered_points()
        assert reclaimed == det.stats.points_pruned
        assert det.active_point_count() == 0
        assert det.interned_point_count() == 0

    def test_eviction_counter_mirrors_points_pruned(self):
        det = detector(prune_interval=1)
        det.run(self.joined_phase_trace())
        assert det.stats.points_pruned > 0
        assert det.stats.interned_points_evicted > 0
        # Eviction also covers probe-only peers interned via candidate
        # tuples, so it may exceed points_pruned — never trail at zero
        # while points are being reclaimed.
        assert det.stats.interned_points_evicted \
            >= det.stats.points_pruned

    def test_no_pruning_no_eviction(self):
        det = detector()
        det.run(self.joined_phase_trace())
        assert det.stats.interned_points_evicted == 0

    def test_reinterned_point_races_identically(self):
        """Evicting an interned point must not lose future races on the
        same (schema, value): equality is by value, so a re-created
        instance checks identically."""
        builder = (TraceBuilder(root=0)
                   .fork(0, 1)
                   .invoke(1, "obj", "put", "k", 1, returns=NIL)
                   .join(0, 1)
                   .invoke(0, "obj", "put", "k", 2, returns=1)  # prunes
                   .fork(0, 2).fork(0, 3)
                   .invoke(2, "obj", "put", "k", 3, returns=2)
                   .invoke(3, "obj", "put", "k", 4, returns=3))
        pruning = detector(prune_interval=1)
        races = pruning.run(builder.build())
        baseline = detector()
        expected = baseline.run(builder.build())
        assert [str(r) for r in races] == [str(r) for r in expected]
        assert pruning.stats.interned_points_evicted > 0

    def test_per_object_footprint_shape(self):
        det = detector()
        det.run(self.joined_phase_trace())
        footprint = det.per_object_footprint()
        assert set(footprint) == {"obj"}
        active, interned = footprint["obj"]
        assert active == det.active_point_count()
        assert interned == det.interned_point_count()


class TestMemoryEffect:
    def test_pruning_bounds_active_sets_with_join_phases(self):
        """Fork/join phases: pruning keeps the footprint per-phase."""
        builder = TraceBuilder(root=0)
        tid = 1
        for phase in range(5):
            workers = []
            for _ in range(3):
                builder.fork(0, tid)
                builder.invoke(tid, "obj", "put", f"k{tid}", tid,
                               returns=NIL)
                workers.append(tid)
                tid += 1
            builder.join_all(0, workers)
        trace = builder.build()

        unpruned = detector()
        unpruned.run(trace)
        pruned = detector(prune_interval=1)
        pruned.run(trace)
        assert pruned.active_point_count() < unpruned.active_point_count()
