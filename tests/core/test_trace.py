"""Trace recording, stamping and inspection."""

import pytest

from repro.core.events import NIL, Action, EventKind
from repro.core.trace import Trace, TraceBuilder


def sample_trace():
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .invoke(1, "o", "put", "a", 1, returns=NIL)
            .invoke(2, "o", "put", "b", 2, returns=NIL)
            .acquire(1, "L").release(1, "L")
            .join(0, 1).join(0, 2)
            .invoke(0, "o", "size", returns=2)
            .build())


class TestBuilder:
    def test_event_indices_are_positions(self):
        trace = sample_trace()
        assert [event.index for event in trace] == list(range(len(trace)))

    def test_invoke_wraps_returns(self):
        trace = (TraceBuilder().invoke(0, "o", "get", "k", returns=5)
                 .build(stamp=False))
        assert trace[0].action.returns == (5,)

    def test_invoke_accepts_tuple_returns(self):
        trace = (TraceBuilder().invoke(0, "o", "m", returns=(1, 2))
                 .build(stamp=False))
        assert trace[0].action.returns == (1, 2)

    def test_join_all(self):
        trace = (TraceBuilder(root=0).fork(0, 1).fork(0, 2)
                 .join_all(0, [1, 2]).build(stamp=False))
        assert [e.kind for e in trace] == [EventKind.FORK, EventKind.FORK,
                                           EventKind.JOIN, EventKind.JOIN]

    def test_read_write_events(self):
        trace = (TraceBuilder().write(0, "x").read(0, "x")
                 .build(stamp=False))
        assert trace[0].kind is EventKind.WRITE
        assert trace[1].kind is EventKind.READ


class TestStamping:
    def test_build_stamps_by_default(self):
        trace = sample_trace()
        assert trace.stamped
        assert all(event.clock is not None for event in trace)

    def test_append_invalidates_stamp(self):
        trace = sample_trace()
        trace.append(TraceBuilder().invoke(0, "o", "size", returns=2)
                     .build(stamp=False)[0])
        assert not trace.stamped

    def test_may_happen_in_parallel_stamps_lazily(self):
        trace = sample_trace()
        trace._stamped = False
        a, b = trace.actions("o")[:2]
        assert trace.may_happen_in_parallel(a, b)


class TestViews:
    def test_actions_filters_by_object(self):
        trace = sample_trace()
        assert len(trace.actions("o")) == 3
        assert trace.actions("other") == []

    def test_objects_in_first_touch_order(self):
        trace = (TraceBuilder().invoke(0, "b", "size", returns=0)
                 .invoke(0, "a", "size", returns=0)
                 .invoke(0, "b", "size", returns=0).build())
        assert trace.objects() == ["b", "a"]

    def test_threads_include_root_and_forked(self):
        assert sample_trace().threads() == [0, 1, 2]

    def test_unordered_action_pairs(self):
        trace = sample_trace()
        pairs = list(trace.unordered_action_pairs("o"))
        assert len(pairs) == 1
        first, second = pairs[0]
        assert {first.tid, second.tid} == {1, 2}
        assert first.index < second.index

    def test_size_after_joinall_is_ordered(self):
        trace = sample_trace()
        size_event = trace.actions("o")[-1]
        for event in trace.actions("o")[:-1]:
            assert event.clock.leq(size_event.clock)


class TestReplay:
    def test_replay_feeds_every_event(self):
        trace = sample_trace()
        seen = []
        trace.replay(seen.append)
        assert seen == list(trace.events)

    def test_getitem(self):
        trace = sample_trace()
        assert trace[0].kind is EventKind.FORK

    def test_repr(self):
        assert "events" in repr(sample_trace())
