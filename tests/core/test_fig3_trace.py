"""The paper's Fig. 3 example, reproduced event by event.

Thread τ3 puts ('a.com', c1), τ2 overwrites with c2, the main thread joins
both and reads size()/1.  The figure gives the vector clocks ⟨3,0,1⟩,
⟨2,1,0⟩ and ⟨4,1,1⟩ (ordered as ⟨m, τ2, τ3⟩) and the verdict: a1/a2 race on
o:w:'a.com'; a3 races with nothing because joinall orders it.
"""

import pytest

from repro.core.detector import CommutativityRaceDetector
from repro.core.events import NIL, Action
from repro.core.trace import TraceBuilder
from repro.specs.dictionary import dictionary_representation


@pytest.fixture()
def fig3():
    trace = (TraceBuilder(root="m")
             .fork("m", "t2")
             .fork("m", "t3")
             .action("t3", Action("o", "put", ("a.com", "c1"), (NIL,)))
             .action("t2", Action("o", "put", ("a.com", "c2"), ("c1",)))
             .join("m", "t2")
             .join("m", "t3")
             .action("m", Action("o", "size", (), (1,)))
             .build())
    a1, a2, a3 = trace.actions("o")
    return trace, a1, a2, a3


ORDER = ["m", "t2", "t3"]


class TestFig3Clocks:
    def test_a1_clock(self, fig3):
        _, a1, _, _ = fig3
        assert a1.clock.to_tuple(ORDER) == (3, 0, 1)

    def test_a2_clock(self, fig3):
        _, _, a2, _ = fig3
        assert a2.clock.to_tuple(ORDER) == (2, 1, 0)

    def test_a3_clock(self, fig3):
        _, _, _, a3 = fig3
        assert a3.clock.to_tuple(ORDER) == (4, 1, 1)

    def test_a1_parallel_a2(self, fig3):
        _, a1, a2, _ = fig3
        assert a1.clock.parallel(a2.clock)

    def test_a3_ordered_after_both(self, fig3):
        _, a1, a2, a3 = fig3
        assert a1.clock.leq(a3.clock)
        assert a2.clock.leq(a3.clock)


class TestFig3Detection:
    def test_exactly_the_a1_a2_race(self, fig3):
        trace, _, _, _ = fig3
        detector = CommutativityRaceDetector(root="m")
        detector.register_object("o", dictionary_representation())
        races = detector.run(trace)
        assert len(races) == 1
        race = races[0]
        assert race.current.args == ("a.com", "c2")
        assert str(race.point).endswith("'a.com'")

    def test_without_joinall_size_races_with_a1_only(self, fig3):
        # Fig. 3's discussion: without joinall, a3 would conflict with a1
        # (which resizes) but still not with a2 (which only overwrites).
        trace = (TraceBuilder(root="m")
                 .fork("m", "t2")
                 .fork("m", "t3")
                 .action("t3", Action("o", "put", ("a.com", "c1"), (NIL,)))
                 .action("t2", Action("o", "put", ("a.com", "c2"), ("c1",)))
                 .action("m", Action("o", "size", (), (1,)))
                 .build())
        detector = CommutativityRaceDetector(root="m")
        detector.register_object("o", dictionary_representation())
        races = detector.run(trace)
        size_races = [r for r in races if r.current.method == "size"]
        assert len(size_races) == 1
        # The conflicting prior point is the resize of a1, not a write of a2.
        assert "resize" in str(size_races[0].prior_point)

    def test_vector_clock_of_updated_point_joins(self, fig3):
        # After processing a1 and a2 the algorithm joins their clocks on
        # the shared point: ⟨3,0,1⟩ ⊔ ⟨2,1,0⟩ = ⟨3,1,1⟩.
        trace, a1, a2, _ = fig3
        detector = CommutativityRaceDetector(root="m")
        detector.register_object("o", dictionary_representation())
        for event in list(trace)[:4]:  # up to and including a2
            detector.process(event)
        state = detector._objects["o"]
        point_clock = state.point_clock[
            next(pt for pt in state.active if pt.value == "a.com"
                 and pt.schema == "w")]
        assert point_clock.to_tuple(ORDER) == (3, 1, 1)
