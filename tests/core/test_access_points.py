"""Access point representations (Section 4.2)."""

import pytest

from repro.core.access_points import (AccessPoint, NaiveRepresentation,
                                      SchemaRepresentation,
                                      representations_equivalent)
from repro.core.errors import SpecificationError
from repro.core.events import NIL, Action
from repro.specs.dictionary import dictionary_representation, dictionary_spec

from tests.support import sample_actions


def tiny_representation(conflicts=(("w", "w"), ("w", "r"))):
    def touches(action):
        if action.method == "write":
            yield ("w", action.args[0])
        elif action.method == "read":
            yield ("r", action.args[0])
        else:
            yield ("s", None)
    return SchemaRepresentation(
        kind="tiny", value_schemas=("r", "w"), plain_schemas=("s",),
        conflict_pairs=conflicts, touches=touches)


class TestSchemaRepresentation:
    def test_points_of_instantiates_schemas(self):
        rep = tiny_representation()
        points = rep.points_of(Action("o", "write", ("k",), ()))
        assert points == (AccessPoint("o", "w", "k"),)

    def test_value_conflict_requires_equal_values(self):
        rep = tiny_representation()
        w_k = AccessPoint("o", "w", "k")
        w_other = AccessPoint("o", "w", "j")
        r_k = AccessPoint("o", "r", "k")
        assert rep.conflicts(w_k, AccessPoint("o", "w", "k"))
        assert not rep.conflicts(w_k, w_other)
        assert rep.conflicts(w_k, r_k)
        assert rep.conflicts(r_k, w_k)  # symmetry

    def test_points_on_different_objects_never_conflict(self):
        rep = tiny_representation()
        assert not rep.conflicts(AccessPoint("o1", "w", "k"),
                                 AccessPoint("o2", "w", "k"))

    def test_non_conflicting_schemas(self):
        rep = tiny_representation()
        assert not rep.conflicts(AccessPoint("o", "r", "k"),
                                 AccessPoint("o", "r", "k"))

    def test_bounded_and_candidates(self):
        rep = tiny_representation()
        assert rep.bounded
        candidates = set(rep.conflicting_candidates(AccessPoint("o", "w", "k")))
        assert candidates == {AccessPoint("o", "w", "k"),
                              AccessPoint("o", "r", "k")}

    def test_mixed_valuedness_conflict_is_unbounded(self):
        rep = tiny_representation(conflicts=(("w", "s"),))
        assert not rep.bounded
        with pytest.raises(SpecificationError):
            list(rep.conflicting_candidates(AccessPoint("o", "s", None)))

    def test_unknown_schema_in_conflicts_rejected(self):
        with pytest.raises(SpecificationError):
            tiny_representation(conflicts=(("w", "nope"),))

    def test_schema_cannot_be_both_valued_and_plain(self):
        with pytest.raises(SpecificationError):
            SchemaRepresentation("bad", value_schemas=("x",),
                                 plain_schemas=("x",), conflict_pairs=(),
                                 touches=lambda a: ())

    def test_touches_validation(self):
        rep = tiny_representation()
        # value schema without a value
        bad = SchemaRepresentation(
            "bad", value_schemas=("w",), plain_schemas=(),
            conflict_pairs=(), touches=lambda a: [("w", None)])
        with pytest.raises(SpecificationError):
            bad.points_of(Action("o", "write", ("k",), ()))
        # plain schema with a value
        bad2 = SchemaRepresentation(
            "bad", value_schemas=(), plain_schemas=("s",),
            conflict_pairs=(), touches=lambda a: [("s", "oops")])
        with pytest.raises(SpecificationError):
            bad2.points_of(Action("o", "x", (), ()))
        # unknown schema
        bad3 = SchemaRepresentation(
            "bad", value_schemas=(), plain_schemas=("s",),
            conflict_pairs=(), touches=lambda a: [("mystery", None)])
        with pytest.raises(SpecificationError):
            bad3.points_of(Action("o", "x", (), ()))

    def test_max_conflict_degree(self):
        rep = tiny_representation()
        assert rep.max_conflict_degree() == 2  # w conflicts with {w, r}

    def test_degree_zero_without_conflicts(self):
        rep = tiny_representation(conflicts=())
        assert rep.max_conflict_degree() == 0

    def test_schema_conflicts_lookup(self):
        rep = tiny_representation()
        assert rep.schema_conflicts("w") == frozenset({"w", "r"})
        assert rep.schema_conflicts("s") == frozenset()


class TestNaiveRepresentation:
    def setup_method(self):
        self.spec = dictionary_spec()
        self.rep = NaiveRepresentation("dictionary", self.spec.commutes)

    def test_one_point_per_action(self):
        action = Action("o", "put", ("k", 1), (NIL,))
        points = self.rep.points_of(action)
        assert len(points) == 1

    def test_conflicts_iff_spec_says_noncommute(self):
        put_a = self.rep.points_of(Action("o", "put", ("k", 1), (NIL,)))[0]
        put_b = self.rep.points_of(Action("o", "put", ("k", 2), (1,)))[0]
        get_other = self.rep.points_of(Action("o", "get", ("j",), (NIL,)))[0]
        assert self.rep.conflicts(put_a, put_b)
        assert not self.rep.conflicts(put_a, get_other)

    def test_unbounded(self):
        assert not self.rep.bounded
        point = self.rep.points_of(Action("o", "size", (), (0,)))[0]
        with pytest.raises(SpecificationError):
            list(self.rep.conflicting_candidates(point))


class TestEquivalenceChecker:
    def test_handwritten_vs_naive_dictionary_agree(self):
        spec = dictionary_spec()
        naive = NaiveRepresentation("dictionary", spec.commutes)
        hand = dictionary_representation()
        actions = sample_actions("dictionary", count=40)
        assert representations_equivalent(hand, naive, actions) is None

    def test_detects_disagreement(self):
        rep_with = tiny_representation()
        rep_without = tiny_representation(conflicts=(("w", "w"),))
        actions = [Action("o", "write", ("k",), ()),
                   Action("o", "read", ("k",), ())]
        mismatch = representations_equivalent(rep_with, rep_without, actions)
        assert mismatch is not None
        first, second = mismatch
        assert {first.method, second.method} == {"write", "read"}


class TestAccessPointValue:
    def test_str_with_and_without_value(self):
        assert str(AccessPoint("o", "w", "k")) == "o:w:'k'"
        assert str(AccessPoint("o", "size", None)) == "o:size"

    def test_hashable(self):
        assert AccessPoint("o", "w", "k") in {AccessPoint("o", "w", "k")}
