"""Theorem 5.1: Algorithm 1 reports a race iff the trace contains one.

The oracle implements Definition 4.3 literally (quadratic pairwise
evaluation of the logical specification); the theorem says the online
detector's verdict must coincide on every trace.  We check the stronger
event-level agreement our implementation provides: the set of trace
positions involved in races matches, for randomized consistent traces over
every bundled object kind, under both phase-1 strategies and under both the
hand-written and translated representations.
"""

from hypothesis import given, settings

from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.direct import DirectDetector
from repro.core.oracle import CommutativityOracle
from repro.logic.translate import translate

from tests.support import build_trace, trace_programs


def oracle_verdict(trace, bundled):
    oracle = CommutativityOracle()
    oracle.register_object("obj", bundled.spec().commutes)
    return oracle.racing_pairs(trace)


def detector_races(trace, representation, strategy):
    detector = CommutativityRaceDetector(root=0, strategy=strategy)
    detector.register_object("obj", representation, strategy=strategy)
    return detector.run(trace)


@given(trace_programs())
@settings(max_examples=60, deadline=None)
def test_existence_agreement_handwritten(program):
    trace, bundled = build_trace(program)
    races = detector_races(trace, bundled.representation(), Strategy.AUTO)
    pairs = oracle_verdict(trace, bundled)
    assert bool(races) == bool(pairs)


@given(trace_programs())
@settings(max_examples=40, deadline=None)
def test_existence_agreement_translated(program):
    trace, bundled = build_trace(program)
    races = detector_races(trace, translate(bundled.spec()), Strategy.AUTO)
    pairs = oracle_verdict(trace, bundled)
    assert bool(races) == bool(pairs)


@given(trace_programs())
@settings(max_examples=40, deadline=None)
def test_strategy_agreement(program):
    trace, bundled = build_trace(program)
    enum_races = detector_races(trace, bundled.representation(),
                                Strategy.ENUMERATE)
    scan_races = detector_races(trace, bundled.representation(),
                                Strategy.SCAN)
    keyed = lambda races: sorted(
        (str(r.current), str(r.point), str(r.prior_point)) for r in races)
    assert keyed(enum_races) == keyed(scan_races)


@given(trace_programs())
@settings(max_examples=40, deadline=None)
def test_racing_events_match_direct_detector(program):
    """The direct detector names both events; its racing-event set must
    equal the oracle's exactly (not just existence)."""
    trace, bundled = build_trace(program)
    direct = DirectDetector(root=0)
    direct.register_object("obj", bundled.spec().commutes)
    direct_races = direct.run(trace)
    direct_pairs = {(race.prior, race.current) for race in direct_races}
    oracle_pairs = {(first.action, second.action)
                    for first, second in oracle_verdict(trace, bundled)}
    assert direct_pairs == oracle_pairs
