"""Epoch-adaptive point clocks (FastTrack's insight applied to points)."""

import pytest
from hypothesis import given, settings

from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.events import NIL
from repro.core.trace import TraceBuilder
from repro.specs.dictionary import dictionary_representation

from tests.support import build_trace, race_snapshot, trace_programs


def detectors():
    plain = CommutativityRaceDetector(root=0, adaptive=False)
    plain.register_object("obj", dictionary_representation())
    adaptive = CommutativityRaceDetector(root=0, adaptive=True)
    adaptive.register_object("obj", dictionary_representation())
    return plain, adaptive


def race_keys(detector):
    return sorted((str(r.current), str(r.point), str(r.prior_point))
                  for r in detector.races)


class TestAdaptiveEquivalence:
    @given(trace_programs())
    @settings(max_examples=60, deadline=None)
    def test_identical_reports_on_random_traces(self, program):
        trace, bundled = build_trace(program)
        plain = CommutativityRaceDetector(root=0, adaptive=False)
        plain.register_object("obj", bundled.representation())
        adaptive = CommutativityRaceDetector(root=0, adaptive=True)
        adaptive.register_object("obj", bundled.representation())
        plain.run(trace)
        adaptive.run(trace)
        # Byte-identical, clocks included: epochs carry the exact clock
        # the plain detector would have stored.
        assert ([race_snapshot(r) for r in plain.races]
                == [race_snapshot(r) for r in adaptive.races])

    def test_same_thread_touches_stay_epoch(self):
        builder = TraceBuilder(root=0)
        for index in range(5):
            builder.invoke(0, "obj", "put", "k", index,
                           returns=NIL if index == 0 else index - 1)
        _, adaptive = detectors()
        adaptive.run(builder.build())
        assert adaptive.stats.epoch_promotions == 0

    def test_ordered_cross_thread_touch_stays_epoch(self):
        # A second thread, but fork-ordered: the epoch certificate covers
        # the touch, so the point re-stamps as the new thread's epoch
        # instead of inflating — no full vector clock is ever built.
        trace = (TraceBuilder(root=0)
                 .invoke(0, "obj", "put", "k", 1, returns=NIL)
                 .fork(0, 1)
                 .invoke(1, "obj", "put", "k", 2, returns=1)
                 .build())
        _, adaptive = detectors()
        adaptive.run(trace)
        assert adaptive.stats.epoch_promotions == 0
        assert adaptive.races == []  # fork orders the touches

    def test_concurrent_second_thread_promotes(self):
        # Genuine contention — two unordered touches — is exactly when a
        # single-component certificate cannot exist: the point inflates.
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .invoke(2, "obj", "put", "k", 2, returns=1)
                 .build())
        _, adaptive = detectors()
        adaptive.run(trace)
        assert adaptive.stats.epoch_promotions >= 1
        assert len(adaptive.races) == 1

    def test_race_detected_through_epoch(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .invoke(2, "obj", "put", "k", 2, returns=1)
                 .build())
        plain, adaptive = detectors()
        plain.run(trace)
        adaptive.run(trace)
        assert len(adaptive.races) == len(plain.races) == 1

    def test_domination_scenario(self):
        """A touch clock with foreign components (via a lock) must still be
        fully covered by the epoch check."""
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 # thread 2 releases L, thread 1 acquires: t1's clock gains
                 # a t2 component before touching the point.
                 .acquire(2, "L").release(2, "L")
                 .acquire(1, "L")
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .release(1, "L")
                 # thread 2 reacquires L: ordered after the touch.
                 .acquire(2, "L")
                 .invoke(2, "obj", "put", "k", 2, returns=1)
                 .release(2, "L")
                 .build())
        plain, adaptive = detectors()
        plain.run(trace)
        adaptive.run(trace)
        assert race_keys(plain) == race_keys(adaptive) == []

    def test_promoted_point_keeps_detecting(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2).fork(0, 3)
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .invoke(2, "obj", "put", "k", 2, returns=1)   # race 1
                 .invoke(3, "obj", "put", "k", 3, returns=2)   # races 2
                 .build())
        plain, adaptive = detectors()
        plain.run(trace)
        adaptive.run(trace)
        assert race_keys(plain) == race_keys(adaptive)
        # One report per (touched point, conflicting active point) pair:
        # put2 vs the accumulated w-point, put3 vs the same — put3 does not
        # re-report per historical event (Algorithm 1 keeps joins, not
        # histories), identically in both modes.
        assert len(adaptive.races) == len(plain.races) == 2

    def test_adaptive_with_pruning(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1)
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .join(0, 1)
                 .build())
        adaptive = CommutativityRaceDetector(root=0, adaptive=True,
                                             prune_interval=1)
        adaptive.register_object("obj", dictionary_representation())
        adaptive.run(trace)
        # The join arrives after the last action, so the interval-driven
        # prune has not seen it yet; an explicit prune must now reclaim
        # the epoch-represented points.
        assert adaptive.prune_ordered_points() > 0
        assert adaptive.active_point_count() == 0

    @given(trace_programs(kinds=("dictionary", "queue", "set")))
    @settings(max_examples=30, deadline=None)
    def test_adaptive_plus_pruning_still_equivalent(self, program):
        """The two optimizations compose without changing verdicts."""
        trace, bundled = build_trace(program)
        plain = CommutativityRaceDetector(root=0, adaptive=False)
        plain.register_object("obj", bundled.representation())
        optimized = CommutativityRaceDetector(root=0, adaptive=True,
                                              prune_interval=1)
        optimized.register_object("obj", bundled.representation())
        plain.run(trace)
        optimized.run(trace)
        assert race_keys(plain) == race_keys(optimized)

    def test_scan_strategy_also_adaptive(self):
        from repro.core.access_points import NaiveRepresentation
        from repro.specs.dictionary import dictionary_spec
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "obj", "put", "k", 1, returns=NIL)
                 .invoke(2, "obj", "put", "k", 2, returns=1)
                 .build())
        detector = CommutativityRaceDetector(root=0, adaptive=True,
                                             strategy=Strategy.SCAN)
        detector.register_object(
            "obj", NaiveRepresentation("dictionary",
                                       dictionary_spec().commutes))
        assert len(detector.run(trace)) == 1
