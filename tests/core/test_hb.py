"""Happens-before tracking per Table 1."""

import pytest
from hypothesis import given

from repro.core.errors import MonitorError
from repro.core.events import (Action, acquire_event, action_event,
                               fork_event, join_event, release_event)
from repro.core.hb import HappensBeforeTracker

from tests.support import build_trace, trace_programs


def act(tid, tag="x"):
    return action_event(tid, Action("o", "get", (tag,), (0,)))


class TestSequentialOrder:
    def test_same_thread_events_ordered(self):
        tracker = HappensBeforeTracker(root=0)
        first = act(0)
        second = act(0)
        tracker.observe(first)
        tracker.observe(second)
        assert first.clock.leq(second.clock)

    def test_root_clock_not_bottom(self):
        tracker = HappensBeforeTracker(root=0)
        event = act(0)
        tracker.observe(event)
        assert not event.clock.is_bottom()


class TestForkJoin:
    def test_fork_orders_parent_prefix_before_child(self):
        tracker = HappensBeforeTracker(root=0)
        before = act(0)
        tracker.observe(before)
        tracker.observe(fork_event(0, 1))
        child = act(1)
        tracker.observe(child)
        assert before.clock.leq(child.clock)

    def test_parent_after_fork_parallel_with_child(self):
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        parent = act(0)
        child = act(1)
        tracker.observe(parent)
        tracker.observe(child)
        assert parent.clock.parallel(child.clock)

    def test_join_orders_child_before_waiter(self):
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        child = act(1)
        tracker.observe(child)
        tracker.observe(join_event(0, 1))
        after = act(0)
        tracker.observe(after)
        assert child.clock.leq(after.clock)

    def test_siblings_parallel(self):
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        tracker.observe(fork_event(0, 2))
        left = act(1)
        right = act(2)
        tracker.observe(left)
        tracker.observe(right)
        assert left.clock.parallel(right.clock)

    def test_double_fork_rejected(self):
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        with pytest.raises(MonitorError):
            tracker.observe(fork_event(0, 1))

    def test_join_unknown_thread_rejected(self):
        tracker = HappensBeforeTracker(root=0)
        with pytest.raises(MonitorError):
            tracker.observe(join_event(0, 9))

    def test_unknown_actor_rejected(self):
        tracker = HappensBeforeTracker(root=0)
        with pytest.raises(MonitorError):
            tracker.observe(act(5))


class TestLocks:
    def test_release_acquire_creates_edge(self):
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        tracker.observe(fork_event(0, 2))
        tracker.observe(acquire_event(1, "L"))
        inside_first = act(1)
        tracker.observe(inside_first)
        tracker.observe(release_event(1, "L"))
        tracker.observe(acquire_event(2, "L"))
        inside_second = act(2)
        tracker.observe(inside_second)
        assert inside_first.clock.leq(inside_second.clock)

    def test_different_locks_do_not_order(self):
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        tracker.observe(fork_event(0, 2))
        tracker.observe(acquire_event(1, "L1"))
        first = act(1)
        tracker.observe(first)
        tracker.observe(release_event(1, "L1"))
        tracker.observe(acquire_event(2, "L2"))
        second = act(2)
        tracker.observe(second)
        assert first.clock.parallel(second.clock)

    def test_acquire_of_never_released_lock_is_noop(self):
        tracker = HappensBeforeTracker(root=0)
        before = act(0)
        tracker.observe(before)
        tracker.observe(acquire_event(0, "L"))
        after = act(0)
        tracker.observe(after)
        assert before.clock.leq(after.clock)

    def test_lock_clock_snapshot(self):
        tracker = HappensBeforeTracker(root=0)
        assert tracker.lock_clock("L").is_bottom()
        tracker.observe(acquire_event(0, "L"))
        tracker.observe(release_event(0, "L"))
        assert not tracker.lock_clock("L").is_bottom()

    def test_release_increments_thread_clock(self):
        # Events after a release must not appear ordered before a later
        # acquire by another thread (the Table 1 post-increment).
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        tracker.observe(acquire_event(0, "L"))
        tracker.observe(release_event(0, "L"))
        after_release = act(0)
        tracker.observe(after_release)
        tracker.observe(acquire_event(1, "L"))
        other = act(1)
        tracker.observe(other)
        assert after_release.clock.parallel(other.clock)


class TestTransactionBoundaries:
    def test_begin_commit_do_not_advance_clocks(self):
        from repro.core.events import begin_event, commit_event
        tracker = HappensBeforeTracker(root=0)
        before = act(0)
        tracker.observe(before)
        begin = begin_event(0)
        tracker.observe(begin)
        inside = act(0)
        tracker.observe(inside)
        commit = commit_event(0)
        tracker.observe(commit)
        # Boundaries are stamped but cost no timestep: the inside action is
        # exactly one step after the one before the block.
        assert inside.clock[0] == before.clock[0] + 1
        assert begin.clock == before.clock
        assert commit.clock == inside.clock

    def test_boundaries_do_not_synchronize_threads(self):
        from repro.core.events import begin_event, commit_event
        tracker = HappensBeforeTracker(root=0)
        tracker.observe(fork_event(0, 1))
        tracker.observe(fork_event(0, 2))
        tracker.observe(begin_event(1))
        first = act(1)
        tracker.observe(first)
        tracker.observe(commit_event(1))
        tracker.observe(begin_event(2))
        second = act(2)
        tracker.observe(second)
        assert first.clock.parallel(second.clock)


class TestTraceLevelProperties:
    @given(trace_programs())
    def test_hb_is_consistent_with_trace_order(self, program):
        """ei ⪯ ej implies ei ≤π ej (the happens-before axiom)."""
        trace, _ = build_trace(program)
        actions = trace.actions()
        for i, first in enumerate(actions):
            for second in actions[i + 1:]:
                # second came later in π, so it must not happen-before first
                assert not (second.clock.leq(first.clock)
                            and second.clock != first.clock)

    @given(trace_programs())
    def test_same_thread_actions_totally_ordered(self, program):
        trace, _ = build_trace(program)
        actions = trace.actions()
        for i, first in enumerate(actions):
            for second in actions[i + 1:]:
                if first.tid == second.tid:
                    assert first.clock.leq(second.clock)
