"""Theorem 5.2: race-free traces are happens-before deterministic.

If a trace has no commutativity races w.r.t. its happens-before relation
and a sound specification, then every trace admitting the same
happens-before relation (i.e. every HB-consistent linearization of the same
events) is (1) defined — all recorded returns remain realizable — and
(2) ends in the same final state.

We generate consistent random traces, keep the race-free ones, enumerate
random HB-consistent linearizations, execute them against the object's
abstract semantics and compare final states.  As a sanity check in the
other direction, the racy Fig. 3 trace has two linearizations with
*different* outcomes, showing the theorem's hypothesis is not vacuous.
"""

import random

from hypothesis import given, settings

from repro.core.events import NIL, Action
from repro.core.oracle import CommutativityOracle
from repro.core.trace import TraceBuilder
from repro.logic.semantics import apply_action
from repro.specs.dictionary import DictionarySemantics

from tests.support import build_trace, trace_programs


def hb_linearizations(trace, rng, count=5):
    """Random linearizations of the action events consistent with HB."""
    actions = trace.actions()
    for _ in range(count):
        remaining = list(actions)
        order = []
        while remaining:
            minimal = [event for event in remaining
                       if not any(other.clock.leq(event.clock)
                                  and other.clock != event.clock
                                  for other in remaining
                                  if other is not event)]
            choice = rng.choice(minimal)
            order.append(choice)
            remaining.remove(choice)
        yield order


def execute(semantics, order):
    """Run actions in the given order; None if some return is unrealizable."""
    state = semantics.initial_state()
    for event in order:
        state = apply_action(semantics, state, event.action)
        if state is None:
            return None
    return state


@given(trace_programs())
@settings(max_examples=50, deadline=None)
def test_race_free_traces_are_deterministic(program):
    trace, bundled = build_trace(program)
    oracle = CommutativityOracle()
    oracle.register_object("obj", bundled.spec().commutes)
    if oracle.has_race(trace):
        return  # theorem only speaks about race-free traces

    semantics = bundled.semantics()
    rng = random.Random(program[1])
    outcomes = {execute(semantics, order)
                for order in hb_linearizations(trace, rng)}
    assert None not in outcomes, "a linearization became undefined"
    assert len(outcomes) == 1, "race-free trace produced divergent states"


def test_racy_trace_can_diverge():
    """The converse sanity check on the paper's Fig. 1 race."""
    trace = (TraceBuilder(root=0)
             .fork(0, 1).fork(0, 2)
             .action(1, Action("o", "put", ("a.com", "c1"), (NIL,)))
             .action(2, Action("o", "put", ("a.com", "c2"), ("c1",)))
             .build())
    semantics = DictionarySemantics()
    a1, a2 = trace.actions()
    one_way = execute(semantics, [a1, a2])
    other_way = execute(semantics, [a2, a1])
    # In the recorded order both effects are defined and leave c2; in the
    # other order a2's recorded return 'c1' is unrealizable.
    assert one_way == (("a.com", "c2"),)
    assert other_way is None


def test_ordered_trace_has_single_linearization():
    trace = (TraceBuilder(root=0)
             .action(0, Action("o", "put", ("k", 1), (NIL,)))
             .action(0, Action("o", "put", ("k", 2), (1,)))
             .build())
    rng = random.Random(0)
    orders = {tuple(e.index for e in order)
              for order in hb_linearizations(trace, rng)}
    assert orders == {(0, 1)}
