"""The shared-memory transport layer: rings and the stamped-action codec.

The backend equivalence suites prove the *pipeline* is verdict-preserving;
this suite pins the transport invariants those proofs stand on:

* records and side bytes round-trip bit-exactly through a
  :class:`~repro.core.shmem.RecordRing`, including across wraparound of
  both the slot array and the byte side-region;
* a full ring **blocks** the producer (``try_put`` → False, ``RingFull``
  with nothing staged) — records are never dropped or overwritten, even
  against a deliberately slow concurrent consumer;
* the :class:`~repro.core.shmem.StampedEncoder` /
  :class:`~repro.core.shmem.StampedDecoder` pair reproduces packed
  stamped actions *value- and type-identically* — exact clocks included —
  through interning, delta-encoded clock bases, and the SPILL/WIDE
  spill paths;
* :class:`~repro.core.shmem.ByteRing` delivers an exact byte stream with
  the writer-close EOF contract the service ingest path relies on.
"""

import threading

import pytest

from repro.core.events import (decode_value, encode_value,
                               pack_stamped_action, REC_ACTION)
from repro.core.shmem import (ByteRing, RecordRing, RingFull, StampedDecoder,
                              StampedEncoder, feed_shard)
from repro.core.vector_clock import MutableVectorClock, VectorClock
from repro.core.backend import shm_available

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no shared memory on this host")


@pytest.fixture
def ring():
    ring = RecordRing.create(slots=8, side_bytes=64)
    yield ring
    ring.close()
    ring.unlink()


class TestValueCodec:
    CASES = [None, True, False, 0, 1, -1, 2 ** 62, -(2 ** 62), "", "héllo",
             "a" * 300, b"", b"\x00\xff raw", 0.0, -1.5, float("inf"),
             (), (1, "two", (3.0, None)), ((True,), (1,)), "\udcff"]

    def test_round_trip_preserves_value_and_type(self):
        for value in self.CASES:
            back = decode_value(encode_value(value))
            assert back == value
            assert type(back) is type(value)

    def test_equal_values_of_distinct_types_stay_distinct(self):
        # 1 / True / 1.0 compare equal; race reports must not conflate them.
        for a, b in [(1, True), (1, 1.0), ((1,), (True,))]:
            assert type(decode_value(encode_value(a))) is type(a)
            assert type(decode_value(encode_value(b))) is type(b)

    def test_pickle_fallback_for_exotic_values(self):
        value = frozenset({1, 2})
        assert decode_value(encode_value(value)) == value


class TestRecordRing:
    def test_record_and_side_round_trip(self, ring):
        assert ring.try_put(REC_ACTION, 0x21, 3, 7, 2 ** 40, 2 ** 33, 5, 8, 9,
                            b"side-bytes")
        ring.publish()
        rec = ring.get()
        assert rec == (REC_ACTION, 0x21, 3, 7, 2 ** 40, 2 ** 33, 5, 8, 9,
                       b"side-bytes")
        assert ring.get() is None

    def test_full_ring_refuses_without_staging(self, ring):
        for i in range(ring.slots):
            assert ring.try_put(1, 0, 0, 0, i, 0, 0, 0, 0)
        assert not ring.try_put(1, 0, 0, 0, 99, 0, 0, 0, 0)
        ring.publish()
        # Nothing was staged by the refused put: exactly `slots` records.
        seen = [ring.get()[4] for _ in range(ring.slots)]
        assert seen == list(range(ring.slots))
        assert ring.get() is None

    def test_side_region_overflow_refuses_whole_record(self, ring):
        assert ring.try_put(1, 0, 0, 0, 0, 0, 0, 0, 0, b"x" * 60)
        assert not ring.try_put(1, 0, 0, 0, 1, 0, 0, 0, 0, b"y" * 10)
        ring.publish()
        assert ring.get()[9] == b"x" * 60
        # Space acked back: the refused record now fits and is intact.
        assert ring.try_put(1, 0, 0, 0, 1, 0, 0, 0, 0, b"y" * 10)
        ring.publish()
        assert ring.get()[9] == b"y" * 10

    def test_wraparound_with_slow_consumer_never_drops_or_corrupts(self):
        """The property the backpressure story rests on: a tiny ring, a
        deliberately lagging consumer thread, thousands of records with
        position-derived payloads — every record arrives once, in order,
        byte-exact.  Producer blocks; nothing is ever dropped."""
        ring = RecordRing.create(slots=4, side_bytes=32)
        total = 3000
        received = []

        def consume():
            import time
            while len(received) < total:
                rec = ring.get()
                if rec is None:
                    time.sleep(0.0002)
                    continue
                received.append(rec)
                if len(received) % 7 == 0:
                    time.sleep(0.001)  # lag: force producer stalls

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            import time
            for i in range(total):
                side = (b"%06d" % i) * (i % 3)   # 0, 6 or 12 side bytes
                while not ring.try_put(1, i % 256, i % 65536, i, i, i * 3,
                                       i % 97, i + 1, i + 2, side):
                    ring.publish()
                    time.sleep(0.0002)
                if i % 5 == 0:
                    ring.publish()
            ring.publish()
            thread.join(timeout=30)
            assert not thread.is_alive()
        finally:
            ring.close()
            ring.unlink()
        assert len(received) == total
        for i, rec in enumerate(received):
            assert rec == (1, i % 256, i % 65536, i, i, i * 3, i % 97,
                           i + 1, i + 2, (b"%06d" % i) * (i % 3)), i

    def test_occupancy_tracks_queued_bytes(self, ring):
        assert ring.occupancy_bytes() == 0
        ring.try_put(1, 0, 0, 0, 0, 0, 0, 0, 0, b"abcd")
        assert ring.occupancy_bytes() == 40 + 4
        ring.publish()
        ring.get()
        assert ring.occupancy_bytes() == 0
        assert ring.capacity_bytes() == 8 * 40 + 64

    def test_attach_sees_creators_records(self, ring):
        ring.try_put(1, 0, 0, 0, 42, 0, 0, 0, 0, b"hello")
        ring.publish()
        peer = RecordRing.attach(ring.name)
        try:
            assert peer.get()[4] == 42
        finally:
            peer.close()


class TestByteRing:
    def test_stream_round_trip_across_wraparound(self):
        ring = ByteRing.create(capacity=16)
        payload = bytes(range(256)) * 40
        out = []

        def consume():
            import time
            while not ring.eof:
                chunk = ring.read()
                if chunk:
                    out.append(chunk)
                else:
                    time.sleep(0.0002)

        thread = threading.Thread(target=consume)
        thread.start()
        try:
            ring.write_all(payload, timeout=30)
            ring.close_write()
            thread.join(timeout=30)
            assert not thread.is_alive()
        finally:
            ring.close()
            ring.unlink()
        assert b"".join(out) == payload

    def test_write_all_times_out_on_stalled_consumer(self):
        ring = ByteRing.create(capacity=8)
        try:
            with pytest.raises(TimeoutError):
                ring.write_all(b"0123456789", timeout=0.05)
        finally:
            ring.close()
            ring.unlink()

    def test_eof_needs_close_and_drain(self):
        ring = ByteRing.create(capacity=64)
        try:
            ring.write_all(b"tail")
            assert not ring.eof
            ring.close_write()
            assert ring.closed and not ring.eof
            assert ring.read() == b"tail"
            assert ring.eof
        finally:
            ring.close()
            ring.unlink()


def _packed_corpus():
    """Hand-built packed stamped actions exercising every encoder path."""
    base = MutableVectorClock({"t1": 3, "t2": 5})
    stepped_a = base.stamp_next("t1")         # window 1, stamp 4
    stepped_b = base.stamp_next("t1")         # window 1 again, stamp 5
    base.inc_in_place("t2")
    stepped_c = base.stamp_next("t1")         # new base identity → re-ship
    plain = VectorClock({"t2": 7})            # no own component for t1
    wide_args = tuple(range(20))              # SPILL + WIDE
    return [
        (0, "t1", "put", ("k", 1), (None,), stepped_a),
        (1, "t1", "put", ("k", True), (None,), stepped_b),   # type-distinct
        (2, "t1", "get", ("k",), (1.0,), stepped_c),
        (3, "t1", "size", (), (2,), plain),
        (4, "t1", "batch", wide_args, wide_args, stepped_c),
        (5, "t1", "raw", (b"\x00\xff", ("nested", -9)), (), stepped_c),
    ]


class TestStampedCodec:
    def _round_trip(self, packed_actions, slots=256, side=4096):
        ring = RecordRing.create(slots=slots, side_bytes=side)
        try:
            encoder = StampedEncoder(ring)
            encoder.begin_object(0)
            for packed in packed_actions:
                encoder.encode_action(packed)
            encoder.end()
            encoder.publish()
            decoder = StampedDecoder(ring)
            out = [(pos, list(actions))
                   for pos, actions in decoder.streams()]
        finally:
            ring.close()
            ring.unlink()
        assert [pos for pos, _ in out] == [0]
        return out[0][1]

    def test_round_trip_is_value_and_type_identical(self):
        packed_actions = _packed_corpus()
        decoded = self._round_trip(packed_actions)
        assert len(decoded) == len(packed_actions)
        for want, got in zip(packed_actions, decoded):
            index, tid, method, args, returns, clock = want
            assert got[:5] == (index, tid, method, args, returns)
            assert got[5] == clock                         # exact clock
            assert got[5]._mapping() == clock._mapping()
            for w, g in zip(args + returns, got[3] + got[4]):
                assert type(g) is type(w)

    def test_round_trip_via_pack_stamped_action(self):
        # The real producer path: events stamped by phase A.
        from repro.core.events import action_event, Action
        clock = MutableVectorClock({"t": 1})
        packed = [pack_stamped_action(
            action_event("t", Action(obj="o", method="put",
                                     args=("k", i), returns=(None,))),
            i, clock.stamp_next("t")) for i in range(10)]
        decoded = self._round_trip(packed)
        assert decoded == packed

    def test_interning_dedups_repeats_but_not_types(self):
        ring = RecordRing.create(slots=256, side_bytes=4096)
        try:
            encoder = StampedEncoder(ring)
            clock = MutableVectorClock({"t": 1})
            packed = (0, "t", "put", (1,), (), clock.stamp_next("t"))
            encoder.begin_object(0)
            encoder.encode_action(packed)
            first = encoder.bytes_written
            encoder.encode_action((1, "t", "put", (1,), (),
                                   clock.stamp_next("t")))
            repeat_cost = encoder.bytes_written - first
            encoder.encode_action((2, "t", "put", (True,), (),
                                   clock.stamp_next("t")))
            distinct_cost = encoder.bytes_written - first - repeat_cost
            # Fully interned repeat: exactly one 40-byte ACTION record.
            assert repeat_cost == 40
            # True interns fresh even though True == 1.
            assert distinct_cost > 40
        finally:
            ring.close()
            ring.unlink()

    def test_ring_full_encode_is_retry_safe(self):
        """RingFull must leave the encoder idempotent: retrying after a
        drain produces the same stream as an unconstrained encode."""
        packed_actions = _packed_corpus()
        reference = self._round_trip(packed_actions)
        # Absurdly tight, but any *single* record still fits (the widest
        # SPILL side here is 164 bytes) — a too-small side region would
        # deadlock rather than block, by design.
        ring = RecordRing.create(slots=2, side_bytes=256)
        try:
            encoder = StampedEncoder(ring)
            decoder = StampedDecoder(ring)
            decoded = []
            entry = (None, None, None, None, packed_actions)
            feeder = feed_shard(encoder, [entry], chunk=1)
            consumer = decoder.streams()
            stalls = 0

            def drain_some():
                rec = ring.get()
                drained = rec is not None
                while rec is not None:
                    decoded.append(rec)
                    rec = ring.get()
                return drained

            while True:
                try:
                    progressed = next(feeder)
                except StopIteration:
                    break
                if not progressed:
                    stalls += 1
                    assert drain_some(), "blocked without queued records"
            drain_some()
            assert stalls > 0, "ring too large to exercise RingFull"
        finally:
            ring.close()
            ring.unlink()
        # Replay the raw drained records through a fresh decoder ring.
        replay = RecordRing.create(slots=len(decoded) + 1,
                                   side_bytes=1 << 16)
        try:
            for rec in decoded:
                assert replay.try_put(*rec[:9], side=rec[9])
            replay.publish()
            out = [(pos, list(actions))
                   for pos, actions in StampedDecoder(replay).streams()]
        finally:
            replay.close()
            replay.unlink()
        assert out[0][1] == reference
