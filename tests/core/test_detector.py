"""Algorithm 1: the commutativity race detector."""

import pytest

from repro.core.access_points import NaiveRepresentation
from repro.core.detector import (CommutativityRaceDetector, DetectorStats,
                                 Strategy)
from repro.core.errors import MonitorError
from repro.core.events import NIL, Action
from repro.core.trace import TraceBuilder
from repro.logic.translate import translate
from repro.specs.dictionary import dictionary_representation, dictionary_spec


def race_trace():
    """Two unordered same-key puts, then a joined size()."""
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .invoke(1, "o", "put", "a.com", "c1", returns=NIL)
            .invoke(2, "o", "put", "a.com", "c2", returns="c1")
            .join_all(0, [1, 2])
            .invoke(0, "o", "size", returns=1)
            .build())


def detector(strategy=Strategy.AUTO, **kwargs):
    det = CommutativityRaceDetector(root=0, strategy=strategy, **kwargs)
    det.register_object("o", dictionary_representation())
    return det


class TestDetection:
    def test_reports_the_put_put_race(self):
        det = detector()
        races = det.run(race_trace())
        assert len(races) == 1
        race = races[0]
        assert race.obj == "o"
        assert race.current.method == "put"
        assert race.current_clock.parallel(race.prior_clock)

    def test_joined_size_does_not_race(self):
        det = detector()
        for race in det.run(race_trace()):
            assert race.current.method != "size"

    def test_unjoined_size_races_with_resizing_put(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1)
                 .invoke(1, "o", "put", "k", "v", returns=NIL)
                 .invoke(0, "o", "size", returns=0)
                 .build())
        races = detector().run(trace)
        assert len(races) == 1
        assert races[0].current.method == "size"

    def test_nonresizing_put_does_not_race_with_size(self):
        # Overwriting a key does not change the size (the a2/a3 point of
        # the paper's Fig. 3 discussion).
        trace = (TraceBuilder(root=0)
                 .invoke(0, "o", "put", "k", "v1", returns=NIL)
                 .fork(0, 1)
                 .invoke(1, "o", "put", "k", "v2", returns="v1")
                 .invoke(0, "o", "size", returns=1)
                 .build())
        assert detector().run(trace) == []

    def test_different_keys_do_not_race(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "put", "a", 1, returns=NIL)
                 .invoke(2, "o", "put", "b", 2, returns=NIL)
                 .build())
        assert detector().run(trace) == []

    def test_lock_ordering_suppresses_race(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .acquire(1, "L")
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .release(1, "L")
                 .acquire(2, "L")
                 .invoke(2, "o", "put", "k", 2, returns=1)
                 .release(2, "L")
                 .build())
        assert detector().run(trace) == []

    def test_reads_commute(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "get", "k", returns=NIL)
                 .invoke(2, "o", "get", "k", returns=NIL)
                 .invoke(0, "o", "size", returns=0)
                 .build())
        assert detector().run(trace) == []

    def test_unregistered_objects_ignored(self):
        det = CommutativityRaceDetector(root=0)
        trace = race_trace()
        assert det.run(trace) == []
        assert det.stats.actions == 0

    def test_multiple_objects_tracked_independently(self):
        det = CommutativityRaceDetector(root=0)
        det.register_object("o1", dictionary_representation())
        det.register_object("o2", dictionary_representation())
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o1", "put", "k", 1, returns=NIL)
                 .invoke(2, "o2", "put", "k", 2, returns=NIL)
                 .build())
        assert det.run(trace) == []


class TestStrategies:
    def test_auto_picks_enumerate_for_bounded(self):
        det = detector(Strategy.AUTO)
        assert det._objects["o"].strategy is Strategy.ENUMERATE

    def test_auto_picks_scan_for_unbounded(self):
        det = CommutativityRaceDetector(root=0)
        det.register_object("o", NaiveRepresentation(
            "dictionary", dictionary_spec().commutes))
        assert det._objects["o"].strategy is Strategy.SCAN

    def test_enumerate_requires_bounded(self):
        det = CommutativityRaceDetector(root=0, strategy=Strategy.ENUMERATE)
        with pytest.raises(MonitorError):
            det.register_object("o", NaiveRepresentation(
                "dictionary", dictionary_spec().commutes))

    def test_scan_and_enumerate_agree_on_races(self):
        trace = race_trace()
        enum_races = detector(Strategy.ENUMERATE).run(trace)
        scan_races = detector(Strategy.SCAN).run(trace)
        keyed = lambda races: {(r.current, r.point, r.prior_point)
                               for r in races}
        assert keyed(enum_races) == keyed(scan_races)

    def test_translated_representation_works_with_both(self):
        rep = translate(dictionary_spec())
        for strategy in (Strategy.ENUMERATE, Strategy.SCAN):
            det = CommutativityRaceDetector(root=0, strategy=strategy)
            det.register_object("o", rep, strategy=strategy)
            assert len(det.run(race_trace())) >= 1


class TestLifecycle:
    def test_double_registration_rejected(self):
        det = detector()
        with pytest.raises(MonitorError):
            det.register_object("o", dictionary_representation())

    def test_release_object_reclaims_state(self):
        det = detector()
        trace = race_trace()
        for event in list(trace)[:4]:
            det.process(event)
        det.release_object("o")
        assert "o" not in det.registered_objects()
        # Further actions on the dead object are simply ignored.
        for event in list(trace)[4:]:
            det.process(event)
        assert det.stats.actions == 2  # only the two pre-release puts

    def test_release_unknown_object_is_noop(self):
        detector().release_object("ghost")


class TestReporting:
    def test_on_race_callback(self):
        seen = []
        det = CommutativityRaceDetector(root=0, on_race=seen.append)
        det.register_object("o", dictionary_representation())
        det.run(race_trace())
        assert len(seen) == 1

    def test_keep_reports_false_counts_only(self):
        det = CommutativityRaceDetector(root=0, keep_reports=False)
        det.register_object("o", dictionary_representation())
        det.run(race_trace())
        assert det.races == []
        assert det.stats.races == 1

    def test_process_returns_races_found_on_event(self):
        det = detector()
        events = list(race_trace())
        results = [det.process(event) for event in events]
        per_event = [r for r in results if r]
        assert len(per_event) == 1
        assert len(per_event[0]) == 1


class TestStats:
    def test_counters_accumulate(self):
        det = detector()
        det.run(race_trace())
        stats = det.stats
        assert stats.events == len(race_trace())
        assert stats.actions == 3
        assert stats.points_touched >= 3
        assert stats.conflict_checks >= 1

    def test_checks_per_action_handles_zero(self):
        assert DetectorStats().checks_per_action() == 0.0

    def test_enumerate_checks_bounded_per_action(self):
        # Even with many prior actions, each new action performs at most
        # (max degree × points touched) checks.
        builder = TraceBuilder(root=0)
        for worker in range(1, 21):
            builder.fork(0, worker)
            builder.invoke(worker, "o", "put", f"k{worker}", worker,
                           returns=NIL)
        det = detector(Strategy.ENUMERATE)
        det.run(builder.build())
        assert det.stats.checks_per_action() <= 6
