"""Streaming analysis: TailReader, StreamAnalyzer, follow_analyze.

The contract under test is the streaming pipeline's three-way split of
"trace that ends badly": a *partial tail* (writer still flushing or
killed mid-record) parks the reader at a resume offset, a *complete but
malformed* line raises (real corruption), and a finished trace reports
``done``.  On top of that, :class:`StreamAnalyzer` must report races
byte-identically to the batch detector — streaming changes *when* work
happens, never *what* is found.
"""

import io
import json

import pytest

from repro.core.detector import CommutativityRaceDetector
from repro.core.errors import ReproError
from repro.core.serialize import (TailReader, dump_trace, dumps_trace,
                                  follow_trace)
from repro.core.stream import FollowStatus, StreamAnalyzer, follow_analyze

from tests.support import (build_multi_object_trace,
                           random_multi_object_program, race_snapshot,
                           register_bindings, verdict_keys)


def write_trace(tmp_path, trace, name="trace.jsonl"):
    path = tmp_path / name
    with open(path, "w", encoding="utf-8") as stream:
        dump_trace(trace, stream)
    return str(path)


def sample_trace(seed=3):
    return build_multi_object_trace(random_multi_object_program(seed))


class TestTailReader:
    def test_reads_a_complete_trace(self, tmp_path):
        trace, _ = sample_trace()
        path = write_trace(tmp_path, trace)
        reader = TailReader(path)
        events = reader.poll()
        assert len(events) == len(trace)
        assert reader.done
        assert not reader.truncated
        assert reader.root == trace.root
        assert reader.declared_events == len(trace)
        assert [e.kind for e in events] == [e.kind for e in trace]

    def test_missing_file_polls_empty(self, tmp_path):
        reader = TailReader(str(tmp_path / "nope.jsonl"))
        assert reader.poll() == []
        assert not reader.header_ready
        assert not reader.done

    def test_partial_tail_parks_and_resumes(self, tmp_path):
        trace, _ = sample_trace()
        assert len(trace) >= 4
        text = dumps_trace(trace)
        lines = text.splitlines(keepends=True)
        half = len(lines) // 2
        # A prefix ending mid-record: half the lines plus a torn one.
        torn = "".join(lines[:half]) + lines[half][:5]
        path = tmp_path / "grow.jsonl"
        path.write_text(torn, encoding="utf-8")
        reader = TailReader(str(path))
        first = reader.poll()
        assert len(first) == half - 1  # header consumed separately
        assert reader.truncated
        assert not reader.done
        assert reader.offset == sum(len(l.encode()) for l in lines[:half])
        # The writer finishes; the next poll picks up at the torn record.
        path.write_text(text, encoding="utf-8")
        rest = reader.poll()
        assert len(first) + len(rest) == len(trace)
        assert reader.done
        assert not reader.truncated

    def test_resume_offset_constructor(self, tmp_path):
        trace, _ = sample_trace()
        path = write_trace(tmp_path, trace)
        first = TailReader(path, chunk_size=64)
        first.poll()
        assert first.done
        # A fresh process resumes from the recorded position: nothing is
        # re-read, and the header fields come from the caller.
        resumed = TailReader(path, resume_offset=first.offset,
                             root=first.root,
                             declared_events=first.declared_events)
        assert resumed.header_ready
        assert resumed.poll() == []
        assert resumed.offset == first.offset

    def test_from_status_round_trips_resume_metadata(self, tmp_path):
        trace, _ = sample_trace()
        path = write_trace(tmp_path, trace)
        first = TailReader(path, chunk_size=64)
        first.poll()
        status = FollowStatus(complete=first.done,
                              events_read=first.events_read,
                              declared_events=first.declared_events,
                              resume_offset=first.offset,
                              truncated_tail=first.truncated,
                              root=first.root)
        resumed = TailReader.from_status(path, status)
        assert resumed.header_ready
        assert resumed.root == trace.root
        assert resumed.declared_events == len(trace)
        assert resumed.poll() == []
        assert resumed.done

    def test_from_status_before_the_header_reads_from_scratch(self,
                                                              tmp_path):
        # A follow that died before the header appeared has offset 0 and
        # no root: the resumed reader must parse the header itself.
        status = FollowStatus(complete=False, events_read=0,
                              declared_events=None, resume_offset=0,
                              truncated_tail=False, root=None)
        trace, _ = sample_trace()
        path = write_trace(tmp_path, trace)
        resumed = TailReader.from_status(path, status)
        assert len(resumed.poll()) == len(trace)
        assert resumed.done
        assert resumed.root == trace.root

    def test_blank_lines_are_skipped(self, tmp_path):
        trace, _ = sample_trace()
        text = dumps_trace(trace).replace("\n", "\n\n")
        path = tmp_path / "gappy.jsonl"
        path.write_text(text, encoding="utf-8")
        reader = TailReader(str(path))
        assert len(reader.poll()) == len(trace)
        assert reader.done

    def test_complete_malformed_line_raises(self, tmp_path):
        trace, _ = sample_trace()
        path = tmp_path / "bad.jsonl"
        path.write_text(dumps_trace(trace) + "{not json}\n",
                        encoding="utf-8")
        reader = TailReader(str(path))
        with pytest.raises(ValueError):
            reader.poll()

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"some-other-format": 2}\n', encoding="utf-8")
        with pytest.raises(ReproError):
            TailReader(str(path)).poll()

    def test_small_chunks_cross_record_boundaries(self, tmp_path):
        trace, _ = sample_trace()
        path = write_trace(tmp_path, trace)
        reader = TailReader(path, chunk_size=7)
        assert len(reader.poll()) == len(trace)
        assert reader.done


class TestFollowTrace:
    def test_yields_every_event_of_a_finished_trace(self, tmp_path):
        trace, _ = sample_trace()
        path = write_trace(tmp_path, trace)
        events = list(follow_trace(path, poll_interval=0.001))
        assert len(events) == len(trace)

    def test_idle_timeout_releases_an_abandoned_trace(self, tmp_path):
        trace, _ = sample_trace()
        text = dumps_trace(trace)
        path = tmp_path / "dead.jsonl"
        path.write_text(text[:len(text) // 2], encoding="utf-8")
        reader = TailReader(str(path))
        events = list(follow_trace(str(path), poll_interval=0.001,
                                   idle_timeout=0.01, reader=reader))
        assert 0 < len(events) < len(trace)
        assert not reader.done
        assert 0 < reader.offset < len(text.encode())


def batch_races(trace, bindings, **kw):
    detector = register_bindings(
        CommutativityRaceDetector(root=trace.root, **kw), bindings)
    detector.run(trace)
    return detector


class TestStreamAnalyzer:
    def test_byte_identical_to_batch(self, tmp_path):
        trace, bindings = sample_trace(seed=0)
        batch = batch_races(trace, bindings)
        analyzer = register_bindings(
            StreamAnalyzer(root=trace.root, prune_interval=2, window=3),
            bindings)
        analyzer.run(trace)
        assert ([race_snapshot(r) for r in analyzer.races]
                == [race_snapshot(r) for r in batch.races])

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamAnalyzer(window=0)

    def test_on_race_fires_incrementally(self):
        trace, bindings = sample_trace(seed=0)
        seen = []
        analyzer = register_bindings(
            StreamAnalyzer(root=trace.root, on_race=seen.append,
                           prune_interval=2, window=4),
            bindings)
        for i, event in enumerate(trace):
            analyzer.process(event)
            assert len(seen) == len(analyzer.races)  # no batching at the end
        analyzer.finish()
        assert seen == analyzer.races

    def test_on_window_cadence(self):
        trace, bindings = sample_trace()
        calls = []
        analyzer = register_bindings(
            StreamAnalyzer(root=trace.root, window=5,
                           on_window=lambda a: calls.append(
                               a.events_processed)),
            bindings)
        analyzer.run(trace)
        # One call per full window plus the finish() cycle.
        assert len(calls) == len(trace) // 5 + 1
        assert analyzer.windows_completed == len(calls)

    def test_retires_joined_threads(self):
        # A joinall program leaves only the root live at the end.
        program = (("dictionary", "set"), 11, 3, 20, 0.0, True)
        trace, bindings = build_multi_object_trace(program)
        analyzer = register_bindings(
            StreamAnalyzer(root=trace.root, prune_interval=1, window=2),
            bindings)
        analyzer.run(trace)
        hb = analyzer.detector.happens_before
        assert analyzer.threads_retired == 3
        assert hb.known_threads() == {trace.root}

    def test_compact_clocks_preserves_verdicts(self):
        for seed in range(25):
            trace, bindings = build_multi_object_trace(
                random_multi_object_program(seed))
            batch = batch_races(trace, bindings)
            compacting = register_bindings(
                StreamAnalyzer(root=trace.root, prune_interval=1, window=2,
                               compact_clocks=True),
                bindings)
            compacting.run(trace)
            # Compaction narrows reported clocks (like --adaptive), so
            # equivalence is on verdict keys, not clock bytes.
            assert (verdict_keys(compacting.races)
                    == verdict_keys(batch.races)), f"seed {seed}"

    def test_peaks_track_footprint(self):
        program = (("dictionary",), 5, 3, 30, 0.0, True)
        trace, bindings = build_multi_object_trace(program)
        analyzer = register_bindings(
            StreamAnalyzer(root=trace.root, prune_interval=1, window=2),
            bindings)
        analyzer.run(trace)
        detector = analyzer.detector
        assert analyzer.peak_active >= detector.active_point_count()
        assert analyzer.peak_interned >= detector.interned_point_count()


class TestFollowAnalyze:
    def test_finished_trace_analyzes_completely(self, tmp_path):
        trace, bindings = sample_trace(seed=0)
        path = write_trace(tmp_path, trace)
        batch = batch_races(trace, bindings)
        analyzer, status = follow_analyze(
            path,
            lambda root: register_bindings(
                StreamAnalyzer(root=root, prune_interval=2, window=3),
                bindings),
            poll_interval=0.001)
        assert status.complete
        assert status.events_read == len(trace)
        assert not status.truncated_tail
        assert ([race_snapshot(r) for r in analyzer.races]
                == [race_snapshot(r) for r in batch.races])

    def test_killed_writer_resume_still_recognizes_completion(self,
                                                              tmp_path):
        # Regression: a writer killed mid-record leaves the follower
        # timing out on a torn tail.  Resuming with only resume_offset
        # used to lose declared_events, so the resumed reader could
        # never report ``complete`` even after the trace finished.  The
        # status now carries full resume metadata (root + declared
        # count) and ``TailReader.from_status`` threads it through.
        trace, bindings = sample_trace(seed=0)
        text = dumps_trace(trace)
        lines = text.splitlines(keepends=True)
        half = len(lines) // 2
        path = tmp_path / "killed.jsonl"
        path.write_text("".join(lines[:half]) + lines[half][:5],
                        encoding="utf-8")

        analyzer, status = follow_analyze(
            str(path),
            lambda root: register_bindings(
                StreamAnalyzer(root=root, window=3), bindings),
            poll_interval=0.001, idle_timeout=0.01)
        assert not status.complete
        assert status.truncated_tail
        assert status.declared_events == len(trace)
        assert status.root == trace.root
        assert status.events_read == half - 1

        # A restarted writer finishes the file; a fresh process resumes
        # the same analysis from the recorded metadata alone.
        path.write_text(text, encoding="utf-8")
        resumed_reader = TailReader.from_status(str(path), status)
        analyzer2, status2 = follow_analyze(
            str(path), lambda root: analyzer,
            poll_interval=0.001, reader=resumed_reader)
        assert analyzer2 is analyzer
        assert status2.complete
        assert not status2.truncated_tail
        assert status2.events_read == len(trace)

        batch = batch_races(trace, bindings)
        assert ([race_snapshot(r) for r in analyzer2.races]
                == [race_snapshot(r) for r in batch.races])

    def test_headerless_file_times_out_without_an_analyzer(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        analyzer, status = follow_analyze(
            str(path), lambda root: pytest.fail("no header, no analyzer"),
            poll_interval=0.001, idle_timeout=0.01)
        assert analyzer is None
        assert not status.complete
        assert status.events_read == 0
