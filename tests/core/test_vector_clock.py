"""Vector clock lattice laws and representation details (Section 3.2)."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.vector_clock import (BOTTOM, MutableVectorClock, VectorClock)

clocks = st.dictionaries(st.integers(min_value=0, max_value=5),
                         st.integers(min_value=0, max_value=8),
                         max_size=6).map(VectorClock)


class TestConstruction:
    def test_empty_is_bottom(self):
        assert VectorClock().is_bottom()
        assert BOTTOM.is_bottom()

    def test_zero_entries_elided(self):
        clock = VectorClock({1: 0, 2: 3})
        assert len(clock) == 1
        assert clock == VectorClock({2: 3})

    def test_lookup_of_unknown_thread_is_zero(self):
        assert VectorClock({1: 4})[99] == 0

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            VectorClock({1: -1})
        with pytest.raises(ValueError):
            MutableVectorClock({1: -2})

    def test_accepts_pairs_iterable(self):
        assert VectorClock([(1, 2), (3, 4)]) == VectorClock({1: 2, 3: 4})

    def test_repr_mentions_entries(self):
        assert "1" in repr(VectorClock({1: 2}))


class TestOrder:
    def test_bottom_leq_everything(self):
        assert BOTTOM.leq(VectorClock({1: 1, 2: 9}))

    def test_pointwise_comparison(self):
        small = VectorClock({1: 1, 2: 2})
        large = VectorClock({1: 1, 2: 3})
        assert small.leq(large)
        assert not large.leq(small)
        assert small < large

    def test_incomparable_clocks_are_parallel(self):
        left = VectorClock({1: 2})
        right = VectorClock({2: 2})
        assert left.parallel(right)
        assert right.parallel(left)

    def test_equal_clocks_not_parallel(self):
        clock = VectorClock({1: 2})
        assert not clock.parallel(VectorClock({1: 2}))

    def test_the_paper_fig3_comparisons(self):
        # ⟨3,0,1⟩ vs ⟨2,1,0⟩ incomparable; both ⊑ ⟨4,1,1⟩.
        a1 = VectorClock({0: 3, 2: 1})
        a2 = VectorClock({0: 2, 1: 1})
        a3 = VectorClock({0: 4, 1: 1, 2: 1})
        assert a1.parallel(a2)
        assert a1.leq(a3) and a2.leq(a3)

    @given(clocks, clocks)
    def test_leq_antisymmetry(self, c1, c2):
        if c1.leq(c2) and c2.leq(c1):
            assert c1 == c2

    @given(clocks, clocks, clocks)
    def test_leq_transitivity(self, c1, c2, c3):
        if c1.leq(c2) and c2.leq(c3):
            assert c1.leq(c3)


class TestJoin:
    def test_join_is_pointwise_max(self):
        joined = VectorClock({1: 2, 2: 5}) | VectorClock({1: 3, 3: 1})
        assert joined == VectorClock({1: 3, 2: 5, 3: 1})

    @given(clocks, clocks)
    def test_join_is_upper_bound(self, c1, c2):
        joined = c1.join(c2)
        assert c1.leq(joined) and c2.leq(joined)

    @given(clocks, clocks, clocks)
    def test_join_is_least_upper_bound(self, c1, c2, upper):
        if c1.leq(upper) and c2.leq(upper):
            assert c1.join(c2).leq(upper)

    @given(clocks, clocks)
    def test_join_commutes(self, c1, c2):
        assert c1.join(c2) == c2.join(c1)

    @given(clocks)
    def test_join_idempotent(self, clock):
        assert clock.join(clock) == clock

    @given(clocks)
    def test_bottom_is_identity(self, clock):
        assert BOTTOM.join(clock) == clock


class TestInc:
    def test_inc_bumps_single_component(self):
        clock = VectorClock({1: 1}).inc(1).inc(2)
        assert clock == VectorClock({1: 2, 2: 1})

    @given(clocks, st.integers(min_value=0, max_value=5))
    def test_inc_strictly_increases(self, clock, tid):
        bumped = clock.inc(tid)
        assert clock.leq(bumped)
        assert clock != bumped

    def test_inc_does_not_mutate(self):
        clock = VectorClock({1: 1})
        clock.inc(1)
        assert clock == VectorClock({1: 1})


class TestValueSemantics:
    @given(clocks)
    def test_hash_consistent_with_equality(self, clock):
        same = VectorClock(dict(clock.items()))
        assert clock == same
        assert hash(clock) == hash(same)

    def test_equality_across_mutable_and_frozen(self):
        frozen = VectorClock({1: 2})
        mutable = MutableVectorClock({1: 2})
        assert frozen == mutable
        assert mutable == frozen

    def test_mutable_is_unhashable(self):
        with pytest.raises(TypeError):
            hash(MutableVectorClock())

    def test_to_tuple_renders_dense_form(self):
        clock = VectorClock({"m": 4, "t2": 1, "t3": 1})
        assert clock.to_tuple(["m", "t2", "t3"]) == (4, 1, 1)


class TestMutable:
    def test_join_in_place(self):
        clock = MutableVectorClock({1: 1})
        clock.join_in_place(VectorClock({2: 4}))
        assert clock == VectorClock({1: 1, 2: 4})

    def test_inc_in_place(self):
        clock = MutableVectorClock()
        clock.inc_in_place(7).inc_in_place(7)
        assert clock[7] == 2

    def test_freeze_snapshots(self):
        clock = MutableVectorClock({1: 1})
        snapshot = clock.freeze()
        clock.inc_in_place(1)
        assert snapshot == VectorClock({1: 1})
        assert clock[1] == 2

    def test_copy_is_independent(self):
        clock = MutableVectorClock({1: 1})
        other = clock.copy()
        other.inc_in_place(1)
        assert clock[1] == 1

    def test_set_component(self):
        clock = MutableVectorClock({1: 5})
        clock.set_component(1, 3)
        clock.set_component(2, 4)
        assert clock == VectorClock({1: 3, 2: 4})

    def test_set_component_zero_removes(self):
        clock = MutableVectorClock({1: 5})
        clock.set_component(1, 0)
        assert len(clock) == 0

    def test_set_component_rejects_negative(self):
        with pytest.raises(ValueError):
            MutableVectorClock().set_component(1, -1)


class TestCopyOnWriteFreeze:
    """The CoW stamping contract: O(1) snapshots, never a stale value."""

    def test_unchanged_clock_returns_the_cached_snapshot(self):
        clock = MutableVectorClock({1: 1})
        assert clock.freeze() is clock.freeze()

    def test_own_component_advance_yields_correct_view(self):
        clock = MutableVectorClock({1: 1, 2: 5})
        base = clock.freeze()
        clock.inc_in_place(1)
        stepped = clock.freeze()
        assert stepped == VectorClock({1: 2, 2: 5})
        assert (stepped[1], stepped[2], stepped[99]) == (2, 5, 0)
        assert base == VectorClock({1: 1, 2: 5})  # past stamps unharmed

    def test_stepped_view_matches_plain_clock_semantics(self):
        clock = MutableVectorClock({1: 3, 2: 1})
        clock.freeze()
        clock.inc_in_place(1)
        stepped = clock.freeze()
        plain = VectorClock({1: 4, 2: 1})
        other = VectorClock({1: 4, 3: 7})
        assert stepped == plain and plain == stepped
        assert hash(stepped) == hash(plain)
        assert len(stepped) == len(plain)
        assert not stepped.is_bottom()
        assert sorted(stepped.items()) == sorted(plain.items())
        assert stepped.leq(plain) and plain.leq(stepped)
        assert stepped.leq(other) == plain.leq(other)
        assert stepped.parallel(other) == plain.parallel(other)
        assert stepped.join(other) == plain.join(other)
        assert stepped.inc(3) == plain.inc(3)
        assert stepped.thaw() == plain.thaw()

    def test_stepped_view_pickles_as_plain_clock(self):
        clock = MutableVectorClock({1: 1})
        clock.freeze()
        clock.inc_in_place(1)
        stepped = clock.freeze()
        revived = pickle.loads(pickle.dumps(stepped))
        assert type(revived) is VectorClock
        assert revived == stepped
        assert hash(revived) == hash(stepped)

    def test_cross_component_join_invalidates(self):
        clock = MutableVectorClock({1: 1})
        cached = clock.freeze()
        clock.join_in_place(VectorClock({2: 9}))
        assert clock.freeze() == VectorClock({1: 1, 2: 9})
        assert cached == VectorClock({1: 1})

    def test_dominated_join_keeps_the_cache(self):
        clock = MutableVectorClock({1: 5})
        cached = clock.freeze()
        clock.join_in_place(VectorClock({1: 3}))
        assert clock.freeze() is cached

    def test_set_component_invalidates(self):
        clock = MutableVectorClock({1: 2})
        snapshot = clock.freeze()
        clock.set_component(1, 9)
        assert clock.freeze() == VectorClock({1: 9})
        assert snapshot == VectorClock({1: 2})

    def test_second_component_divergence_snapshots_afresh(self):
        clock = MutableVectorClock({1: 1, 2: 1})
        clock.freeze()
        clock.inc_in_place(1)
        clock.inc_in_place(2)  # the one-delta view no longer applies
        assert clock.freeze() == VectorClock({1: 2, 2: 2})
        assert clock.stamp_next(1) == VectorClock({1: 3, 2: 2})

    def test_stamp_next_equals_inc_then_freeze(self):
        fused = MutableVectorClock({1: 1, 2: 4})
        twostep = fused.copy()
        for _ in range(3):
            stamped = fused.stamp_next(1)
            twostep.inc_in_place(1)
            assert stamped == twostep.freeze()

    def test_stamp_next_produces_distinct_stamps(self):
        clock = MutableVectorClock()
        first = clock.stamp_next(1)
        second = clock.stamp_next(1)
        assert first == VectorClock({1: 1})
        assert second == VectorClock({1: 2})
        assert first < second

    def test_freeze_copy_is_plain_and_independent(self):
        clock = MutableVectorClock({1: 1})
        snapshot = clock.freeze_copy()
        assert type(snapshot) is VectorClock
        clock.inc_in_place(1)
        assert snapshot == VectorClock({1: 1})

    @given(st.lists(st.tuples(st.sampled_from("ijsf"),
                              st.integers(min_value=0, max_value=3)),
                    max_size=40))
    def test_freeze_always_matches_a_shadow_dict(self, ops):
        # Whatever the mutation history, every freeze must equal the
        # value a plain dict would hold at that instant — and earlier
        # snapshots must never change retroactively.
        clock = MutableVectorClock()
        shadow = {}
        taken = []
        for op, tid in ops:
            if op == "i":
                clock.inc_in_place(tid)
                shadow[tid] = shadow.get(tid, 0) + 1
            elif op == "j":
                clock.join_in_place(VectorClock({tid: 5}))
                shadow[tid] = max(shadow.get(tid, 0), 5)
            elif op == "s":
                stamped = clock.stamp_next(tid)
                shadow[tid] = shadow.get(tid, 0) + 1
                taken.append((stamped, VectorClock(shadow)))
            else:
                taken.append((clock.freeze(), VectorClock(shadow)))
        taken.append((clock.freeze(), VectorClock(shadow)))
        for snapshot, expected in taken:
            assert snapshot == expected
            assert hash(snapshot) == hash(expected)
