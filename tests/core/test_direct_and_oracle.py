"""The direct detector (Section 5.1) and the brute-force oracle."""

from repro.core.detector import CommutativityRaceDetector
from repro.core.direct import DirectDetector
from repro.core.events import NIL
from repro.core.oracle import CommutativityOracle
from repro.core.trace import TraceBuilder
from repro.specs.dictionary import dictionary_representation, dictionary_spec

import pytest


def race_trace():
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .invoke(1, "o", "put", "a", "c1", returns=NIL)
            .invoke(2, "o", "put", "a", "c2", returns="c1")
            .join_all(0, [1, 2])
            .invoke(0, "o", "size", returns=1)
            .build())


class TestDirectDetector:
    def setup_method(self):
        self.spec = dictionary_spec()

    def detector(self):
        det = DirectDetector(root=0)
        det.register_object("o", self.spec.commutes)
        return det

    def test_finds_the_race_with_named_prior(self):
        races = self.detector().run(race_trace())
        assert len(races) == 1
        race = races[0]
        assert race.prior is not None
        assert race.prior.method == "put"
        assert race.prior_tid == 1
        assert race.current_tid == 2

    def test_checks_grow_linearly(self):
        builder = TraceBuilder(root=0)
        n = 15
        for worker in range(1, n + 1):
            builder.fork(0, worker)
            builder.invoke(worker, "o", "get", f"k{worker}", returns=NIL)
        det = self.detector()
        det.run(builder.build())
        # i-th action checks against i-1 priors: n(n-1)/2 total.
        assert det.stats.conflict_checks == n * (n - 1) // 2

    def test_double_registration_rejected(self):
        det = self.detector()
        with pytest.raises(ValueError):
            det.register_object("o", self.spec.commutes)

    def test_unregistered_object_ignored(self):
        det = DirectDetector(root=0)
        assert det.run(race_trace()) == []

    def test_agrees_with_access_point_detector(self):
        trace = race_trace()
        direct = self.detector().run(trace)
        rd2 = CommutativityRaceDetector(root=0)
        rd2.register_object("o", dictionary_representation())
        assert bool(direct) == bool(rd2.run(trace))


class TestOracle:
    def setup_method(self):
        self.oracle = CommutativityOracle()
        self.oracle.register_object("o", dictionary_spec().commutes)

    def test_racing_pairs_on_the_example(self):
        pairs = self.oracle.racing_pairs(race_trace())
        assert len(pairs) == 1
        first, second = pairs[0]
        assert first.action.method == second.action.method == "put"
        assert first.index < second.index

    def test_has_race(self):
        assert self.oracle.has_race(race_trace())

    def test_race_free_trace(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "get", "a", returns=NIL)
                 .invoke(2, "o", "get", "a", returns=NIL)
                 .build())
        assert not self.oracle.has_race(trace)
        assert self.oracle.racing_pairs(trace) == []

    def test_reports_carry_both_actions(self):
        reports = self.oracle.reports(race_trace())
        assert len(reports) == 1
        assert reports[0].prior is not None
        assert reports[0].current is not None

    def test_pairs_sorted_by_position(self):
        builder = TraceBuilder(root=0)
        for worker in (1, 2, 3):
            builder.fork(0, worker)
        builder.invoke(1, "o", "put", "k", 1, returns=NIL)
        builder.invoke(2, "o", "put", "k", 2, returns=1)
        builder.invoke(3, "o", "put", "k", 3, returns=2)
        pairs = self.oracle.racing_pairs(builder.build())
        assert len(pairs) == 3
        assert pairs == sorted(pairs, key=lambda p: (p[0].index, p[1].index))

    def test_objects_tracked_separately(self):
        oracle = CommutativityOracle()
        oracle.register_object("a", dictionary_spec().commutes)
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "b", "put", "k", 1, returns=NIL)
                 .invoke(2, "b", "put", "k", 2, returns=1)
                 .build())
        assert not oracle.has_race(trace)  # object "b" is unregistered
