"""Actions, events and the nil convention (Section 3.1)."""

import pickle

import pytest

from repro.core.events import (NIL, Action, Event, EventKind, Nil,
                               acquire_event, action_event, fork_event,
                               join_event, read_event, release_event,
                               write_event)


class TestNil:
    def test_singleton(self):
        assert Nil() is NIL
        assert Nil() is Nil()

    def test_falsy(self):
        assert not NIL

    def test_distinct_from_none(self):
        assert NIL is not None
        assert NIL != None  # noqa: E711 — the point being tested

    def test_repr(self):
        assert repr(NIL) == "nil"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NIL)) is NIL


class TestAction:
    def test_values_concatenates_args_and_returns(self):
        action = Action("o", "put", ("k", "v"), ("p",))
        assert action.values == ("k", "v", "p")

    def test_hashable_and_value_equal(self):
        a = Action("o", "get", ("k",), (1,))
        b = Action("o", "get", ("k",), (1,))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str_form(self):
        action = Action("o", "put", (5, 7), (NIL,))
        assert str(action) == "o.put(5, 7)/nil"

    def test_zero_return_str(self):
        assert str(Action("c", "add", (1,), ())) == "c.add(1)/()"


class TestEventConstruction:
    def test_action_event(self):
        event = action_event(3, Action("o", "size", (), (0,)))
        assert event.kind is EventKind.ACTION
        assert event.tid == 3

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            Event(EventKind.ACTION, 0)
        with pytest.raises(ValueError):
            Event(EventKind.FORK, 0)
        with pytest.raises(ValueError):
            Event(EventKind.ACQUIRE, 0)
        with pytest.raises(ValueError):
            Event(EventKind.READ, 0)

    def test_sync_constructors(self):
        assert fork_event(0, 1).peer == 1
        assert join_event(0, 2).peer == 2
        assert acquire_event(1, "L").lock == "L"
        assert release_event(1, "L").kind is EventKind.RELEASE

    def test_memory_constructors(self):
        assert read_event(0, "x").location == "x"
        assert write_event(0, "x").kind is EventKind.WRITE

    def test_labels_are_informative(self):
        assert "fork(1)" in fork_event(0, 1).label()
        assert "acq" in acquire_event(2, "L").label()
        assert "o.put" in str(action_event(1, Action("o", "put", (1, 2),
                                                     (NIL,))))


class TestEventKind:
    def test_sync_classification(self):
        assert EventKind.FORK.is_sync()
        assert EventKind.RELEASE.is_sync()
        assert not EventKind.ACTION.is_sync()
        assert not EventKind.READ.is_sync()

    def test_memory_classification(self):
        assert EventKind.READ.is_memory()
        assert EventKind.WRITE.is_memory()
        assert not EventKind.JOIN.is_memory()
