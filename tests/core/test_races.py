"""Race reports and the Table 2 ``total (distinct)`` accounting."""

from repro.core.events import Action
from repro.core.races import (CommutativityRace, DataRace, LocksetWarning,
                              RaceTally, tally)
from repro.core.vector_clock import VectorClock


def commutativity_race(obj="o"):
    return CommutativityRace(
        obj=obj,
        current=Action(obj, "put", ("k", 1), (0,)),
        current_clock=VectorClock({1: 1}),
        point="pt",
        prior_point="pt'",
        prior_clock=VectorClock({2: 1}),
        current_tid=1,
    )


def data_race(location="x"):
    return DataRace(location=location, access="write", tid=2,
                    clock=VectorClock({2: 3}), conflicting="read",
                    conflicting_tid=1)


class TestTally:
    def test_counts_total_and_distinct(self):
        reports = [commutativity_race("a"), commutativity_race("a"),
                   commutativity_race("b")]
        result = tally(reports)
        assert result.total == 3
        assert result.distinct == 2
        assert result.distinct_keys == ("a", "b")

    def test_str_matches_table2_format(self):
        assert str(RaceTally(1784, 26)) == "1784 (26)"

    def test_empty(self):
        result = tally([])
        assert (result.total, result.distinct) == (0, 0)

    def test_mixed_report_kinds_keyed_separately(self):
        reports = [commutativity_race("x"), data_race("x")]
        # Same key "x": distinct counting is by key value, not report kind —
        # callers tally per analyzer, so this only matters if mixed.
        assert tally(reports).distinct == 1

    def test_distinct_keys_in_first_seen_order(self):
        reports = [data_race("b"), data_race("a"), data_race("b")]
        assert tally(reports).distinct_keys == ("b", "a")


class TestReportText:
    def test_commutativity_race_str(self):
        text = str(commutativity_race())
        assert "commutativity race" in text
        assert "o.put" in text
        assert "thread 1" in text

    def test_commutativity_race_with_prior(self):
        race = CommutativityRace(
            obj="o", current=Action("o", "put", ("k", 1), (0,)),
            current_clock=VectorClock({1: 1}), point="pt",
            prior_point="pt'", prior_clock=VectorClock({2: 1}),
            prior=Action("o", "get", ("k",), (0,)))
        assert "vs o.get" in str(race)

    def test_data_race_str(self):
        text = str(data_race())
        assert "data race on x" in text
        assert "write by thread 2" in text

    def test_lockset_warning_str(self):
        warning = LocksetWarning(location="y", access="write", tid=3)
        assert "lockset violation on y" in str(warning)

    def test_distinct_keys(self):
        assert commutativity_race("obj").distinct_key() == "obj"
        assert data_race("loc").distinct_key() == "loc"
        assert LocksetWarning("loc", "read", 0).distinct_key() == "loc"
