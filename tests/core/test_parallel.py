"""Unit tests for the two-phase sharded pipeline's moving parts."""

import pickle

import pytest

from repro.core.access_points import NaiveRepresentation
from repro.core.detector import CommutativityRaceDetector, DetectorStats
from repro.core.errors import MonitorError
from repro.core.events import (NIL, Action, action_event,
                               pack_stamped_action, unpack_stamped_action)
from repro.core.parallel import ShardedDetector, partition_by_load
from repro.core.trace import TraceBuilder
from repro.core.vector_clock import MutableVectorClock, VectorClock
from repro.specs.dictionary import dictionary_representation


class TestPartitionByLoad:
    def test_balances_by_load(self):
        loads = [("a", 10), ("b", 1), ("c", 9), ("d", 2)]
        shards = partition_by_load(loads, 2)
        weights = sorted(sum(dict(loads)[obj] for obj in group)
                         for group in shards)
        assert weights == [11, 11]

    def test_deterministic(self):
        loads = [(f"o{i}", (i * 7) % 5) for i in range(20)]
        assert partition_by_load(loads, 4) == partition_by_load(loads, 4)

    def test_more_shards_than_objects_drops_empties(self):
        shards = partition_by_load([("a", 3)], 8)
        assert shards == [["a"]]

    def test_every_object_lands_exactly_once(self):
        loads = [(f"o{i}", i) for i in range(13)]
        shards = partition_by_load(loads, 3)
        flat = [obj for group in shards for obj in group]
        assert sorted(flat) == sorted(obj for obj, _ in loads)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition_by_load([("a", 1)], 0)


class TestWireFormat:
    def test_roundtrip_preserves_event_and_clock(self):
        action = Action("o", "put", ("k", (1, NIL)), (NIL,))
        event = action_event(7, action)
        clock = VectorClock({0: 3, 7: 5})
        packed = pack_stamped_action(event, 42, clock)
        # The wire form must survive pickling (it crosses process lines).
        packed = pickle.loads(pickle.dumps(packed))
        rebuilt = unpack_stamped_action("o", packed)
        assert rebuilt.action == action
        assert rebuilt.tid == 7
        assert rebuilt.index == 42
        assert rebuilt.clock == clock

    def test_clock_reduce_is_compact_and_faithful(self):
        clock = VectorClock({1: 2, 9: 4})
        hash(clock)  # populate the hash cache; it must not be pickled
        func, args = clock.__reduce__()
        assert func is VectorClock and args == ({1: 2, 9: 4},)
        assert pickle.loads(pickle.dumps(clock)) == clock
        mutable = MutableVectorClock({1: 2})
        assert pickle.loads(pickle.dumps(mutable)) == mutable


class TestProcessStamped:
    def fig3_trace(self):
        return (TraceBuilder(root=0)
                .fork(0, 1).fork(0, 2)
                .invoke(2, "o", "put", "a", 1, returns=NIL)
                .invoke(1, "o", "put", "a", 2, returns=1)
                .join(0, 1).join(0, 2)
                .invoke(0, "o", "size", returns=1)
                .build())

    def test_matches_online_processing(self):
        trace = self.fig3_trace()
        online = CommutativityRaceDetector(root=0)
        online.register_object("o", dictionary_representation())
        online.run(trace)
        offline = CommutativityRaceDetector(root=0)
        offline.register_object("o", dictionary_representation())
        for event in trace:  # trace.build() already stamped every event
            offline.process_stamped(event)
        assert offline.races == online.races
        assert offline.stats == online.stats

    def test_rejects_unstamped_events(self):
        detector = CommutativityRaceDetector(root=0)
        event = action_event(0, Action("o", "size", (), (0,)))
        with pytest.raises(MonitorError):
            detector.process_stamped(event)


class TestDetectorStatsAbsorb:
    def test_sums_every_counter_field(self):
        left = DetectorStats(events=1, actions=2, points_touched=3,
                             conflict_checks=4, races=5, epoch_promotions=6)
        right = DetectorStats(events=10, actions=20, points_touched=30,
                              conflict_checks=40, races=50,
                              epoch_promotions=60)
        left.absorb(right)
        assert left == DetectorStats(events=11, actions=22, points_touched=33,
                                     conflict_checks=44, races=55,
                                     epoch_promotions=66)


class TestShardedDetectorFacade:
    def test_double_registration_rejected(self):
        detector = ShardedDetector(workers=1)
        detector.register_object("o", dictionary_representation())
        with pytest.raises(MonitorError):
            detector.register_object("o", dictionary_representation())

    def test_release_object_before_run(self):
        detector = ShardedDetector(workers=1)
        detector.register_object("o", dictionary_representation())
        detector.release_object("o")
        assert list(detector.registered_objects()) == []

    def test_unpicklable_representation_rejected_for_pools(self):
        rep = NaiveRepresentation("opaque", lambda a, b: False)
        detector = ShardedDetector(workers=2)
        with pytest.raises(MonitorError, match="not picklable"):
            detector.register_object("o", rep)

    def test_unpicklable_representation_fine_inline(self):
        rep = NaiveRepresentation("opaque", lambda a, b: False)
        detector = ShardedDetector(workers=1)
        detector.register_object("o", rep)
        trace = (TraceBuilder(root=0)
                 .fork(0, 1)
                 .invoke(0, "o", "poke", returns=())
                 .invoke(1, "o", "poke", returns=())
                 .build())
        races = detector.run(trace)
        assert len(races) == 1

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ShardedDetector(workers=-1)

    def test_happens_before_requires_run(self):
        detector = ShardedDetector(workers=1)
        with pytest.raises(MonitorError):
            detector.happens_before

    def test_event_count_includes_sync_events_once(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1)
                 .invoke(0, "o", "size", returns=0)
                 .invoke(1, "o", "size", returns=0)
                 .join(0, 1)
                 .build())
        detector = ShardedDetector(workers=1)
        detector.register_object("o", dictionary_representation())
        detector.run(trace)
        assert detector.stats.events == len(trace)
        assert detector.stats.actions == 2

    def test_unregistered_objects_ignored(self):
        trace = (TraceBuilder(root=0)
                 .invoke(0, "ghost", "size", returns=0)
                 .build())
        detector = ShardedDetector(workers=1)
        detector.register_object("o", dictionary_representation())
        detector.run(trace)
        assert detector.races == []
        assert detector.stats.actions == 0
        assert detector.stats.events == 1

    def test_no_registered_objects_counts_events(self):
        trace = TraceBuilder(root=0).fork(0, 1).join(0, 1).build()
        detector = ShardedDetector(workers=4)
        detector.run(trace)
        assert detector.races == []
        assert detector.stats.events == len(trace)

    def test_rerun_resets_reports(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .invoke(2, "o", "put", "k", 2, returns=1)
                 .build())
        detector = ShardedDetector(workers=1)
        detector.register_object("o", dictionary_representation())
        first = list(detector.run(trace))
        second = list(detector.run(trace))
        assert first == second
        assert detector.stats.races == len(second)
