"""Golden-trace regression corpus: frozen verdicts for frozen traces.

The traces and expected reports under ``tests/data/`` were produced by
``tests/data/generate_golden.py``.  Any refactor that changes a verdict —
a race appearing, disappearing, reordering, or changing its clocks —
fails here and must be an explicit, reviewed regeneration of the corpus,
never a silent drift.
"""

import json
import pathlib

import pytest

from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.core.serialize import load_trace
from repro.specs import bundled_objects

from tests.support import race_snapshot, verdict_keys

DATA_DIR = pathlib.Path(__file__).resolve().parent.parent / "data"
EXPECTED_DIR = DATA_DIR / "expected"
GOLDEN_NAMES = sorted(path.stem for path in DATA_DIR.glob("*.jsonl"))


def load_case(name):
    with open(EXPECTED_DIR / f"{name}.json", encoding="utf-8") as stream:
        expected = json.load(stream)
    with open(DATA_DIR / expected["trace"], encoding="utf-8") as stream:
        trace = load_trace(stream)
    return trace, expected


def test_corpus_is_present():
    assert len(GOLDEN_NAMES) >= 6
    racy = sum(bool(load_case(name)[1]["races"]) for name in GOLDEN_NAMES)
    clean = len(GOLDEN_NAMES) - racy
    assert racy >= 4 and clean >= 1  # both verdict polarities covered


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_sequential_detector_matches_snapshot(name):
    trace, expected = load_case(name)
    registry = bundled_objects()
    detector = CommutativityRaceDetector(root=trace.root)
    for obj, kind in expected["bindings"].items():
        detector.register_object(obj, registry[kind].representation())
    detector.run(trace)
    assert [race_snapshot(race) for race in detector.races] \
        == expected["races"]


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_sharded_detector_matches_snapshot(name, workers):
    trace, expected = load_case(name)
    registry = bundled_objects()
    detector = ShardedDetector(root=trace.root, workers=workers)
    for obj, kind in expected["bindings"].items():
        detector.register_object(obj, registry[kind].representation())
    detector.run(trace)
    assert [race_snapshot(race) for race in detector.races] \
        == expected["races"]


# -- fast-path axes (PR 4): same frozen snapshots, never regenerated ---------
#
# The default sequential/sharded tests above already run the compiled hot
# path (``compiled=True`` is the default), so the corpus pins it byte for
# byte.  These variants pin the remaining axes against the *same* disk
# snapshots: the seed dispatch path, the compiled flag through the process
# pool, and adaptive mode (clock-insensitive verdict keys, per the
# equivalence-matrix conventions).

@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_seed_path_matches_snapshot(name):
    trace, expected = load_case(name)
    registry = bundled_objects()
    detector = CommutativityRaceDetector(root=trace.root, compiled=False)
    for obj, kind in expected["bindings"].items():
        detector.register_object(obj, registry[kind].representation())
    detector.run(trace)
    assert [race_snapshot(race) for race in detector.races] \
        == expected["races"]


@pytest.mark.parametrize("compiled", [False, True],
                         ids=["dispatch", "compiled"])
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_sharded_compiled_axis_matches_snapshot(name, compiled):
    trace, expected = load_case(name)
    registry = bundled_objects()
    detector = ShardedDetector(root=trace.root, workers=2, compiled=compiled)
    for obj, kind in expected["bindings"].items():
        detector.register_object(obj, registry[kind].representation())
    detector.run(trace)
    assert [race_snapshot(race) for race in detector.races] \
        == expected["races"]


# -- streaming axes (PR 5): same frozen snapshots, never regenerated ---------

@pytest.mark.parametrize("prune_interval", [0, 1, 3],
                         ids=["noprune", "prune1", "prune3"])
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_streaming_axis_matches_snapshot(name, prune_interval):
    # Streaming (incremental processing + pruning + intern eviction +
    # thread retirement) must be byte-identical to the frozen corpus —
    # clocks included.
    from repro.core.stream import StreamAnalyzer
    trace, expected = load_case(name)
    registry = bundled_objects()
    analyzer = StreamAnalyzer(root=trace.root,
                              prune_interval=prune_interval, window=4)
    for obj, kind in expected["bindings"].items():
        analyzer.register_object(obj, registry[kind].representation())
    analyzer.run(trace)
    assert [race_snapshot(race) for race in analyzer.races] \
        == expected["races"]


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_compact_clocks_axis_matches_snapshot_verdicts(name):
    # Dead-component compaction narrows reported clocks (like adaptive),
    # so the equivalence is on verdict keys.
    from repro.core.stream import StreamAnalyzer
    trace, expected = load_case(name)
    registry = bundled_objects()
    analyzer = StreamAnalyzer(root=trace.root, prune_interval=1, window=2,
                              compact_clocks=True)
    for obj, kind in expected["bindings"].items():
        analyzer.register_object(obj, registry[kind].representation())
    analyzer.run(trace)
    assert verdict_keys(analyzer.races) == sorted(
        (race["obj"], race["current"], race["point"], race["prior_point"])
        for race in expected["races"])


@pytest.mark.parametrize("compiled", [False, True],
                         ids=["dispatch", "compiled"])
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_plain_clock_axis_matches_snapshot(name, compiled):
    # adaptive=True is the default (and covered byte-for-byte by every
    # test above); this pins the opt-out full-vector-clock path against
    # the same frozen snapshots.
    trace, expected = load_case(name)
    registry = bundled_objects()
    detector = CommutativityRaceDetector(root=trace.root, adaptive=False,
                                         compiled=compiled)
    for obj, kind in expected["bindings"].items():
        detector.register_object(obj, registry[kind].representation())
    detector.run(trace)
    assert [race_snapshot(race) for race in detector.races] \
        == expected["races"]


# -- epoch + batch axes (PR 7): same frozen snapshots, never regenerated -----
#
# Clock-carrying epochs report the exact accumulated clock, so adaptive
# mode is pinned byte-identically (the PR 5 verdict-key fallback above
# became the plain-clock opt-out test).  Batching replays the same loop
# window-at-a-time and must be invisible at every window size.

@pytest.mark.parametrize("adaptive", [False, True], ids=["plain", "epochs"])
@pytest.mark.parametrize("batch_window", [1, 3, 64])
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_batch_axis_matches_snapshot(name, batch_window, adaptive):
    trace, expected = load_case(name)
    registry = bundled_objects()
    detector = CommutativityRaceDetector(root=trace.root, adaptive=adaptive,
                                         batch_window=batch_window)
    for obj, kind in expected["bindings"].items():
        detector.register_object(obj, registry[kind].representation())
    detector.run(trace)
    assert [race_snapshot(race) for race in detector.races] \
        == expected["races"]


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_sharded_epoch_batch_axis_matches_snapshot(name):
    trace, expected = load_case(name)
    registry = bundled_objects()
    detector = ShardedDetector(root=trace.root, workers=2, adaptive=True,
                               batch_window=4)
    for obj, kind in expected["bindings"].items():
        detector.register_object(obj, registry[kind].representation())
    detector.run(trace)
    assert [race_snapshot(race) for race in detector.races] \
        == expected["races"]


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_streaming_epoch_batch_axis_matches_snapshot(name):
    # The full PR 7 stack — epochs, batching, pruning, deflation windows —
    # against the frozen corpus, byte for byte.
    from repro.core.stream import StreamAnalyzer
    trace, expected = load_case(name)
    registry = bundled_objects()
    analyzer = StreamAnalyzer(root=trace.root, adaptive=True, window=3,
                              prune_interval=2, batch_window=2)
    for obj, kind in expected["bindings"].items():
        analyzer.register_object(obj, registry[kind].representation())
    analyzer.run(trace)
    assert [race_snapshot(race) for race in analyzer.races] \
        == expected["races"]
