"""Predictive commutativity race detection over sound reorderings.

Hand-built traces pin the per-candidate pipeline: which ordered
conflicting pairs become candidates, which closures prove them stuck or
ordered, what the witness looks like, and that every shipped prediction
replays through the standard detector to the very race it reports.
"""

import pytest

from repro.core.detector import CommutativityRaceDetector
from repro.core.errors import MonitorError
from repro.core.events import NIL
from repro.core.parallel import ShardedDetector
from repro.core.predict import Predictor
from repro.core.stream import StreamAnalyzer
from repro.core.trace import TraceBuilder
from repro.specs import bundled_objects

from tests.support import race_snapshot


def dict_rep():
    return bundled_objects()["dictionary"].representation()


def handoff_trace():
    """t0's put is HB-ordered before t1's only via an *empty* lock
    hand-off — a correct reordering runs t1's critical section first,
    making the puts concurrent.  The canonical predictable race."""
    return (TraceBuilder(root=0)
            .fork(0, 1)
            .acquire(0, "L")
            .invoke(0, "o", "put", "k", 1, returns=NIL)
            .release(0, "L")
            .acquire(1, "L")
            .release(1, "L")
            .invoke(1, "o", "put", "k", 2, returns=1)
            .join(0, 1)
            .build())


def run_predictive(trace, window=256, **kw):
    detector = CommutativityRaceDetector(root=0, predict_window=window, **kw)
    detector.register_object("o", dict_rep())
    detector.run(trace)
    return detector


class TestPrediction:
    def test_lock_handoff_race_is_predicted(self):
        detector = run_predictive(handoff_trace())
        assert detector.races == []          # witnessed-clean
        assert len(detector.predicted) == 1
        prediction = detector.predicted[0]
        assert prediction.pair == (2, 6)
        assert str(prediction).startswith("predicted: ")
        assert detector._predictor.counts == {"predict_candidates": 1,
                                              "predict_validated": 1}

    def test_witness_replays_to_the_same_race(self):
        detector = run_predictive(handoff_trace())
        prediction = detector.predicted[0]
        replay = CommutativityRaceDetector(root=0)
        replay.register_object("o", dict_rep())
        races = replay.run(list(prediction.witness))
        # Byte-identical: the PredictedRace *is* the replay's report.
        assert [race_snapshot(r) for r in races] \
            == [race_snapshot(prediction.race)]

    def test_same_lock_critical_sections_stay_unpredicted(self):
        # Both puts run *inside* critical sections on one lock: mutual
        # exclusion genuinely orders them in every correct reordering,
        # and the witness scheduler proves it by getting stuck.
        trace = (TraceBuilder(root=0)
                 .fork(0, 1)
                 .acquire(0, "L")
                 .invoke(0, "o", "put", "k", 1, returns=NIL)
                 .release(0, "L")
                 .acquire(1, "L")
                 .invoke(1, "o", "put", "k", 2, returns=1)
                 .release(1, "L")
                 .join(0, 1)
                 .build())
        detector = run_predictive(trace)
        assert detector.races == []
        assert detector.predicted == []
        assert detector._predictor.counts == {"predict_candidates": 1,
                                              "predict_dropped_stuck": 1}

    def test_fork_order_stays_unpredicted(self):
        # The put precedes the fork of the thread doing the second put:
        # program order + the fork edge put the first put in the second's
        # dependence closure — ordered in every correct reordering.
        trace = (TraceBuilder(root=0)
                 .invoke(0, "o", "put", "k", 1, returns=NIL)
                 .fork(0, 1)
                 .invoke(1, "o", "put", "k", 2, returns=1)
                 .join(0, 1)
                 .build())
        detector = run_predictive(trace)
        assert detector.races == []
        assert detector.predicted == []
        assert detector._predictor.counts == {"predict_candidates": 1,
                                              "predict_dropped_ordered": 1}

    def test_conflict_chain_through_third_action_orders_the_pair(self):
        # a conflicts with c, c conflicts with b: the a -> c -> b chain
        # survives the direct-edge exclusion, so (a, b) stays ordered.
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .acquire(0, "L")
                 .invoke(0, "o", "put", "k", 1, returns=NIL)   # a
                 .release(0, "L")
                 .acquire(1, "L")
                 .release(1, "L")
                 .invoke(1, "o", "put", "k", 2, returns=1)     # c
                 .acquire(1, "M")
                 .release(1, "M")
                 .acquire(2, "M")
                 .release(2, "M")
                 .invoke(2, "o", "put", "k", 3, returns=2)     # b
                 .join(0, 1).join(0, 2)
                 .build())
        detector = run_predictive(trace)
        assert detector.races == []
        counts = detector._predictor.counts
        # (a, c) and (c, b) are hand-off predictions; (a, b) is ordered
        # through the chain and must NOT be predicted.
        assert counts["predict_candidates"] == 3
        assert counts["predict_dropped_ordered"] == 1
        assert counts["predict_validated"] == 2
        assert [p.pair for p in detector.predicted] == [(3, 7), (7, 12)]

    def test_single_thread_has_no_candidates(self):
        trace = (TraceBuilder(root=0)
                 .invoke(0, "o", "put", "k", 1, returns=NIL)
                 .invoke(0, "o", "put", "k", 2, returns=1)
                 .build())
        detector = run_predictive(trace)
        assert detector.predicted == []
        assert detector._predictor.counts == {}

    def test_witnessed_races_are_not_candidates(self):
        # Unordered conflicting pairs are the witnessed detector's
        # territory; prediction must not double-report them.
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .invoke(2, "o", "put", "k", 2, returns=1)
                 .join(0, 1).join(0, 2)
                 .build())
        detector = run_predictive(trace)
        assert len(detector.races) == 1
        assert detector.predicted == []
        assert detector._predictor.counts == {}

    def test_window_bounds_the_candidate_scan(self):
        # With window=1 only adjacent same-object actions pair up; the
        # intervening commuting gets push the conflicting puts out of
        # each other's scan window, so nothing is predicted — and the
        # chain anchor keeps the closure sound rather than crashing.
        builder = (TraceBuilder(root=0)
                   .fork(0, 1)
                   .acquire(0, "L")
                   .invoke(0, "o", "put", "k", 1, returns=NIL)
                   .release(0, "L"))
        for _ in range(3):
            builder.invoke(0, "o", "get", "other", returns=NIL)
        trace = (builder
                 .acquire(1, "L")
                 .release(1, "L")
                 .invoke(1, "o", "put", "k", 2, returns=1)
                 .join(0, 1)
                 .build())
        narrow = run_predictive(trace, window=1)
        assert narrow.predicted == []
        wide = run_predictive(trace, window=256)
        assert len(wide.predicted) == 1

    def test_predict_window_validation(self):
        with pytest.raises(MonitorError):
            CommutativityRaceDetector(predict_window=-1)
        with pytest.raises(MonitorError):
            ShardedDetector(predict_window=-1)
        detector = CommutativityRaceDetector()    # prediction off
        with pytest.raises(MonitorError):
            detector.predict()

    def test_predictor_rejects_unstamped_events(self):
        predictor = Predictor({"o": dict_rep()}, window=4)
        unstamped = handoff_trace()
        for event in unstamped:
            event.clock = None
        from repro.core.errors import ReproError
        with pytest.raises(ReproError):
            for event in unstamped:
                predictor.feed(event)


class TestPredictionAcrossEngines:
    def test_sharded_matches_sequential(self):
        sequential = run_predictive(handoff_trace())
        for workers in (1, 2):
            sharded = ShardedDetector(root=0, workers=workers,
                                      predict_window=256)
            sharded.register_object("o", dict_rep())
            sharded.run(handoff_trace())
            assert sharded.races == sequential.races
            assert ([(p.pair, race_snapshot(p.race))
                     for p in sharded.predicted]
                    == [(p.pair, race_snapshot(p.race))
                        for p in sequential.predicted])

    def test_streaming_maintenance_flush_matches_batch(self):
        # Tiny window: prediction flushes at several maintenance
        # boundaries mid-trace, yet must accumulate to exactly the
        # one-shot batch result.
        sequential = run_predictive(handoff_trace())
        analyzer = StreamAnalyzer(root=0, window=2, predict_window=256)
        analyzer.register_object("o", dict_rep())
        analyzer.run(handoff_trace())
        assert analyzer.races == sequential.races
        assert ([(p.pair, race_snapshot(p.race)) for p in analyzer.predicted]
                == [(p.pair, race_snapshot(p.race))
                    for p in sequential.predicted])

    def test_sharded_predict_rejects_checkpointing(self):
        from repro.core.checkpoint import CheckpointConfig
        with pytest.raises(MonitorError):
            ShardedDetector(predict_window=8,
                            checkpoint=CheckpointConfig(path="x"))
        with pytest.raises(MonitorError):
            ShardedDetector(predict_window=8, resume_from="x")

    def test_witnessed_output_unchanged_by_prediction(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .invoke(2, "o", "put", "k", 2, returns=1)
                 .join(0, 1).join(0, 2)
                 .build())
        plain = CommutativityRaceDetector(root=0)
        plain.register_object("o", dict_rep())
        plain.run(trace)
        predictive = run_predictive(trace)
        assert [race_snapshot(r) for r in predictive.races] \
            == [race_snapshot(r) for r in plain.races]
        assert predictive.stats.races == plain.stats.races


class TestObsCounters:
    def test_predict_counters_and_timer_published(self):
        from repro.obs import Registry
        obs = Registry(sample_interval=1)
        detector = CommutativityRaceDetector(root=0, predict_window=256,
                                             obs=obs)
        detector.register_object("o", dict_rep())
        detector.run(handoff_trace())
        snap = obs.snapshot()
        assert snap["counters"]["predict_candidates"] == 1
        assert snap["counters"]["predict_validated"] == 1
        assert snap["timers"]["predict"]["count"] >= 1
