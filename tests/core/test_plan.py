"""Compiled check plans: table contents, ordering, pickling, gating.

The plan is a flattening of a bounded :class:`SchemaRepresentation` — no
new semantics — so every test here is an identity against the
representation it was compiled from: same schemas, same value flags, same
candidate enumeration order, same validation errors.  The verdict-level
equivalence of the compiled detector loop lives in
``test_equivalence_matrix.py`` and the golden corpus.
"""

import pickle

import pytest

from repro.core.access_points import (AccessPoint, AccessPointRepresentation,
                                      SchemaRepresentation)
from repro.core.detector import CommutativityRaceDetector, Strategy
from repro.core.errors import SpecificationError
from repro.core.events import NIL, Action
from repro.core.plan import CheckPlan, compile_check_plan
from repro.core.trace import TraceBuilder
from repro.specs.dictionary import dictionary_representation


def _toy_touches(action):
    # Misbehaving ηo outputs, keyed by method name, for the validation
    # tests; "put" is the well-behaved case.
    if action.method == "bad-schema":
        return [("nope", None)]
    if action.method == "missing-value":
        return [("w", None)]
    if action.method == "value-on-plain":
        return [("p", 7)]
    return [("w", action.args[0])]


def toy_representation():
    return SchemaRepresentation(
        kind="toy", value_schemas=("w",), plain_schemas=("p",),
        conflict_pairs=(("w", "w"), ("p", "p")), touches=_toy_touches)


class _Opaque(AccessPointRepresentation):
    """A custom representation outside the schema factoring."""

    def points_of(self, action):
        return (AccessPoint(action.obj, "pt"),)

    def conflicts(self, pt1, pt2):
        return False


class TestCompilation:
    def test_table_mirrors_the_representation(self):
        rep = dictionary_representation()
        plan = compile_check_plan(rep)
        assert plan is not None
        assert plan.kind == rep.kind
        assert set(plan.table) == set(rep.schemas)
        for schema, (carries, peers) in plan.table.items():
            assert carries == rep.carries_value(schema)
            assert peers == rep.conflict_peers(schema)
        assert plan.max_conflict_degree() == rep.max_conflict_degree()

    def test_peer_order_is_candidate_enumeration_order(self):
        # Cross-process report determinism hangs on this: the compiled
        # loop must probe Co(pt) in exactly the order the generator does.
        rep = dictionary_representation()
        plan = compile_check_plan(rep)
        for schema in rep.schemas:
            value = "k" if rep.carries_value(schema) else None
            pt = AccessPoint("d", schema, value)
            assert [c.schema for c in rep.conflicting_candidates(pt)] \
                == list(plan.table[schema][1])

    def test_unbounded_representation_compiles_to_none(self):
        rep = SchemaRepresentation(
            kind="unbounded", value_schemas=("w",), plain_schemas=("s",),
            conflict_pairs=(("w", "s"),), touches=_toy_touches)
        assert not rep.bounded
        assert compile_check_plan(rep) is None

    def test_non_schema_representation_compiles_to_none(self):
        assert compile_check_plan(_Opaque()) is None

    def test_plan_pickles_for_shard_shipping(self):
        plan = compile_check_plan(dictionary_representation())
        revived = pickle.loads(pickle.dumps(plan))
        assert isinstance(revived, CheckPlan)
        assert revived.table == plan.table
        assert revived.kind == plan.kind
        action = Action("d", "put", ("k", 1), (NIL,))
        assert list(revived.touches(action)) == list(plan.touches(action))

    def test_repr_names_kind_and_degree(self):
        plan = compile_check_plan(toy_representation())
        assert "toy" in repr(plan)


class TestPlanAttachment:
    def test_strategy_and_flag_gate_the_plan(self):
        rep = dictionary_representation()
        detector = CommutativityRaceDetector(root=0)
        detector.register_object("a", rep)
        detector.register_object("b", rep, strategy=Strategy.SCAN)
        assert detector._objects["a"].plan is not None
        assert detector._objects["b"].plan is None

        off = CommutativityRaceDetector(root=0, compiled=False)
        off.register_object("a", rep)
        assert off._objects["a"].plan is None

    def test_precompiled_plan_is_injected_verbatim(self):
        # The sharded facade compiles once and passes the plan through
        # register_object(plan=...) inside each worker.
        rep = dictionary_representation()
        plan = compile_check_plan(rep)
        detector = CommutativityRaceDetector(root=0, compiled=False)
        detector.register_object("a", rep, plan=plan)
        assert detector._objects["a"].plan is plan


class TestInterning:
    def _run(self, detector):
        builder = TraceBuilder(root=0)
        builder.fork(0, 1)
        builder.fork(0, 2)
        builder.invoke(1, "d", "put", "k", 1, returns=NIL)
        builder.invoke(2, "d", "put", "k", 2, returns=1)
        builder.invoke(1, "d", "get", "k", returns=2)
        detector.run(builder.build())
        return detector._objects["d"]

    def test_points_intern_to_canonical_instances(self):
        detector = CommutativityRaceDetector(root=0)
        detector.register_object("d", dictionary_representation())
        state = self._run(detector)
        assert state.plan is not None
        assert state.interned  # the compiled path actually ran
        for (schema, value), pt in state.interned.items():
            assert (pt.obj, pt.schema, pt.value) == ("d", schema, value)
        # candidate tuples are built from the same canonical instances,
        # so dict probes ride the pointer-equality fast path
        for cands in state.candidates.values():
            for cand in cands:
                assert state.interned[(cand.schema, cand.value)] is cand

    def test_compiled_validation_errors_match_points_of(self):
        rep = toy_representation()
        for method in ("bad-schema", "missing-value", "value-on-plain"):
            builder = TraceBuilder(root=0)
            builder.fork(0, 1)
            builder.invoke(1, "o", method, returns=None)
            trace = builder.build()
            messages = []
            for compiled in (True, False):
                detector = CommutativityRaceDetector(root=0,
                                                     compiled=compiled)
                detector.register_object("o", toy_representation())
                with pytest.raises(SpecificationError) as err:
                    detector.run(trace)
                messages.append(str(err.value))
            assert messages[0] == messages[1]
        assert rep.bounded  # sanity: both paths took the ENUMERATE route

    def test_invalid_pairs_raise_on_every_action(self):
        # Validation moved to the intern miss path; an invalid pair must
        # never enter the table and so must raise again on reuse.
        detector = CommutativityRaceDetector(root=0)
        detector.register_object("o", toy_representation())
        builder = TraceBuilder(root=0)
        builder.fork(0, 1)
        builder.invoke(1, "o", "missing-value", returns=None)
        trace = builder.build()
        for _ in range(2):
            fresh = CommutativityRaceDetector(root=0)
            fresh.register_object("o", toy_representation())
            with pytest.raises(SpecificationError):
                fresh.run(trace)
        # and the pair must be absent from the intern table afterwards
        with pytest.raises(SpecificationError):
            detector.run(trace)
        state = detector._objects["o"]
        assert ("w", None) not in state.interned
