"""Bounded universes: reachability, realizable actions, minimality order."""

import pytest

from repro.core.events import NIL
from repro.specs import DictionarySemantics, SetSemantics
from repro.verify.domains import (build_domain, enumerate_actions,
                                  reachable_states, state_size)

from tests.verify.support import ALL_KINDS, domain_for, entry_for

INVOCATIONS = (("add", ("a",)), ("add", ("b",)), ("remove", ("a",)),
               ("size", ()))


class TestStateSize:
    def test_containers_count_recursively(self):
        assert state_size(()) == 0
        assert state_size((("a", 1),)) == 4   # outer entry + inner pair + |1|
        assert state_size(frozenset({"a"})) == 1

    def test_integers_count_magnitude(self):
        assert state_size(-3) == 3
        assert state_size(0) == 0

    def test_bools_do_not_explode(self):
        assert state_size(True) == 1


class TestReachableStates:
    def test_initial_state_is_first(self):
        states = reachable_states(SetSemantics(), INVOCATIONS, depth=2)
        assert states[0] == frozenset()

    def test_sorted_smallest_first(self):
        states = reachable_states(SetSemantics(), INVOCATIONS, depth=3)
        sizes = [state_size(s) for s in states]
        assert sizes == sorted(sizes)

    def test_no_duplicates(self):
        states = reachable_states(SetSemantics(), INVOCATIONS, depth=3)
        assert len(states) == len(set(states))

    def test_depth_monotone(self):
        shallow = set(reachable_states(SetSemantics(), INVOCATIONS, 1))
        deep = set(reachable_states(SetSemantics(), INVOCATIONS, 2))
        assert shallow <= deep

    def test_depth_zero_is_initial_only(self):
        states = reachable_states(SetSemantics(), INVOCATIONS, 0)
        assert states == [frozenset()]


class TestEnumerateActions:
    def test_returns_are_realizable(self):
        """Every enumerated action's returns come from an actual execution."""
        sem = DictionarySemantics()
        invocations = (("put", ("a", 1)), ("get", ("a",)), ("size", ()))
        states = reachable_states(sem, invocations, 2)
        by_method = enumerate_actions(sem, invocations, states)
        for actions in by_method.values():
            for action in actions:
                assert any(
                    sem.apply(s, action.method, action.args)[1]
                    == action.returns
                    for s in states), f"unrealizable action {action}"

    def test_unrealizable_returns_absent(self):
        # with one key and depth 2, size() can only ever observe 0 or 1
        sem = DictionarySemantics()
        invocations = (("put", ("a", 1)), ("size", ()))
        states = reachable_states(sem, invocations, 2)
        sizes = enumerate_actions(sem, invocations, states)["size"]
        assert {a.returns for a in sizes} == {(0,), (1,)}

    def test_nil_returns_enumerated(self):
        sem = DictionarySemantics()
        invocations = (("put", ("a", 1)), ("get", ("a",)))
        states = reachable_states(sem, invocations, 2)
        gets = enumerate_actions(sem, invocations, states)["get"]
        assert (NIL,) in {a.returns for a in gets}


class TestBoundedDomain:
    def test_describe_schema_is_frozen(self):
        domain = domain_for("set")
        assert sorted(domain.describe()) == ["actions", "depth",
                                             "invocations", "states"]

    def test_build_domain_deterministic(self):
        entry = entry_for("queue")
        first = build_domain("queue", entry.semantics(), entry.invocations, 3)
        second = build_domain("queue", entry.semantics(), entry.invocations, 3)
        assert first.states == second.states
        assert first.actions_by_method == second.actions_by_method

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_spec_method_has_actions(self, kind):
        """The registry's invocation grid covers every spec method —
        unlike the randomized samplers (the dictionary sampler never
        draws the extended methods)."""
        domain = domain_for(kind)
        spec_methods = set(entry_for(kind).spec().methods)
        assert spec_methods <= set(domain.actions_by_method)
        assert all(domain.actions_by_method[m] for m in spec_methods)
