"""Shared helpers for the verification test-suite.

Domains are pure functions of the registry entry, so they are built once
per kind and shared across test modules — the exhaustive sweeps visit
every (kind, method-pair) combination and would otherwise rebuild the
same closure hundreds of times.
"""

import functools

from repro.verify import verifiable_objects

__all__ = ["entry_for", "domain_for", "spec_pairs", "ALL_KINDS"]

ALL_KINDS = sorted(verifiable_objects())


@functools.lru_cache(maxsize=None)
def entry_for(kind):
    return verifiable_objects()[kind]


@functools.lru_cache(maxsize=None)
def domain_for(kind, depth=None):
    return entry_for(kind).domain(depth)


def spec_pairs(kind):
    """Sorted ``(m1, m2)`` method pairs of a kind's spec."""
    return sorted((m1, m2) for m1, m2, _ in entry_for(kind).spec().pairs())
