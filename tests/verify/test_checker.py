"""The exhaustive bounded checker: every spec, every pair, both directions.

This is the tentpole sweep: every shipped specification is proven sound
AND precise (modulo audited waivers) over its bounded universe — the
promotion of the old randomized ``check_soundness`` spot-checks to
exhaustive verification.
"""

import pytest

from repro.core.errors import SpecificationError
from repro.logic.spec import CommutativitySpec
from repro.obs import Registry
from repro.specs import SetSemantics, queue_spec
from repro.verify import verify_pair, verify_spec
from repro.verify.checker import Counterexample

from tests.verify.support import ALL_KINDS, domain_for, entry_for, spec_pairs


def _pair_params():
    for kind in ALL_KINDS:
        for m1, m2 in spec_pairs(kind):
            yield pytest.param(kind, m1, m2, id=f"{kind}:{m1}-{m2}")


class TestEverySpecVerifies:
    """The acceptance sweep: all specs sound and precise, per method pair."""

    @pytest.mark.parametrize("kind,m1,m2", list(_pair_params()))
    def test_pair_sound_and_precise(self, kind, m1, m2):
        entry = entry_for(kind)
        verdict = verify_pair(entry.spec(), entry.semantics(),
                              domain_for(kind), m1, m2,
                              waiver_reason=entry.waiver_map().get(
                                  frozenset({m1, m2})))
        assert verdict.ok, f"{kind} {m1}/{m2}: {verdict.counterexample}"

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_spec_verdict_ok(self, kind):
        entry = entry_for(kind)
        verdict = verify_spec(entry.spec(), entry.semantics(),
                              domain_for(kind), entry.waiver_map())
        assert verdict.ok, "\n".join(
            str(ce) for ce in verdict.counterexamples)
        assert verdict.unused_waivers == []


class TestSoundnessCounterexamples:
    def test_weakened_set_spec_yields_minimal_counterexample(self):
        """An intentionally weakened spec (add/add := true) is refuted,
        and the witness is minimal: the empty set and the two smallest
        conflicting add actions."""
        spec = (CommutativitySpec("set")
                .method("add", params=("x",), returns=("b",))
                .method("remove", params=("x",), returns=("b",))
                .method("contains", params=("x",), returns=("b",))
                .method("size", returns=("r",))
                .default_true())
        verdict = verify_pair(spec, SetSemantics(), domain_for("set"),
                              "add", "add")
        ce = verdict.counterexample
        assert ce is not None and ce.direction == "soundness"
        assert ce.state == frozenset()          # the smallest state
        assert ce.a.method == "add" and ce.b.method == "add"
        assert ce.a.args == ce.b.args == ("a",)  # the smallest element
        assert {ce.a.returns, ce.b.returns} == {(0,), (1,)}

    def test_counterexample_message_names_state_and_pair(self):
        spec = (CommutativitySpec("set")
                .method("add", params=("x",), returns=("b",))
                .method("remove", params=("x",), returns=("b",))
                .method("contains", params=("x",), returns=("b",))
                .method("size", returns=("r",))
                .default_true())
        verdict = verify_pair(spec, SetSemantics(), domain_for("set"),
                              "add", "add")
        message = str(verdict.counterexample)
        assert "frozenset()" in message
        assert "o.add" in message
        assert "claims" in message and "commute" in message

    def test_sound_pair_has_no_counterexample(self):
        entry = entry_for("set")
        verdict = verify_pair(entry.spec(), entry.semantics(),
                              domain_for("set"), "add", "add")
        assert verdict.sound and verdict.counterexample is None


class TestPrecisionAndRealizability:
    def test_unrealizable_conflicts_are_exempt(self):
        """Two effective same-element adds are declared conflicting by the
        set spec but are unrealizable in composition — the paper allows
        either classification, so they must not fail precision."""
        entry = entry_for("set")
        verdict = verify_pair(entry.spec(), entry.semantics(),
                              domain_for("set"), "add", "add")
        assert verdict.ok
        assert verdict.unrealizable > 0
        assert verdict.witnessed > 0

    def test_imprecise_pair_without_waiver_fails(self):
        """queue enq/enq := false is imprecise (equal elements commute);
        without its waiver the checker reports the precision
        counterexample — proof the waiver is *necessary*."""
        entry = entry_for("queue")
        verdict = verify_pair(entry.spec(), entry.semantics(),
                              domain_for("queue"), "enq", "enq")
        ce = verdict.counterexample
        assert ce is not None and ce.direction == "precision"
        assert ce.a.method == ce.b.method == "enq"
        assert ce.a.args == ce.b.args          # the x1 = x2 case

    @pytest.mark.parametrize("kind,m1,m2", [
        pytest.param(kind, w.m1, w.m2, id=f"{kind}:{w.m1}-{w.m2}")
        for kind in ALL_KINDS for w in entry_for(kind).waivers])
    def test_every_waiver_is_necessary_and_exercised(self, kind, m1, m2):
        """Each registry waiver (a) forgives at least one realizable
        indistinguishable pair and (b) is required: removing it turns the
        pair into a precision failure."""
        entry = entry_for(kind)
        with_waiver = verify_pair(
            entry.spec(), entry.semantics(), domain_for(kind), m1, m2,
            waiver_reason=entry.waiver_map()[frozenset({m1, m2})])
        assert with_waiver.ok and with_waiver.waived > 0
        without = verify_pair(entry.spec(), entry.semantics(),
                              domain_for(kind), m1, m2)
        assert not without.precise

    def test_unused_waiver_fails_the_spec(self):
        entry = entry_for("set")
        waivers = {frozenset({"contains", "size"}): "bogus: reads commute"}
        verdict = verify_spec(entry.spec(), entry.semantics(),
                              domain_for("set"), waivers)
        assert not verdict.ok
        assert verdict.unused_waivers == [
            "contains/size: bogus: reads commute"]


class TestVerdictPlumbing:
    def test_missing_method_raises_specification_error(self):
        spec = queue_spec()
        with pytest.raises(SpecificationError, match="no invocations"):
            verify_pair(spec, entry_for("queue").semantics(),
                        domain_for("set"), "enq", "deq")

    def test_obs_counters(self):
        obs = Registry(sample_interval=1)
        entry = entry_for("counter")
        verify_spec(entry.spec(), entry.semantics(), domain_for("counter"),
                    entry.waiver_map(), obs=obs)
        counters = obs.snapshot()["counters"]
        assert counters["verify_specs"] == 1
        assert counters["verify_specs_ok"] == 1
        assert counters["verify_method_pairs"] == 3
        assert counters["verify_action_pairs"] > 0

    def test_pair_verdict_json_schema(self):
        entry = entry_for("queue")
        verdict = verify_spec(entry.spec(), entry.semantics(),
                              domain_for("queue"), entry.waiver_map())
        payload = verdict.to_json()
        assert sorted(payload) == ["bound", "kind", "pairs",
                                   "unused_waivers", "verified"]
        pair = payload["pairs"][0]
        assert sorted(pair) == ["action_pairs", "counterexample", "formula",
                                "m1", "m2", "precision", "soundness"]
        waived = [p for p in payload["pairs"]
                  if p["precision"]["status"] == "waived"]
        assert waived and all("waiver_reason" in p["precision"]
                              for p in waived)

    def test_counterexample_json(self):
        ce = Counterexample(kind="set", direction="soundness",
                            state=frozenset(),
                            a=entry_for("set").spec().action(
                                "o", "add", "a", returns=1),
                            b=entry_for("set").spec().action(
                                "o", "add", "a", returns=0),
                            formula="true")
        payload = ce.to_json()
        assert payload["direction"] == "soundness"
        assert "o.add" in payload["a"]
        assert payload["message"] == str(ce)


class TestSeqlogRegression:
    """The checker-found fix: append/get must guard on the read index."""

    def test_unconditional_append_get_is_refuted(self):
        spec = (CommutativitySpec("seqlog")
                .method("append", params=("x",), returns=("i",))
                .method("snapshot", returns=("n",))
                .method("get", params=("i",), returns=("x",))
                .pair("append", "append", "false")
                .pair("append", "snapshot", "false")
                .pair("append", "get", "true")   # the refuted old formula
                .default_true())
        entry = entry_for("seqlog")
        verdict = verify_pair(spec, entry.semantics(), domain_for("seqlog"),
                              "append", "get")
        ce = verdict.counterexample
        assert ce is not None and ce.direction == "soundness"

    def test_shipped_guard_verifies(self):
        entry = entry_for("seqlog")
        verdict = verify_pair(entry.spec(), entry.semantics(),
                              domain_for("seqlog"), "append", "get")
        assert verdict.ok
        assert str(entry.spec().formula_for("append", "get")) == "i1 ≠ i2"
