"""The optional Z3 soundness backend.

The graceful-degradation paths (no z3, unsupported kind) run everywhere;
the actual symbolic verification runs only where ``z3-solver`` is
installed (the CI job's dedicated leg) and skips cleanly elsewhere.
"""

import pytest

import repro.verify.smt as smt
from repro.logic.spec import CommutativitySpec
from repro.verify.smt import (SUPPORTED_KINDS, smt_available,
                              verify_pair_smt, verify_spec_smt)

from tests.verify.support import ALL_KINDS, entry_for, spec_pairs


class TestGracefulDegradation:
    def test_unavailable_without_z3(self, monkeypatch):
        monkeypatch.setattr(smt, "_z3", lambda: None)
        result = smt.verify_pair_smt("counter", entry_for("counter").spec(),
                                     "add", "read")
        assert result.status == "unavailable"
        assert result.ok                      # absence is not a failure
        assert "z3" in result.detail

    def test_registry_marks_match_supported_kinds(self):
        for kind in ALL_KINDS:
            assert entry_for(kind).smt_supported == (kind in SUPPORTED_KINDS)

    def test_result_json_schema(self):
        payload = smt.SmtResult("counter", "add", "read",
                                "verified").to_json()
        assert sorted(payload) == ["detail", "m1", "m2", "status"]


@pytest.mark.skipif(not smt_available(), reason="z3-solver not installed")
class TestSymbolicSoundness:
    """Unbounded-domain soundness for every encodable kind."""

    @pytest.mark.parametrize("kind", sorted(SUPPORTED_KINDS))
    def test_every_pair_verified(self, kind):
        results = verify_spec_smt(kind, entry_for(kind).spec())
        failures = [r for r in results if r.status == "counterexample"]
        assert not failures, "\n".join(
            f"{r.m1}/{r.m2}: {r.detail}" for r in failures)
        verified = [r for r in results if r.status == "verified"]
        assert verified, "no pair was actually discharged"

    def test_unsound_register_spec_refuted(self):
        spec = (CommutativitySpec("register")
                .method("write", params=("v",), returns=("p",))
                .method("read", returns=("v",))
                .default_true())   # claims all writes commute: wrong
        result = verify_pair_smt("register", spec, "write", "write")
        assert result.status == "counterexample"
        assert result.detail                   # a model is reported

    def test_unsound_dictionary_put_get_refuted(self):
        spec = (CommutativitySpec("dictionary")
                .method("put", params=("k", "v"), returns=("p",))
                .method("get", params=("k",), returns=("v",))
                .method("size", returns=("r",))
                .pair("put", "get", "true")
                .default_true())
        result = verify_pair_smt("dictionary", spec, "put", "get")
        assert result.status == "counterexample"

    def test_unsupported_kind_degrades(self):
        result = verify_pair_smt("queue", entry_for("queue").spec(),
                                 "enq", "deq")
        assert result.status == "unsupported"
        assert result.ok
