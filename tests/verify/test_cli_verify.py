"""``repro-verify-specs``: exit codes, frozen JSON schema, golden verdicts."""

import json
import pathlib

import pytest

from repro import cli as analyze_cli
from repro.verify.cli import SCHEMA, main, run_verification

EXPECTED_DIR = (pathlib.Path(__file__).resolve().parent.parent
                / "data" / "expected")


class TestExitCodes:
    def test_all_kinds_verify_clean(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "dictionary: OK" in out
        assert "queue: OK" in out
        assert "FAIL" not in out

    def test_single_kind(self, capsys):
        assert main(["set"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("set: OK")
        assert "dictionary" not in out

    def test_unknown_kind_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["nosuchkind"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "repro-verify-specs: error:" in err
        assert "nosuchkind" in err and "available" in err

    @pytest.mark.parametrize("bad", ["zero", "0", "-1"])
    def test_bad_depth_is_usage_error(self, bad):
        with pytest.raises(SystemExit) as exc:
            main(["--depth", bad, "counter"])
        assert exc.value.code == 2

    def test_list_names_every_kind(self, capsys):
        assert main(["--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        kinds = [line.split()[0] for line in lines]
        assert "dictionary" in kinds and "seqlog" in kinds
        assert any("[smt" in line for line in lines)
        assert any("waiver" in line for line in lines)


class TestJsonDocument:
    def test_stdout_json_schema(self, capsys):
        assert main(["counter", "--json", "-"]) == 0
        stdout = capsys.readouterr().out
        document = json.loads(stdout[stdout.index("{"):])
        assert document["schema"] == SCHEMA
        assert document["verified"] is True
        assert document["depth"] is None
        (payload,) = document["kinds"]
        assert sorted(payload) == ["bound", "kind", "pairs",
                                   "unused_waivers", "verified"]

    def test_json_file_output(self, tmp_path, capsys):
        out = tmp_path / "verdicts.json"
        assert main(["set", "--json", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["kinds"][0]["kind"] == "set"

    def test_matches_golden(self):
        """The default full run reproduces the frozen verdict document —
        any spec, registry, or schema change must regenerate the golden
        (tests/data/generate_golden.py) and show up in review."""
        golden = json.loads((EXPECTED_DIR / "verify_specs.json")
                            .read_text(encoding="utf-8"))
        assert run_verification([]) == golden

    def test_depth_is_recorded(self, capsys):
        assert main(["counter", "--depth", "2", "--json", "-"]) == 0
        stdout = capsys.readouterr().out
        document = json.loads(stdout[stdout.index("{"):])
        assert document["depth"] == 2
        assert document["kinds"][0]["bound"]["depth"] == 2

    def test_smt_leg_present_and_harmless(self, capsys):
        """--smt adds the smt list; without z3 every entry degrades to
        'unavailable' and the exit code stays clean."""
        assert main(["counter", "--smt", "--json", "-"]) == 0
        stdout = capsys.readouterr().out
        document = json.loads(stdout[stdout.index("{"):])
        results = document["kinds"][0]["smt"]
        assert results
        assert all(r["status"] in ("verified", "unavailable")
                   for r in results)

    def test_synthesize_leg(self, capsys):
        assert main(["register", "--synthesize", "--json", "-"]) == 0
        stdout = capsys.readouterr().out
        document = json.loads(stdout[stdout.index("{"):])
        synth = document["kinds"][0]["synthesis"]
        by_pair = {(s["m1"], s["m2"]): s for s in synth}
        assert by_pair[("write", "write")]["formula"] == \
            "(v1 = p1 ∧ v2 = p2)"
        assert by_pair[("write", "write")]["matches_spec"] is True


class TestStatsJson:
    def test_counters_reported(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        assert main(["register", "--stats-json", str(out)]) == 0
        capsys.readouterr()
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["meta"]["command"] == "verify-specs"
        assert report["meta"]["kinds"] == 1
        counters = report["stats"]["counters"]
        assert counters["verify_specs"] == 1
        assert counters["verify_specs_ok"] == 1
        assert counters["verify_method_pairs"] == 3


class TestAnalyzeIntegration:
    """The --verify-specs escape hatch on the main repro-analyze CLI."""

    def test_verify_all_via_analyze(self, capsys):
        assert analyze_cli.main(["--verify-specs"]) == 0
        assert "dictionary: OK" in capsys.readouterr().out

    def test_verify_one_kind_via_analyze(self, capsys):
        assert analyze_cli.main(["--verify-specs", "set"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("set: OK")

    def test_unknown_kind_via_analyze(self, capsys):
        with pytest.raises(SystemExit) as exc:
            analyze_cli.main(["--verify-specs", "bogus"])
        assert exc.value.code == 2
