"""Condition synthesis: shipped formulas are recoverable from behaviour.

The acceptance criteria pairs — set ``add/add`` and dictionary
``put/get`` — must be re-derived from labelled samples alone, up to
equivalence on realizable action pairs (shipped specs classify
unrealizable pairs arbitrarily, so those carry no information).
"""

import pytest

from repro.logic.formulas import FALSE, TRUE
from repro.logic.fragments import is_ecl
from repro.verify import synthesize_condition

from tests.verify.support import domain_for, entry_for


def _synthesize(kind, m1, m2, **kw):
    entry = entry_for(kind)
    return synthesize_condition(entry.spec(), entry.semantics(),
                                domain_for(kind), m1, m2, **kw)


class TestAcceptancePairs:
    def test_set_add_add_rederived(self):
        result = _synthesize("set", "add", "add")
        assert result.synthesized
        assert str(result.formula) == "(x1 ≠ x2 ∨ (b1 = 0 ∧ b2 = 0))"
        assert result.matches_spec
        assert result.ecl
        assert result.verdict is not None and result.verdict.ok

    def test_dictionary_put_get_rederived(self):
        result = _synthesize("dictionary", "put", "get")
        assert result.synthesized
        assert str(result.formula) == "(k1 ≠ k2 ∨ v1 = p1)"
        assert result.matches_spec
        assert result.ecl
        assert result.verdict is not None and result.verdict.ok


class TestMoreConditions:
    @pytest.mark.parametrize("kind,m1,m2,expected", [
        ("dictionary", "put", "put", "(k1 ≠ k2 ∨ (v1 = p1 ∧ v2 = p2))"),
        ("counter", "add", "read", "d1 = 0"),
        ("register", "write", "write", "(v1 = p1 ∧ v2 = p2)"),
    ])
    def test_known_formulas_recovered(self, kind, m1, m2, expected):
        result = _synthesize(kind, m1, m2)
        assert str(result.formula) == expected
        assert result.matches_spec and result.verdict.ok

    def test_always_commuting_pair_yields_true(self):
        result = _synthesize("msetlog", "log", "log")
        assert result.formula == TRUE
        assert result.matches_spec

    def test_never_commuting_pair_yields_false(self):
        result = _synthesize("queue", "enq", "size")
        assert result.formula == FALSE
        assert result.matches_spec

    def test_simpler_than_shipped_when_samples_allow(self):
        """set add/remove: the both-no-ops disjunct only forgives
        unrealizable pairs, so synthesis finds the bare disequality —
        sample-equivalent to the shipped formula."""
        result = _synthesize("set", "add", "remove")
        assert str(result.formula) == "x1 ≠ x2"
        assert result.matches_spec   # equivalent on realizable pairs

    def test_small_domain_overfits_honestly(self):
        """queue enq/deq: with a 2-element domain the enumerative cover
        lands on a value-table, not the shipped guard — still validated
        and sample-equivalent, a worked example of why bounded-domain
        synthesis needs diverse domains."""
        result = _synthesize("queue", "enq", "deq")
        assert result.synthesized
        assert result.matches_spec
        assert result.verdict.ok


class TestSynthesisProperties:
    def test_deterministic(self):
        first = _synthesize("set", "add", "contains")
        second = _synthesize("set", "add", "contains")
        assert str(first.formula) == str(second.formula)
        assert first.disjuncts == second.disjuncts

    def test_synthesized_formulas_are_ecl(self):
        for kind, m1, m2 in [("set", "add", "size"),
                             ("dictionary", "put", "size"),
                             ("accumulator", "sample", "total")]:
            result = _synthesize(kind, m1, m2)
            assert result.formula is not None
            assert is_ecl(result.formula), (kind, str(result.formula))

    def test_self_pair_formula_is_symmetric(self):
        """Installing a synthesized self-pair condition passes the spec
        layer's randomized symmetry check (validation would raise)."""
        result = _synthesize("set", "remove", "remove", validate=True)
        assert result.verdict is not None   # pair() accepted the formula

    def test_validation_can_be_skipped(self):
        result = _synthesize("set", "add", "add", validate=False)
        assert result.verdict is None
        assert result.matches_spec is not None

    def test_json_schema(self):
        payload = _synthesize("counter", "add", "read").to_json()
        assert sorted(payload) == ["atoms_considered", "ecl", "formula",
                                   "m1", "m2", "matches_spec", "samples",
                                   "validated"]
        assert payload["validated"] is True
