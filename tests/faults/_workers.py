"""Module-level workers for supervisor tests (importable under spawn)."""


def echo(index, payload, attempt):
    """The simplest deterministic worker: returns its own call record."""
    return ("ok", index, payload)


def double(index, payload, attempt):
    return payload * 2
