"""Shared knobs for the fault-injection suite.

``REPRO_TEST_START_METHOD`` (set by the CI matrix to ``fork`` or
``spawn``) selects the multiprocessing context every pooled test runs
under; unset, the platform default applies.  Fault recovery must behave
identically either way — the supervisor only sees "result arrived /
timed out / raised", never the start method — and running the suite twice
is how that claim is kept honest.
"""

import os

import pytest

START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

# Used only in tests whose faulty worker is *guaranteed* stuck (sleeping
# HANG_SECONDS) or dead: short enough that each timeout-recovery test
# costs seconds, long enough that the healthy shards sharing the round
# (trivial workloads) never trip it even on a loaded CI runner.
FAST_TIMEOUT = 5.0
# A hang must comfortably outlast the timeout that detects it.
HANG_SECONDS = 60.0


@pytest.fixture
def start_method():
    return START_METHOD
