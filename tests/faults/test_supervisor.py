"""Shard supervision semantics, one failure mode at a time.

Each test drives :class:`ShardSupervisor` directly with a trivial worker
and a deterministic fault plan, asserting three things: the results are
the fault-free results, the recovery path taken is the intended one
(retry vs. in-process fallback), and the failure is accounted for in the
fault log and obs counters.
"""

import multiprocessing

import pytest

from repro.core.errors import MonitorError
from repro.core.faults import FaultLog
from repro.core.supervise import ShardSupervisor, SupervisorConfig
from repro.obs.registry import Registry
from repro.testing.faults import FaultPlan, FaultSpec

from tests.faults._workers import double, echo
from tests.faults.conftest import FAST_TIMEOUT, HANG_SECONDS, START_METHOD

EXPECT = [("ok", 0, "a"), ("ok", 1, "b")]


def supervisor(worker=echo, plan=None, retries=2, timeout=60.0, obs=None,
               faults=None, diagnose=None, processes=2):
    config = SupervisorConfig(
        shard_timeout=timeout, max_retries=retries, backoff_base=0.0,
        wrap=plan.wrap if plan is not None else None)
    return ShardSupervisor(worker, processes=processes,
                           mp_context=START_METHOD, config=config, obs=obs,
                           faults=faults, diagnose=diagnose)


def test_fault_free_run_in_payload_order():
    sup = supervisor()
    assert sup.run(["a", "b"]) == EXPECT
    assert not sup.faults


def test_worker_exception_retried_then_succeeds():
    plan = FaultPlan.build({0: FaultSpec("raise", times=1)})
    obs = Registry(sample_interval=1)
    sup = supervisor(plan=plan, retries=2, obs=obs)
    assert sup.run(["a", "b"]) == EXPECT
    assert sup.faults.count(site="shard", kind="worker-raised") == 1
    assert sup.faults.count(kind="fallback") == 0
    snapshot = obs.snapshot()
    assert snapshot["counters"]["shard_worker_errors"] == 1
    assert snapshot["counters"]["shard_retries"] == 1
    assert snapshot["breakdowns"]["faults_by_kind"] == {
        "shard/worker-raised": 1}


def test_exhausted_retries_fall_back_in_process():
    # The shard fails on every pool attempt; only the in-process replay
    # (where injected faults never fire) can complete it.
    plan = FaultPlan.build({1: FaultSpec("raise", times=99)})
    obs = Registry(sample_interval=1)
    sup = supervisor(plan=plan, retries=1, obs=obs)
    assert sup.run(["a", "b"]) == EXPECT
    assert sup.faults.count(kind="worker-raised") == 2  # attempts 0 and 1
    assert sup.faults.count(kind="fallback") == 1
    assert obs.snapshot()["counters"]["shard_fallbacks"] == 1


def test_hung_worker_times_out_and_recovers():
    plan = FaultPlan.build({0: FaultSpec("hang", times=99,
                                         seconds=HANG_SECONDS)})
    sup = supervisor(plan=plan, retries=0, timeout=FAST_TIMEOUT)
    assert sup.run(["a", "b"]) == EXPECT
    assert sup.faults.count(kind="timeout") == 1
    assert sup.faults.count(kind="fallback") == 1


def test_killed_worker_surfaces_as_timeout_then_retries():
    # os._exit takes the worker down without an exception; the pool
    # replaces the process but the job's result is simply never coming,
    # which only the shard deadline can detect.
    plan = FaultPlan.build({0: FaultSpec("exit", times=1)})
    sup = supervisor(plan=plan, retries=1, timeout=FAST_TIMEOUT)
    assert sup.run(["a", "b"]) == EXPECT
    assert sup.faults.count(kind="timeout") == 1
    assert sup.faults.count(kind="fallback") == 0  # retry succeeded


def test_unpicklable_result_degrades_without_retry():
    # A result that cannot cross the pipe fails identically on every
    # pool attempt, so the supervisor must skip straight to the inline
    # fallback instead of burning retries.
    plan = FaultPlan.build({0: FaultSpec("bad-result", times=99)})
    obs = Registry(sample_interval=1)
    sup = supervisor(plan=plan, retries=2, obs=obs)
    assert sup.run(["a", "b"]) == EXPECT
    assert sup.faults.count(kind="result-unpicklable") == 1
    assert sup.faults.count(kind="fallback") == 1
    assert "shard_retries" not in obs.snapshot()["counters"]


def test_every_shard_faulting_still_completes():
    plan = FaultPlan(default=FaultSpec("raise", times=1))
    sup = supervisor(worker=double, plan=plan, retries=1)
    assert sup.run([1, 2, 3]) == [2, 4, 6]
    assert sup.faults.count(kind="worker-raised") == 3


def test_shared_fault_log_and_private_default():
    log = FaultLog()
    plan = FaultPlan.build({0: FaultSpec("raise", times=1)})
    sup = supervisor(plan=plan, faults=log)
    sup.run(["a", "b"])
    assert sup.faults is log and log.count(kind="worker-raised") == 1
    assert isinstance(supervisor().faults, FaultLog)


def test_diagnose_turns_worker_error_into_callers_exception():
    plan = FaultPlan.build({0: FaultSpec("raise", times=99)})
    sup = supervisor(plan=plan,
                     diagnose=lambda index, exc: MonitorError(f"shard {index}"))
    with pytest.raises(MonitorError, match="shard 0"):
        sup.run(["a", "b"])
    assert not multiprocessing.active_children()


def test_keyboard_interrupt_terminates_pool_without_orphans(monkeypatch):
    def interrupt(handle, deadline):
        raise KeyboardInterrupt

    monkeypatch.setattr(ShardSupervisor, "_await", staticmethod(interrupt))
    sup = supervisor()
    with pytest.raises(KeyboardInterrupt):
        sup.run(["a", "b"])
    assert not multiprocessing.active_children()


def test_config_validation():
    with pytest.raises(ValueError):
        SupervisorConfig(shard_timeout=0)
    with pytest.raises(ValueError):
        SupervisorConfig(max_retries=-1)
    with pytest.raises(ValueError):
        SupervisorConfig(backoff_factor=0.5)
    assert SupervisorConfig(shard_timeout=None).shard_timeout is None


def test_backoff_schedule_is_exponential():
    config = SupervisorConfig(backoff_base=0.1, backoff_factor=2.0)
    assert [config.backoff(i) for i in range(3)] == [0.1, 0.2, 0.4]


def test_payloads_serialize_once_across_retries():
    # Retried shards must reuse the payload bytes pickled on attempt 0 —
    # the serialize-once contract, visible as the shard_payload_reuse
    # counter and an ipc_bytes_pickled volume that does not grow.
    plan = FaultPlan.build({0: FaultSpec("raise", times=2)})
    obs = Registry(sample_interval=1)
    sup = supervisor(plan=plan, retries=3, obs=obs)
    assert sup.run(["a", "b"]) == EXPECT
    counters = obs.snapshot()["counters"]
    assert counters["shard_retries"] == 2
    assert counters["shard_payload_reuse"] == 2     # one per retry
    assert counters["ipc_bytes_pickled"] > 0
    # A fault-free run pickles each payload exactly once: same volume.
    clean_obs = Registry(sample_interval=1)
    clean = supervisor(obs=clean_obs)
    assert clean.run(["a", "b"]) == EXPECT
    clean_counters = clean_obs.snapshot()["counters"]
    assert "shard_payload_reuse" not in clean_counters
    assert counters["ipc_bytes_pickled"] \
        == clean_counters["ipc_bytes_pickled"]


def test_payload_blob_is_cached_per_index():
    sup = supervisor()
    blob_a = sup.payload_blob(0, "a")
    assert sup.payload_blob(0, "a") is blob_a       # cache hit, same bytes
    assert sup.payload_blob(1, "b") != blob_a
    import pickle
    assert pickle.loads(blob_a) == "a"


def test_unpicklable_task_degrades_or_diagnoses():
    # A payload that cannot pickle can never reach a pool worker; the
    # supervisor must complete it via the inline fallback (no retries)
    # — or raise the caller's diagnosis when one is installed.
    sup = supervisor()
    results = sup.run(["a", lambda: None])          # lambdas cannot pickle
    assert results[0] == ("ok", 0, "a")
    assert results[1][:2] == ("ok", 1) and callable(results[1][2])
    assert sup.faults.count(kind="task-unpicklable") == 1
    assert sup.faults.count(kind="fallback") == 1
    diag = supervisor(diagnose=lambda index, exc: MonitorError(f"bad {index}"))
    with pytest.raises(MonitorError, match="bad 1"):
        diag.run(["a", lambda: None])
