"""CLI input hardening and interrupt behavior.

Every bad invocation must produce exactly one ``repro-analyze: error:``
line on stderr and the documented exit code — never an argparse usage
dump or a traceback — and Ctrl-C must exit 130 leaving valid partial
observability output and no orphan pool workers.
"""

import json
import multiprocessing

import pytest

from repro.cli import (EXIT_DATA, EXIT_INTERRUPT, EXIT_USAGE, main)
from repro.core.supervise import ShardSupervisor

TRACE = "tests/data/multi_object_mixed.jsonl"
OBJECTS = ["--object", "a=accumulator", "--object", "d=dictionary",
           "--object", "r=register"]


def usage_error(capsys, argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == EXIT_USAGE
    err = capsys.readouterr().err.strip()
    assert err.startswith("repro-analyze: error: ")
    assert "\n" not in err, f"expected one line, got: {err!r}"
    return err


class TestWorkersValidation:
    @pytest.mark.parametrize("value", ["abc", "2.5", "", "0x2"])
    def test_non_integer_workers_rejected(self, capsys, value):
        err = usage_error(capsys, [TRACE, *OBJECTS, "--workers", value])
        assert "--workers expects a positive integer" in err

    @pytest.mark.parametrize("value", ["0", "-1", "-3"])
    def test_nonpositive_workers_rejected(self, capsys, value):
        err = usage_error(capsys, [TRACE, *OBJECTS, "--workers", value])
        assert "--workers must be >= 1" in err

    def test_validated_before_the_trace_is_loaded(self, capsys, tmp_path):
        # A usage error should not depend on the trace being readable.
        usage_error(capsys, [str(tmp_path / "missing.jsonl"), *OBJECTS,
                             "--workers", "0"])


class TestRobustnessFlagValidation:
    @pytest.mark.parametrize("argv, needle", [
        (["--shard-timeout", "0"], "--shard-timeout"),
        (["--shard-timeout", "-2"], "--shard-timeout"),
        (["--shard-timeout", "soon"], "--shard-timeout"),
        (["--shard-retries", "-1"], "--shard-retries"),
        (["--shard-retries", "two"], "--shard-retries"),
        (["--checkpoint-interval", "0"], "--checkpoint-interval"),
        (["--checkpoint-interval", "ten"], "--checkpoint-interval"),
    ])
    def test_bad_values_rejected(self, capsys, argv, needle):
        err = usage_error(capsys, [TRACE, *OBJECTS, *argv])
        assert needle in err

    @pytest.mark.parametrize("argv", [
        ["--detector", "direct", "--workers", "2"],
        ["--detector", "fasttrack", "--shard-retries", "1"],
        ["--detector", "eraser", "--checkpoint", "ck"],
        ["--atomicity", "--resume-from", "ck"],
    ])
    def test_rd2_only_flags_rejected_elsewhere(self, capsys, argv):
        err = usage_error(capsys, [TRACE, *OBJECTS, *argv])
        assert "only to the rd2 detector" in err

    def test_bad_object_binding_is_usage_error(self, capsys):
        err = usage_error(capsys, [TRACE, "--object", "nokind"])
        assert "NAME=KIND" in err
        err = usage_error(capsys, [TRACE, "--object", "o=warpdrive"])
        assert "warpdrive" in err

    def test_trace_error_exit_code_is_distinct(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "missing.jsonl"), *OBJECTS])
        assert excinfo.value.code == EXIT_DATA


def test_help_documents_exit_codes(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "exit codes:" in out
    for code in ("0 ", "1 ", "2 ", "3 ", "130"):
        assert code in out


def test_keyboard_interrupt_exits_130_with_valid_spans(monkeypatch,
                                                       tmp_path, capsys):
    """Ctrl-C during the fan-out: exit 130, pool torn down (no orphan
    workers), and the partial --spans file is still line-valid JSONL."""
    def interrupt(handle, deadline):
        raise KeyboardInterrupt

    monkeypatch.setattr(ShardSupervisor, "_await", staticmethod(interrupt))
    spans = tmp_path / "spans.jsonl"
    code = main([TRACE, *OBJECTS, "--workers", "2",
                 "--spans", str(spans)])
    assert code == EXIT_INTERRUPT
    assert "interrupted" in capsys.readouterr().err
    assert not multiprocessing.active_children()
    lines = spans.read_text().strip().splitlines()
    assert lines  # the load/stamp spans completed before the interrupt
    for line in lines:
        record = json.loads(line)  # every line parses: valid JSONL
        assert {"name", "dur_ns"} <= record.keys()
