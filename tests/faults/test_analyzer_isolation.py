"""Analyzer isolation: the tool must not take the application down.

Covers the three policies (``raise`` propagates, ``log`` contains,
``disable`` contains and quarantines after N faults), the quarantine
accounting in the fault log and obs registry, and the acceptance
criterion: a workload whose analyzer raises on *every* event runs to
completion with its healthy co-analyzers unaffected.
"""

import pytest

from repro.runtime.analyzers import NullAnalyzer
from repro.runtime.monitor import ANALYZER_POLICIES, Monitor
from repro.obs.registry import Registry
from repro.testing.faults import FaultyAnalyzer


def drive(monitor, events=10):
    for i in range(events):
        monitor.on_action("o", "put", (f"k{i}",), (None,))


def test_raise_policy_propagates_by_default():
    monitor = Monitor(analyzers=[FaultyAnalyzer()])
    with pytest.raises(RuntimeError, match="injected analyzer fault"):
        drive(monitor, 1)


def test_log_policy_contains_and_keeps_dispatching():
    faulty, healthy = FaultyAnalyzer(), NullAnalyzer()
    monitor = Monitor(analyzers=[faulty, healthy], analyzer_policy="log")
    drive(monitor, 10)
    assert monitor.events_emitted == 10
    assert faulty.calls == 10              # never dropped under "log"
    assert healthy.event_count == 10            # co-analyzer unaffected
    assert monitor.faults.count(site="analyzer", kind="exception") == 10
    assert monitor.faults.count(kind="quarantined") == 0
    assert not monitor.quarantined_analyzers()


def test_disable_policy_quarantines_after_threshold():
    faulty, healthy = FaultyAnalyzer(), NullAnalyzer()
    obs = Registry(sample_interval=1)
    monitor = Monitor(analyzers=[faulty, healthy],
                      analyzer_policy="disable", max_analyzer_faults=3,
                      obs=obs)
    drive(monitor, 10)
    # Acceptance criterion: the workload ran to completion, unchanged.
    assert monitor.events_emitted == 10
    assert healthy.event_count == 10
    assert faulty.calls == 3               # dropped from dispatch after #3
    assert monitor.quarantined_analyzers() == (faulty,)
    assert monitor.faults.count(kind="exception") == 3
    assert monitor.faults.count(kind="quarantined") == 1
    snapshot = obs.snapshot()
    assert snapshot["counters"]["analyzers_quarantined"] == 1
    assert snapshot["breakdowns"]["analyzer_faults"] == {"faulty": 3}
    assert snapshot["breakdowns"]["analyzer_quarantined"] == {"faulty": 1}


def test_transient_faults_below_threshold_keep_analyzer_attached():
    flaky = FaultyAnalyzer(times=2)
    monitor = Monitor(analyzers=[flaky], analyzer_policy="disable",
                      max_analyzer_faults=3)
    drive(monitor, 10)
    assert flaky.calls == 10               # recovered, still dispatched
    assert not monitor.quarantined_analyzers()
    assert monitor.faults.count(kind="exception") == 2


def test_quarantine_is_per_analyzer():
    bad, flaky = FaultyAnalyzer(), FaultyAnalyzer(times=1)
    monitor = Monitor(analyzers=[bad, flaky], analyzer_policy="disable",
                      max_analyzer_faults=2)
    drive(monitor, 8)
    assert monitor.quarantined_analyzers() == (bad,)
    assert flaky.calls == 8


def test_policy_and_threshold_validation():
    with pytest.raises(ValueError, match="analyzer_policy"):
        Monitor(analyzer_policy="ignore")
    with pytest.raises(ValueError, match="max_analyzer_faults"):
        Monitor(analyzer_policy="disable", max_analyzer_faults=0)
    for policy in ANALYZER_POLICIES:
        assert Monitor(analyzer_policy=policy).analyzer_policy == policy


def test_raise_policy_fast_path_records_nothing():
    healthy = NullAnalyzer()
    monitor = Monitor(analyzers=[healthy])
    drive(monitor, 5)
    assert not monitor.faults
    assert healthy.event_count == 5
