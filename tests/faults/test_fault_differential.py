"""The central robustness claim, tested differentially.

For every injected fault the supervisor recovers from, the sharded run's
merged output must be *identical* — report for report, snapshot for
snapshot — to the fault-free sequential detector's on the same trace,
with the fault visible in the fault log (and, through the CLI, in the
``--stats-json`` report).

Seeds are chosen from the shared randomized-program corpus for verdict
variety (the list includes race-dense and race-free traces and 2-6 object
programs); the seeded fault plans stack worker exceptions and unpicklable
results across shards and attempts.  Hang and kill faults each cost a
timeout window to detect, so they get dedicated single-fault cases
rather than riding the seed sweep.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.core.supervise import SupervisorConfig
from repro.obs.registry import Registry
from repro.testing.faults import PLAN_ENV, FaultPlan, FaultSpec

from tests.faults.conftest import FAST_TIMEOUT, HANG_SECONDS, START_METHOD
from tests.support import (build_multi_object_trace,
                           race_snapshot, random_multi_object_program,
                           register_bindings)

# Seeds with known verdict variety (0/10/12/16/18 produce 126/52/16/59/232
# races over 4/5/4/3/2 objects; 11 is race-free with 4 objects).
SEEDS = (0, 10, 11, 12, 16, 18)


def corpus_case(seed):
    program = random_multi_object_program(seed, max_objects=6, max_ops=80)
    trace, bindings = build_multi_object_trace(program)
    sequential = CommutativityRaceDetector(keep_reports=True)
    register_bindings(sequential, bindings)
    for event in trace:
        sequential.process(event)
    return trace, bindings, sequential


def supervised_run(trace, bindings, plan, retries=1, timeout=60.0):
    obs = Registry(sample_interval=1)
    config = SupervisorConfig(shard_timeout=timeout, max_retries=retries,
                              backoff_base=0.0, wrap=plan.wrap)
    detector = ShardedDetector(workers=2, mp_context=START_METHOD,
                               supervisor=config, obs=obs)
    register_bindings(detector, bindings)
    detector.run(trace)
    return detector, obs


def assert_identical(detector, sequential):
    assert ([race_snapshot(race) for race in detector.races]
            == [race_snapshot(race) for race in sequential.races])
    assert detector.stats == sequential.stats


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_fault_plans_preserve_output(seed):
    trace, bindings, sequential = corpus_case(seed)
    plan = FaultPlan.seeded(seed, shards=2, retries=1)
    detector, obs = supervised_run(trace, bindings, plan, retries=1)
    assert_identical(detector, sequential)
    if plan.has_faults() and len(bindings) > 1:
        # >=2 objects means >=2 shards, so at least one planned fault
        # actually fired — and must therefore be on the record.
        assert detector.faults
        assert obs.snapshot()["counters"]["shard_faults"] == \
            len(detector.faults)


def test_hang_past_timeout_preserves_output():
    trace, bindings, sequential = corpus_case(0)
    plan = FaultPlan.build({0: FaultSpec("hang", times=99,
                                         seconds=HANG_SECONDS)})
    detector, _ = supervised_run(trace, bindings, plan, retries=0,
                                 timeout=FAST_TIMEOUT)
    assert_identical(detector, sequential)
    assert detector.faults.count(kind="timeout") == 1
    assert detector.faults.count(kind="fallback") == 1


def test_killed_worker_preserves_output():
    trace, bindings, sequential = corpus_case(16)
    plan = FaultPlan.build({1: FaultSpec("exit", times=1)})
    detector, _ = supervised_run(trace, bindings, plan, retries=1,
                                 timeout=FAST_TIMEOUT)
    assert_identical(detector, sequential)
    assert detector.faults.count(kind="timeout") == 1


def test_unpicklable_results_on_every_shard_preserve_output():
    trace, bindings, sequential = corpus_case(18)
    plan = FaultPlan(default=FaultSpec("bad-result", times=99))
    detector, _ = supervised_run(trace, bindings, plan)
    assert_identical(detector, sequential)
    assert detector.faults.count(kind="result-unpicklable") >= 1
    assert detector.faults.count(kind="fallback") >= 1


def run_cli(*argv, env_extra=None):
    env = dict(os.environ, PYTHONPATH="src")
    if START_METHOD:
        env["REPRO_TEST_START_METHOD"] = START_METHOD
    env.update(env_extra or {})
    return subprocess.run([sys.executable, "-m", "repro.cli", *argv],
                          capture_output=True, text=True, env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(os.path.abspath(__file__)))))


TRACE = "tests/data/multi_object_mixed.jsonl"
OBJECTS = ("--object", "a=accumulator", "--object", "d=dictionary",
           "--object", "r=register")


def test_cli_fault_plan_differential_with_stats_json(tmp_path):
    """End to end through the real CLI: inject via REPRO_FAULT_PLAN,
    assert identical stdout and faults visible in --stats-json."""
    stats = tmp_path / "stats.json"
    plan = FaultPlan(default=FaultSpec("raise", times=1))
    clean = run_cli(TRACE, *OBJECTS)
    faulty = run_cli(TRACE, *OBJECTS, "--workers", "2",
                     "--shard-retries", "1", "--stats-json", str(stats),
                     env_extra={PLAN_ENV: plan.to_env()})
    assert clean.returncode == faulty.returncode == 1  # races reported
    assert (faulty.stdout.replace("rd2 [2 workers]:", "rd2:")
            == clean.stdout)
    assert "tolerated" in faulty.stderr
    report = json.loads(stats.read_text())
    counts = report["faults"]["counts"]
    assert counts.get("shard/worker-raised", 0) >= 1
    assert report["stats"]["counters"]["shard_faults"] == sum(
        counts.values())


def test_cli_fault_free_run_reports_no_faults(tmp_path):
    stats = tmp_path / "stats.json"
    result = run_cli(TRACE, *OBJECTS, "--workers", "2",
                     "--stats-json", str(stats))
    assert result.returncode == 1
    assert "tolerated" not in result.stderr
    assert "faults" not in json.loads(stats.read_text())
