"""Checkpoint/resume: format integrity, resume equivalence, kill -9.

Three layers: (1) the file format rejects every corruption a crash or a
bad disk can produce, as :class:`CheckpointError`; (2) a resumed run's
output is identical to an uninterrupted run's, across the golden-trace
corpus, and *any* rejected checkpoint degrades gracefully to a full
restamp with the rejection on the fault record; (3) a real
``repro-analyze`` process SIGKILLed mid-run resumes from the checkpoint
it left behind and prints the same report.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.checkpoint import (CHECKPOINT_VERSION, Checkpoint,
                                   CheckpointConfig, load_checkpoint,
                                   save_checkpoint)
from repro.core.errors import CheckpointError
from repro.core.hb import HappensBeforeTracker
from repro.core.parallel import ShardedDetector
from repro.obs.registry import Registry
from repro.testing.faults import KILL_ENV, truncate_file

from tests.core.test_golden_traces import GOLDEN_NAMES, load_case
from tests.support import (build_multi_object_trace, race_snapshot,
                           random_multi_object_program, register_bindings)


def sample_checkpoint():
    return Checkpoint(version=CHECKPOINT_VERSION, root=0, next_index=3,
                      prefix_digest="ab" * 32, objects=["'d'"],
                      hb=HappensBeforeTracker(root=0),
                      groups={"d": [(0, 1, "put", ("k", 1), (None,), None)]})


class TestFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck")
        original = sample_checkpoint()
        save_checkpoint(path, original)
        loaded = load_checkpoint(path)
        assert loaded.next_index == original.next_index
        assert loaded.prefix_digest == original.prefix_digest
        assert loaded.objects == original.objects
        assert loaded.groups == original.groups

    def test_atomic_write_replaces_not_appends(self, tmp_path):
        path = str(tmp_path / "ck")
        save_checkpoint(path, sample_checkpoint())
        first_size = os.path.getsize(path)
        save_checkpoint(path, sample_checkpoint())
        assert os.path.getsize(path) == first_size
        assert not [name for name in os.listdir(tmp_path)
                    if name.startswith(".repro-ckpt-")]  # no temp litter

    @pytest.mark.parametrize("drop", [1, 16, 4096])
    def test_truncation_detected(self, tmp_path, drop):
        path = str(tmp_path / "ck")
        save_checkpoint(path, sample_checkpoint())
        truncate_file(path, drop_bytes=drop)
        with pytest.raises(CheckpointError, match="truncated|magic"):
            load_checkpoint(path)

    def test_bad_magic_detected(self, tmp_path):
        path = str(tmp_path / "ck")
        path_obj = tmp_path / "ck"
        save_checkpoint(path, sample_checkpoint())
        blob = path_obj.read_bytes()
        path_obj.write_bytes(b"X" + blob[1:])
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_payload_corruption_fails_digest(self, tmp_path):
        path_obj = tmp_path / "ck"
        save_checkpoint(str(path_obj), sample_checkpoint())
        blob = bytearray(path_obj.read_bytes())
        blob[-1] ^= 0xFF
        path_obj.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(str(path_obj))

    def test_unsupported_version_rejected(self, tmp_path):
        path = str(tmp_path / "ck")
        future = sample_checkpoint()
        future.version = CHECKPOINT_VERSION + 1
        save_checkpoint(path, future)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "absent"))

    def test_config_validates_interval(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(path=str(tmp_path / "ck"), interval=0)


class TestResume:
    def run_detector(self, trace, bindings, root=0, **kwargs):
        obs = Registry(sample_interval=1)
        detector = ShardedDetector(root=root, workers=1, obs=obs, **kwargs)
        register_bindings(detector, bindings)
        detector.run(trace)
        return detector, obs.snapshot()["counters"]

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_resume_matches_uninterrupted_on_golden_corpus(self, name,
                                                           tmp_path):
        trace, expected = load_case(name)
        bindings = expected["bindings"]
        path = str(tmp_path / "ck")
        interval = max(1, len(trace) // 3)
        full, _ = self.run_detector(
            trace, bindings, root=trace.root,
            checkpoint=CheckpointConfig(path, interval=interval))
        assert [race_snapshot(r) for r in full.races] == expected["races"]
        resumed, counters = self.run_detector(
            trace, bindings, root=trace.root, resume_from=path)
        assert counters.get("checkpoint_resumes") == 1  # not rejected
        assert not resumed.faults
        assert [race_snapshot(r) for r in resumed.races] == expected["races"]
        assert resumed.stats == full.stats

    def corpus_case(self, seed=0):
        program = random_multi_object_program(seed, max_objects=6,
                                              max_ops=80)
        return build_multi_object_trace(program)

    def write_checkpoint(self, trace, bindings, path, interval=20):
        detector, _ = self.run_detector(
            trace, bindings, checkpoint=CheckpointConfig(path,
                                                         interval=interval))
        return detector

    def test_interval_counts_writes(self, tmp_path):
        trace, bindings = self.corpus_case()
        writes = []
        config = CheckpointConfig(str(tmp_path / "ck"), interval=50,
                                  after_write=writes.append)
        self.run_detector(trace, bindings, checkpoint=config)
        assert writes == list(range(1, len(trace) // 50 + 1))

    def assert_degrades(self, trace, bindings, baseline, path):
        """A rejected checkpoint must restamp fully and log the rejection."""
        resumed, counters = self.run_detector(trace, bindings,
                                              resume_from=path)
        assert resumed.faults.count(site="checkpoint", kind="rejected") == 1
        assert counters.get("checkpoint_rejected") == 1
        assert "checkpoint_resumes" not in counters
        assert ([race_snapshot(r) for r in resumed.races]
                == [race_snapshot(r) for r in baseline.races])
        assert resumed.stats == baseline.stats

    def test_truncated_checkpoint_degrades_to_restamp(self, tmp_path):
        trace, bindings = self.corpus_case()
        path = str(tmp_path / "ck")
        baseline = self.write_checkpoint(trace, bindings, path)
        truncate_file(path)
        self.assert_degrades(trace, bindings, baseline, path)

    def test_modified_trace_prefix_degrades_to_restamp(self, tmp_path):
        trace, bindings = self.corpus_case()
        path = str(tmp_path / "ck")
        self.write_checkpoint(trace, bindings, path)
        tampered = list(trace)
        tampered[1], tampered[2] = tampered[2], tampered[1]
        # The checkpoint belongs to the *original* event order; resuming
        # on the tampered trace must restamp and match a fresh run of the
        # tampered trace, not silently mix the two.
        baseline, _ = self.run_detector(tampered, bindings)
        self.assert_degrades(tampered, bindings, baseline, path)

    def test_different_registrations_degrade_to_restamp(self, tmp_path):
        trace, bindings = self.corpus_case()
        assert len(bindings) > 1
        path = str(tmp_path / "ck")
        self.write_checkpoint(trace, bindings, path)
        fewer = dict(list(bindings.items())[:-1])
        baseline, _ = self.run_detector(trace, fewer)
        self.assert_degrades(trace, fewer, baseline, path)


TRACE = "tests/data/multi_object_mixed.jsonl"
OBJECTS = ("--object", "a=accumulator", "--object", "d=dictionary",
           "--object", "r=register")


def run_cli(*argv, env_extra=None):
    env = dict(os.environ, PYTHONPATH="src")
    env.update(env_extra or {})
    repo = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    return subprocess.run([sys.executable, "-m", "repro.cli", *argv],
                          capture_output=True, text=True, env=env, cwd=repo)


def test_sigkilled_analyze_resumes_identically(tmp_path):
    """Acceptance criterion: kill -9 mid-run, resume, same report."""
    path = str(tmp_path / "run.ck")
    stats = str(tmp_path / "stats.json")
    killed = run_cli(TRACE, *OBJECTS, "--checkpoint", path,
                     "--checkpoint-interval", "5",
                     env_extra={KILL_ENV: "1"})
    assert killed.returncode == -9  # genuinely SIGKILLed, not an exit()
    snapshot = load_checkpoint(path)  # complete and valid on disk
    assert snapshot.next_index == 5
    uninterrupted = run_cli(TRACE, *OBJECTS)
    resumed = run_cli(TRACE, *OBJECTS, "--resume-from", path,
                      "--stats-json", stats)
    assert resumed.returncode == uninterrupted.returncode == 1
    assert resumed.stdout == uninterrupted.stdout
    report = json.loads(open(stats).read())
    assert report["stats"]["counters"]["checkpoint_resumes"] == 1
    assert "faults" not in report
