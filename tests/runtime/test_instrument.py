"""Generic dynamic method interception."""

import pytest

from repro.core.errors import SpecificationError
from repro.core.events import EventKind
from repro.logic.spec import CommutativitySpec
from repro.runtime.instrument import intercept
from repro.runtime.monitor import Monitor
from repro.runtime.analyzers import Rd2Analyzer


class Toy:
    """A tiny stateful target class."""

    def __init__(self):
        self.data = {}
        self.untracked_calls = 0

    def store(self, key, value):
        previous = self.data.get(key, 0)
        self.data[key] = value
        return previous

    def load(self, key):
        return self.data.get(key, 0)

    def pair(self, key):
        return (key, self.data.get(key, 0))

    def helper(self):
        self.untracked_calls += 1
        return "not monitored"


def toy_spec():
    spec = CommutativitySpec("toy")
    spec.method("store", params=("key", "value"), returns=("previous",))
    spec.method("load", params=("key",), returns=("value",))
    spec.method("pair", params=("key",), returns=("fst", "snd"))
    spec.pair("store", "store", "key1 != key2")
    spec.pair("store", "load", "key1 != key2")
    spec.pair("store", "pair", "key1 != key2")
    spec.default_true()
    return spec


class TestInterception:
    def test_calls_pass_through_and_emit_actions(self):
        monitor = Monitor(record_trace=True)
        toy = intercept(monitor, Toy(), toy_spec(), name="toy")
        assert toy.store("a", 1) == 0
        assert toy.load("a") == 1
        actions = [e.action for e in monitor.trace
                   if e.kind is EventKind.ACTION]
        assert [a.method for a in actions] == ["store", "load"]
        assert actions[0].returns == (0,)
        assert actions[1].returns == (1,)

    def test_unspecified_methods_unmonitored(self):
        monitor = Monitor(record_trace=True)
        toy = intercept(monitor, Toy(), toy_spec())
        assert toy.helper() == "not monitored"
        assert len(monitor.trace) == 0

    def test_plain_attributes_pass_through(self):
        monitor = Monitor(record_trace=True)
        target = Toy()
        toy = intercept(monitor, target, toy_spec())
        toy.store("a", 9)
        assert toy.data == {"a": 9}

    def test_multi_return_packing(self):
        monitor = Monitor(record_trace=True)
        toy = intercept(monitor, Toy(), toy_spec())
        assert toy.pair("a") == ("a", 0)
        action = monitor.trace[0].action
        assert action.returns == ("a", 0)

    def test_arity_mismatch_rejected(self):
        monitor = Monitor(record_trace=True)
        toy = intercept(monitor, Toy(), toy_spec())
        with pytest.raises(SpecificationError):
            toy.store("only-one-arg")

    def test_detects_races_end_to_end(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        toy = intercept(monitor, Toy(), toy_spec(), name="toy")
        # Simulate two unordered threads through the tid provider.
        monitor.on_fork(1)
        monitor.on_fork(2)
        current = {"tid": 1}
        monitor.bind_tid_provider(lambda: current["tid"])
        toy.store("a", 1)
        current["tid"] = 2
        toy.store("a", 2)
        assert len(rd2.races()) == 1

    def test_custom_name_and_release(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        toy = intercept(monitor, Toy(), toy_spec(), name="custom")
        assert toy.obj_id == "custom"
        toy.release()
        assert "custom" not in rd2.detector.registered_objects()

    def test_non_ecl_spec_fails_at_translation(self):
        spec = CommutativitySpec("bad").method("m", params=("x",))
        spec.pair("m", "m", "x1 == x2")
        with pytest.raises(Exception):
            intercept(Monitor(), Toy(), spec)
