"""The Monitor event hub."""

import threading

import pytest

from repro.core.errors import MonitorError
from repro.core.events import EventKind
from repro.runtime.analyzers import NullAnalyzer, Rd2Analyzer
from repro.runtime.monitor import Monitor, ROOT_TID
from repro.specs.dictionary import dictionary_representation


class TestEnablement:
    def test_disabled_without_analyzers(self):
        monitor = Monitor()
        assert not monitor.enabled
        monitor.on_action("o", "get", ("k",), (0,))
        monitor.on_read("x")
        assert monitor.events_emitted == 0

    def test_enabled_with_analyzer(self):
        monitor = Monitor(analyzers=[NullAnalyzer()])
        assert monitor.enabled
        monitor.on_action("o", "get", ("k",), (0,))
        assert monitor.events_emitted == 1

    def test_enabled_with_recording_only(self):
        monitor = Monitor(record_trace=True)
        assert monitor.enabled
        monitor.on_write("x")
        assert len(monitor.trace) == 1

    def test_low_level_flag_suppresses_memory_events(self):
        null = NullAnalyzer()
        monitor = Monitor(analyzers=[null], low_level=False)
        monitor.on_read("x")
        monitor.on_write("x")
        monitor.on_action("o", "get", ("k",), (0,))
        assert null.event_count == 1  # only the action


class TestDispatch:
    def test_all_analyzers_see_every_event(self):
        first, second = NullAnalyzer(), NullAnalyzer()
        monitor = Monitor(analyzers=[first, second])
        monitor.on_acquire("L")
        monitor.on_release("L")
        assert first.event_count == second.event_count == 2

    def test_add_analyzer_after_construction(self):
        monitor = Monitor()
        null = NullAnalyzer()
        monitor.add_analyzer(null)
        monitor.on_write("x")
        assert null.event_count == 1

    def test_trace_records_in_order(self):
        monitor = Monitor(record_trace=True)
        monitor.on_fork(1)
        monitor.on_action("o", "get", ("k",), (0,))
        kinds = [event.kind for event in monitor.trace]
        assert kinds == [EventKind.FORK, EventKind.ACTION]

    def test_attach_object_reaches_detecting_analyzers(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        monitor.attach_object("o", representation=dictionary_representation())
        assert "o" in rd2.detector.registered_objects()

    def test_release_object(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        monitor.attach_object("o", representation=dictionary_representation())
        monitor.release_object("o")
        assert "o" not in rd2.detector.registered_objects()


class TestThreadIdentity:
    def test_constructing_thread_is_root(self):
        monitor = Monitor(analyzers=[NullAnalyzer()])
        assert monitor.current_tid() == ROOT_TID

    def test_unregistered_os_thread_rejected(self):
        monitor = Monitor(analyzers=[NullAnalyzer()])
        failures = []

        def body():
            try:
                monitor.current_tid()
            except MonitorError as exc:
                failures.append(exc)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert failures

    def test_adopt_thread(self):
        monitor = Monitor(analyzers=[NullAnalyzer()])
        seen = []

        def body():
            tid = monitor.adopt_thread()
            seen.append((tid, monitor.current_tid()))

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        tid, current = seen[0]
        assert tid == current
        assert tid != ROOT_TID

    def test_fresh_tid_monotonic(self):
        monitor = Monitor()
        assert monitor.fresh_tid() < monitor.fresh_tid()

    def test_tid_provider_overrides_registry(self):
        monitor = Monitor(analyzers=[NullAnalyzer()])
        monitor.bind_tid_provider(lambda: 42)
        assert monitor.current_tid() == 42


class TestPreempt:
    def test_noop_without_scheduler(self):
        Monitor().preempt()  # must not raise

    def test_bound_preempt_called(self):
        monitor = Monitor()
        calls = []
        monitor.bind_preempt(lambda: calls.append(1))
        monitor.preempt()
        assert calls == [1]

    def test_races_aggregates_analyzers(self):
        monitor = Monitor(analyzers=[Rd2Analyzer(), NullAnalyzer()])
        assert monitor.races() == []

    def test_repr(self):
        assert "NullAnalyzer" in repr(Monitor(analyzers=[NullAnalyzer()]))


class TestSummary:
    def test_summary_lists_analyzers_and_groups(self):
        from repro.core.events import NIL
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2, NullAnalyzer()])
        monitor.attach_object("o",
                              representation=dictionary_representation())
        monitor.on_fork(1)
        monitor.on_fork(2)
        monitor.bind_tid_provider(lambda: 1)
        monitor.on_action("o", "put", ("k", 1), (NIL,))
        monitor.bind_tid_provider(lambda: 2)
        monitor.on_action("o", "put", ("k", 2), (1,))
        text = monitor.summary()
        assert "events" in text
        assert "[rd2] 1 (1) reports" in text
        assert "[null] 0 (0) reports" in text
        assert "[1x]" in text

    def test_summary_of_idle_monitor(self):
        text = Monitor(analyzers=[NullAnalyzer()]).summary()
        assert "0 events" in text
