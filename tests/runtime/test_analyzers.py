"""Analyzer adapters over crafted event streams."""

import pytest

from repro.core.errors import MonitorError
from repro.core.events import NIL
from repro.core.races import CommutativityRace, DataRace
from repro.core.trace import TraceBuilder
from repro.runtime.analyzers import (DirectAnalyzer, EraserAnalyzer,
                                     FastTrackAnalyzer, NullAnalyzer,
                                     Rd2Analyzer)
from repro.runtime.shared import internal_lock_id
from repro.specs.dictionary import dictionary_representation, dictionary_spec


def racy_trace():
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .invoke(1, "o", "put", "k", 1, returns=NIL)
            .invoke(2, "o", "put", "k", 2, returns=1)
            .build())


class TestRd2Analyzer:
    def test_detects_over_event_stream(self):
        rd2 = Rd2Analyzer()
        rd2.register_object("o", representation=dictionary_representation())
        for event in racy_trace():
            rd2.process(event)
        assert len(rd2.races()) == 1
        assert isinstance(rd2.races()[0], CommutativityRace)

    def test_requires_representation(self):
        with pytest.raises(MonitorError):
            Rd2Analyzer().register_object("o", commutes=lambda a, b: True)

    def test_ignores_internal_lock_sync(self):
        """Internal critical sections must not order actions for RD2."""
        internal = internal_lock_id("o")
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .acquire(1, internal)
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .release(1, internal)
                 .acquire(2, internal)
                 .invoke(2, "o", "put", "k", 2, returns=1)
                 .release(2, internal)
                 .build(stamp=False))
        rd2 = Rd2Analyzer()
        rd2.register_object("o", representation=dictionary_representation())
        for event in trace:
            rd2.process(event)
        assert len(rd2.races()) == 1

    def test_app_level_locks_do_order(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .acquire(1, "L")
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .release(1, "L")
                 .acquire(2, "L")
                 .invoke(2, "o", "put", "k", 2, returns=1)
                 .release(2, "L")
                 .build(stamp=False))
        rd2 = Rd2Analyzer()
        rd2.register_object("o", representation=dictionary_representation())
        for event in trace:
            rd2.process(event)
        assert rd2.races() == []

    def test_ignores_memory_events(self):
        rd2 = Rd2Analyzer()
        rd2.register_object("o", representation=dictionary_representation())
        trace = (TraceBuilder(root=0).write(0, "x").read(0, "x")
                 .build(stamp=False))
        for event in trace:
            rd2.process(event)
        assert rd2.stats.events == 0


class TestDirectAnalyzer:
    def test_detects(self):
        direct = DirectAnalyzer()
        direct.register_object("o", commutes=dictionary_spec().commutes)
        for event in racy_trace():
            direct.process(event)
        assert len(direct.races()) == 1

    def test_requires_commutes(self):
        with pytest.raises(MonitorError):
            DirectAnalyzer().register_object(
                "o", representation=dictionary_representation())


class TestFastTrackAnalyzer:
    def test_detects_memory_race(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .write(1, "x").write(2, "x")
                 .build(stamp=False))
        analyzer = FastTrackAnalyzer()
        for event in trace:
            analyzer.process(event)
        races = analyzer.races()
        assert len(races) == 1
        assert isinstance(races[0], DataRace)

    def test_ignores_actions(self):
        analyzer = FastTrackAnalyzer()
        for event in racy_trace():
            analyzer.process(event)
        assert analyzer.races() == []


class TestEraserAnalyzer:
    def test_flags_unprotected_shared_write(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .write(1, "x").write(2, "x")
                 .build(stamp=False))
        analyzer = EraserAnalyzer()
        for event in trace:
            analyzer.process(event)
        assert len(analyzer.races()) == 1


class TestNullAnalyzer:
    def test_counts_only(self):
        null = NullAnalyzer()
        for event in racy_trace():
            null.process(event)
        assert null.event_count == len(racy_trace())
        assert null.races() == []

    def test_register_is_accepted_and_ignored(self):
        NullAnalyzer().register_object("o")  # must not raise
