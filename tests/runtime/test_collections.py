"""Monitored collections: behaviour, emitted actions, low-level stream."""

import pytest

from repro.core.events import NIL, EventKind
from repro.runtime.collections_rt import (MonitoredAccumulator,
                                          MonitoredCounter, MonitoredDict,
                                          MonitoredLog, MonitoredSet)
from repro.runtime.monitor import Monitor
from repro.runtime.shared import is_internal_lock


def recording_monitor():
    return Monitor(record_trace=True)


def actions_of(monitor):
    return [e.action for e in monitor.trace if e.kind is EventKind.ACTION]


class TestMonitoredDict:
    def test_put_get_size_semantics(self):
        d = MonitoredDict(recording_monitor())
        assert d.put("a", 1) is NIL
        assert d.put("a", 2) == 1
        assert d.get("a") == 2
        assert d.get("zz") is NIL
        assert d.size() == 1

    def test_put_nil_erases(self):
        d = MonitoredDict(recording_monitor())
        d.put("a", 1)
        assert d.put("a", NIL) == 1
        assert d.size() == 0
        assert d.get("a") is NIL

    def test_remove_and_contains(self):
        d = MonitoredDict(recording_monitor())
        d.put("a", 1)
        assert d.contains("a")
        assert d.remove("a") == 1
        assert d.remove("a") is NIL
        assert not d.contains("a")

    def test_put_if_absent(self):
        d = MonitoredDict(recording_monitor())
        assert d.put_if_absent("a", 1) is NIL
        assert d.put_if_absent("a", 2) == 1
        assert d.get("a") == 1

    def test_actions_record_real_returns(self):
        monitor = recording_monitor()
        d = MonitoredDict(monitor, name="o")
        d.put("a", 1)
        d.put("a", 2)
        acts = actions_of(monitor)
        assert acts[0].returns == (NIL,)
        assert acts[1].returns == (1,)
        assert acts[0].obj == "o"
        assert acts[0].method == "put"

    def test_internal_critical_section_emitted(self):
        monitor = recording_monitor()
        d = MonitoredDict(monitor)
        d.put("a", 1)
        kinds = [e.kind for e in monitor.trace]
        assert kinds[0] is EventKind.ACQUIRE
        assert is_internal_lock(monitor.trace[0].lock)
        assert kinds[-1] is EventKind.ACTION
        assert EventKind.RELEASE in kinds

    def test_resize_touches_size_location(self):
        monitor = recording_monitor()
        d = MonitoredDict(monitor, name="o")
        d.put("a", 1)    # resizes: size location written
        d.put("a", 2)    # overwrite: no size accesses
        locations = [e.location for e in monitor.trace
                     if e.kind is EventKind.WRITE]
        assert locations.count(("o", "size")) == 1

    def test_uninstrumented_still_functional(self):
        monitor = Monitor()
        d = MonitoredDict(monitor)
        d.put("a", 1)
        assert d.get("a") == 1
        assert monitor.events_emitted == 0

    def test_snapshot_and_len(self):
        d = MonitoredDict(recording_monitor())
        d.put("a", 1)
        assert d.snapshot() == {"a": 1}
        assert len(d) == 1

    def test_named_and_auto_ids(self):
        monitor = recording_monitor()
        named = MonitoredDict(monitor, name="mine")
        assert named.obj_id == "mine"
        auto1 = MonitoredDict(monitor)
        auto2 = MonitoredDict(monitor)
        assert auto1.obj_id != auto2.obj_id


class TestMonitoredSet:
    def test_add_remove_effectiveness(self):
        s = MonitoredSet(recording_monitor())
        assert s.add("x")
        assert not s.add("x")
        assert s.contains("x")
        assert s.remove("x")
        assert not s.remove("x")
        assert s.size() == 0

    def test_action_returns_are_ints(self):
        monitor = recording_monitor()
        s = MonitoredSet(monitor)
        s.add("x")
        s.add("x")
        acts = actions_of(monitor)
        assert acts[0].returns == (1,)
        assert acts[1].returns == (0,)


class TestMonitoredCounter:
    def test_add_and_read(self):
        c = MonitoredCounter(recording_monitor())
        c.add(5)
        c.add(-2)
        assert c.read() == 3

    def test_add_action_has_no_returns(self):
        monitor = recording_monitor()
        c = MonitoredCounter(monitor)
        c.add(1)
        assert actions_of(monitor)[0].returns == ()


class TestMonitoredAccumulator:
    def test_total_and_peak(self):
        acc = MonitoredAccumulator(recording_monitor())
        for d in (4, 9, 2):
            acc.sample(d)
        assert acc.total() == 15
        assert acc.peak() == 9


class TestMonitoredLog:
    def test_log_snapshot_count(self):
        log = MonitoredLog(recording_monitor())
        log.log("a")
        log.log("b")
        log.log("a")
        assert log.snapshot() == 3
        assert log.count("a") == 2
        assert log.entries() == ["a", "b", "a"]


class TestRegistration:
    def test_collections_register_with_analyzers(self):
        from repro.runtime.analyzers import Rd2Analyzer
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        d = MonitoredDict(monitor)
        assert d.obj_id in rd2.detector.registered_objects()

    def test_release_reclaims(self):
        from repro.runtime.analyzers import Rd2Analyzer
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        d = MonitoredDict(monitor)
        d.release()
        assert d.obj_id not in rd2.detector.registered_objects()

    def test_custom_spec_and_representation(self):
        from repro.specs.dictionary import (dictionary_representation,
                                            extended_dictionary_spec)
        monitor = recording_monitor()
        d = MonitoredDict(monitor,
                          representation=dictionary_representation(),
                          spec=extended_dictionary_spec())
        assert d.put("a", 1) is NIL
