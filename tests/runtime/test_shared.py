"""Shared variables, locks and the interface/memory event split."""

import pytest

from repro.core.events import EventKind, acquire_event, read_event
from repro.runtime.monitor import Monitor
from repro.runtime.shared import (SharedVar, MonitoredLock, interface_event,
                                  internal_lock_id, is_internal_lock)


class TestInternalLockTagging:
    def test_internal_lock_identity(self):
        lock_id = internal_lock_id("dict#0")
        assert is_internal_lock(lock_id)
        assert not is_internal_lock("userLock")
        assert not is_internal_lock(("other", "pair"))

    def test_interface_event_filters_memory(self):
        assert not interface_event(read_event(0, "x"))

    def test_interface_event_filters_internal_locks(self):
        internal = acquire_event(0, internal_lock_id("d"))
        app = acquire_event(0, "L")
        assert not interface_event(internal)
        assert interface_event(app)

    def test_actions_and_forks_are_interface_level(self):
        from repro.core.events import Action, action_event, fork_event
        assert interface_event(action_event(0, Action("o", "m", (), ())))
        assert interface_event(fork_event(0, 1))


class TestSharedVar:
    def test_read_write_events(self):
        monitor = Monitor(record_trace=True)
        var = SharedVar(monitor, 10, name="field")
        assert var.read() == 10
        var.write(11)
        kinds = [event.kind for event in monitor.trace]
        assert kinds == [EventKind.READ, EventKind.WRITE]
        assert monitor.trace[0].location == "field"

    def test_add_is_two_accesses(self):
        monitor = Monitor(record_trace=True)
        var = SharedVar(monitor, 1)
        assert var.add(5) == 6
        assert len(monitor.trace) == 2
        assert var.read() == 6

    def test_peek_is_invisible(self):
        monitor = Monitor(record_trace=True)
        var = SharedVar(monitor, 3)
        assert var.peek() == 3
        assert len(monitor.trace) == 0

    def test_no_events_when_disabled(self):
        monitor = Monitor()
        var = SharedVar(monitor, 0)
        var.write(1)
        assert var.read() == 1
        assert monitor.events_emitted == 0

    def test_auto_naming_is_unique(self):
        monitor = Monitor()
        a, b = SharedVar(monitor), SharedVar(monitor)
        assert a.location != b.location

    def test_preemption_point_offered(self):
        monitor = Monitor()
        calls = []
        monitor.bind_preempt(lambda: calls.append(1))
        var = SharedVar(monitor, 0)
        var.read()
        var.write(1)
        assert len(calls) == 2


class TestMonitoredLock:
    def test_acquire_release_events(self):
        monitor = Monitor(record_trace=True)
        lock = MonitoredLock(monitor, name="L")
        with lock:
            pass
        kinds = [event.kind for event in monitor.trace]
        assert kinds == [EventKind.ACQUIRE, EventKind.RELEASE]
        assert monitor.trace[0].lock == "L"

    def test_mutual_exclusion_without_scheduler(self):
        monitor = Monitor()
        lock = MonitoredLock(monitor)
        lock.acquire()
        assert not lock._os_lock.acquire(blocking=False)
        lock.release()
        assert lock._os_lock.acquire(blocking=False)
        lock._os_lock.release()

    def test_lock_ids_unique(self):
        monitor = Monitor()
        assert MonitoredLock(monitor).lock_id != MonitoredLock(monitor).lock_id

    def test_repr(self):
        monitor = Monitor()
        assert "L9" in repr(MonitoredLock(monitor, name="L9"))
