"""Hypothesis property tests for the formula layer.

Random structural formulas pin the algebraic contracts the rest of the
pipeline leans on: the printer and parser are exact inverses, constant
folding never changes meaning, side-swapping is an involution, and side
erasure is idempotent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import NIL
from repro.logic.formulas import (FALSE, TRUE, And, Atom, Const, Not, Or,
                                  Side, Var, evaluate, normalize_sides,
                                  swap_sides, vars_of)
from repro.logic.parser import parse_formula
from repro.logic.simplify import simplify

# Terms drawn from the printable, re-parseable subset: sided variables
# (the parser's trailing-digit convention) and NIL/int/string constants.
# Bool constants are excluded on purpose — their repr is not grammar.
_vars = st.builds(Var,
                  st.sampled_from(["k", "v", "x", "delta"]),
                  st.sampled_from([Side.FIRST, Side.SECOND]))
_consts = st.builds(Const, st.sampled_from([NIL, 0, 1, 2, "a", "b"]))
_terms = st.one_of(_vars, _consts)

_atoms = st.builds(
    lambda pred, a, b: Atom(pred, (a, b)),
    st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
    _terms, _terms)

_leaves = st.one_of(st.just(TRUE), st.just(FALSE), _atoms)

formulas = st.recursive(
    _leaves,
    lambda sub: st.one_of(st.builds(Not, sub),
                          st.builds(And, sub, sub),
                          st.builds(Or, sub, sub)),
    max_leaves=12)


def _env(formula, first=1, second=2):
    """A total environment: side-1 vars ↦ first, side-2 vars ↦ second."""
    values = {Side.FIRST: first, Side.SECOND: second}

    def lookup(var):
        return values[var.side]
    return lookup


class TestParserRoundTrip:
    @given(formulas)
    @settings(max_examples=300)
    def test_parse_inverts_str(self, formula):
        assert parse_formula(str(formula)) == formula

    @given(formulas)
    def test_str_is_stable(self, formula):
        assert str(parse_formula(str(formula))) == str(formula)


class TestSimplify:
    @given(formulas, st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=300)
    def test_preserves_evaluation(self, formula, first, second):
        lookup = _env(formula, first, second)
        assert (evaluate(simplify(formula), lookup)
                == evaluate(formula, lookup))

    @given(formulas)
    def test_idempotent(self, formula):
        once = simplify(formula)
        assert simplify(once) == once

    @given(st.integers(0, 3), st.integers(0, 3))
    def test_constant_formulas_fold_to_singletons(self, first, second):
        assert simplify(And(TRUE, FALSE)) is FALSE
        assert simplify(Or(Not(TRUE), TRUE)) is TRUE


class TestSwapSides:
    @given(formulas)
    @settings(max_examples=300)
    def test_involution(self, formula):
        assert swap_sides(swap_sides(formula)) == formula

    @given(formulas, st.integers(0, 3), st.integers(0, 3))
    def test_swap_mirrors_environment(self, formula, first, second):
        assert (evaluate(swap_sides(formula), _env(formula, first, second))
                == evaluate(formula, _env(formula, second, first)))


class TestNormalizeSides:
    @given(formulas)
    @settings(max_examples=300)
    def test_idempotent(self, formula):
        once = normalize_sides(formula)
        assert normalize_sides(once) == once

    @given(formulas)
    def test_erases_every_side(self, formula):
        assert all(var.side is None
                   for var in vars_of(normalize_sides(formula)))

    @given(formulas)
    def test_swap_then_normalize_equals_normalize(self, formula):
        assert (normalize_sides(swap_sides(formula))
                == normalize_sides(formula))
