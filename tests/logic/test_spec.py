"""Commutativity specifications (Definition 4.1)."""

import pytest

from repro.core.errors import SpecificationError
from repro.core.events import NIL, Action
from repro.logic.formulas import TRUE, ne, var1, var2
from repro.logic.spec import CommutativitySpec, MethodSig
from repro.specs.dictionary import dictionary_spec


class TestMethodSig:
    def test_value_names_and_arity(self):
        sig = MethodSig("put", ("k", "v"), ("p",))
        assert sig.value_names == ("k", "v", "p")
        assert sig.arity == 3

    def test_value_index(self):
        sig = MethodSig("put", ("k", "v"), ("p",))
        assert sig.value_index("k") == 0
        assert sig.value_index("p") == 2
        with pytest.raises(SpecificationError):
            sig.value_index("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError):
            MethodSig("m", ("x", "x"))
        with pytest.raises(SpecificationError):
            MethodSig("m", ("x",), ("x",))

    def test_bind(self):
        sig = MethodSig("put", ("k", "v"), ("p",))
        env = sig.bind(Action("o", "put", ("a", 1), (NIL,)))
        assert env == {"k": "a", "v": 1, "p": NIL}

    def test_bind_arity_mismatch(self):
        sig = MethodSig("get", ("k",), ("v",))
        with pytest.raises(SpecificationError):
            sig.bind(Action("o", "get", ("k", "extra"), (1,)))

    def test_str(self):
        assert str(MethodSig("put", ("k", "v"), ("p",))) == "put(k, v)/p"


class TestBuilding:
    def test_fluent_construction(self):
        spec = (CommutativitySpec("pair")
                .method("a", params=("x",))
                .method("b", params=("y",))
                .pair("a", "b", "x1 != y2")
                .default_true())
        assert spec.is_complete()

    def test_duplicate_method_rejected(self):
        spec = CommutativitySpec("x").method("m")
        with pytest.raises(SpecificationError):
            spec.method("m")

    def test_pair_of_unknown_method_rejected(self):
        spec = CommutativitySpec("x").method("m")
        with pytest.raises(SpecificationError):
            spec.pair("m", "ghost", "true")

    def test_duplicate_pair_rejected(self):
        spec = (CommutativitySpec("x").method("a", params=("x",))
                .method("b", params=("x",)))
        spec.pair("a", "b", "true")
        with pytest.raises(SpecificationError):
            spec.pair("b", "a", "false")

    def test_foreign_variable_rejected(self):
        spec = CommutativitySpec("x").method("a", params=("x",))
        with pytest.raises(SpecificationError):
            spec.pair("a", "a", "y1 != y2")

    def test_sideless_variable_rejected(self):
        from repro.logic.formulas import Var, Atom
        spec = CommutativitySpec("x").method("a", params=("x",))
        with pytest.raises(SpecificationError):
            spec.pair("a", "a", Atom("ne", (Var("x"), Var("x"))))

    def test_asymmetric_self_pair_rejected(self):
        spec = CommutativitySpec("x").method("a", params=("x",),
                                             returns=("r",))
        with pytest.raises(SpecificationError) as info:
            spec.pair("a", "a", "x1 == 0")   # mentions only side 1
        assert "not symmetric" in str(info.value)

    def test_defaults_fill_missing_pairs(self):
        spec = (CommutativitySpec("x").method("a").method("b"))
        spec.pair("a", "a", "false")
        assert not spec.is_complete()
        spec.default_true()
        assert spec.is_complete()
        assert spec.formula_for("a", "b") == TRUE

    def test_default_false_is_conservative(self):
        spec = CommutativitySpec("x").method("a").default_false()
        a = Action("o", "a", (), ())
        assert not spec.commutes(a, a)


class TestLookupAndEvaluation:
    def setup_method(self):
        self.spec = dictionary_spec()

    def test_formula_for_swaps_orientation(self):
        forward = self.spec.formula_for("put", "get")
        backward = self.spec.formula_for("get", "put")
        assert forward != backward
        # get's variables now live on side 1 of the swapped formula.
        from repro.logic.formulas import vars_of, Side
        sides_of_k_get = {v.side for v in vars_of(backward)
                          if v.name == "k"}
        assert Side.FIRST in sides_of_k_get

    def test_missing_pair_raises(self):
        spec = CommutativitySpec("x").method("a").method("b")
        with pytest.raises(SpecificationError):
            spec.formula_for("a", "b")

    def test_commutes_on_paper_examples(self):
        put_fresh = Action("o", "put", ("a.com", "c1"), (NIL,))
        put_over = Action("o", "put", ("a.com", "c2"), ("c1",))
        put_other = Action("o", "put", ("b.com", "c3"), (NIL,))
        get_same = Action("o", "get", ("a.com",), ("c1",))
        size = Action("o", "size", (), (1,))
        assert not self.spec.commutes(put_fresh, put_over)
        assert self.spec.commutes(put_fresh, put_other)
        assert not self.spec.commutes(put_fresh, get_same)
        assert not self.spec.commutes(put_fresh, size)   # resizes
        assert not self.spec.commutes(put_over, get_same)
        assert self.spec.commutes(put_over, size)        # no resize
        assert self.spec.commutes(get_same, size)
        assert self.spec.commutes(size, size)

    def test_commutes_is_symmetric_on_samples(self):
        actions = [Action("o", "put", ("k", v), (p,))
                   for v in (NIL, 1) for p in (NIL, 1, 2)]
        actions += [Action("o", "get", ("k",), (NIL,)),
                    Action("o", "size", (), (0,))]
        for a in actions:
            for b in actions:
                assert self.spec.commutes(a, b) == self.spec.commutes(b, a)

    def test_different_objects_always_commute(self):
        a = Action("o1", "put", ("k", 1), (NIL,))
        b = Action("o2", "put", ("k", 2), (NIL,))
        assert self.spec.commutes(a, b)

    def test_action_builder_validates_arity(self):
        action = self.spec.action("o", "put", "k", 1, returns=NIL)
        assert action.returns == (NIL,)
        with pytest.raises(SpecificationError):
            self.spec.action("o", "put", "k", returns=NIL)

    def test_is_ecl(self):
        assert self.spec.is_ecl()

    def test_pairs_iteration(self):
        pairs = {(m1, m2) for m1, m2, _ in self.spec.pairs()}
        assert ("put", "put") in pairs
        assert len(pairs) == 6  # complete over 3 methods

    def test_repr(self):
        assert "dictionary" in repr(self.spec)
