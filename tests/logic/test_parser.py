"""The textual formula syntax."""

import pytest

from repro.core.errors import ParseError
from repro.core.events import NIL
from repro.logic.formulas import (FALSE, TRUE, And, Atom, Const, Not, Or,
                                  Var, eq, ne, var1, var2)
from repro.logic.parser import default_resolver, parse_formula


class TestTerms:
    def test_side_suffix_convention(self):
        formula = parse_formula("k1 != k2")
        assert formula == ne(var1("k"), var2("k"))

    def test_nil_and_none(self):
        formula = parse_formula("v1 == nil & p1 == none")
        assert formula == And(eq(var1("v"), Const(NIL)),
                              eq(var1("p"), Const(None)))

    def test_numbers(self):
        assert parse_formula("d1 == 0") == eq(var1("d"), Const(0))
        assert parse_formula("d1 < -2") == Atom("lt", (var1("d"), Const(-2)))
        assert parse_formula("d1 == 1.5") == eq(var1("d"), Const(1.5))

    def test_strings(self):
        assert parse_formula("k1 == 'a.com'") == eq(var1("k"),
                                                    Const("a.com"))
        assert parse_formula('k1 == "x y"') == eq(var1("k"), Const("x y"))

    def test_multi_character_names(self):
        formula = parse_formula("key1 != key2")
        assert formula == ne(var1("key"), var2("key"))

    def test_missing_side_suffix_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("k != k2")

    def test_custom_resolver(self):
        resolve = lambda name: Var(name, None)
        formula = parse_formula("k == 3", resolve=resolve)
        assert formula == eq(Var("k"), Const(3))


class TestOperators:
    def test_all_relops(self):
        for text, pred in (("==", "eq"), ("=", "eq"), ("!=", "ne"),
                           ("<", "lt"), ("<=", "le"), (">", "gt"),
                           (">=", "ge"), ("≠", "ne"), ("≤", "le"),
                           ("≥", "ge")):
            formula = parse_formula(f"x1 {text} y2")
            assert isinstance(formula, Atom)
            assert formula.pred == pred

    def test_connective_spellings(self):
        for text in ("a1 == 1 and b2 == 2", "a1 == 1 & b2 == 2",
                     "a1 == 1 && b2 == 2", "a1 == 1 ∧ b2 == 2"):
            assert isinstance(parse_formula(text), And)
        for text in ("a1 == 1 or b2 == 2", "a1 == 1 | b2 == 2",
                     "a1 == 1 || b2 == 2", "a1 == 1 ∨ b2 == 2"):
            assert isinstance(parse_formula(text), Or)

    def test_negation_spellings(self):
        for text in ("not a1 == 1", "! a1 == 1", "¬ a1 == 1"):
            assert isinstance(parse_formula(text), Not)

    def test_constants(self):
        assert parse_formula("true") == TRUE
        assert parse_formula("false") == FALSE


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        formula = parse_formula("a1 == 1 | b1 == 2 & c2 == 3")
        assert isinstance(formula, Or)
        assert isinstance(formula.right, And)

    def test_parentheses_override(self):
        formula = parse_formula("(a1 == 1 | b1 == 2) & c2 == 3")
        assert isinstance(formula, And)
        assert isinstance(formula.left, Or)

    def test_left_associative_chains(self):
        formula = parse_formula("a1 == 1 & b1 == 2 & c1 == 3")
        assert isinstance(formula, And)
        assert isinstance(formula.left, And)

    def test_paper_dictionary_formula(self):
        formula = parse_formula("k1 != k2 | (v1 == p1 & v2 == p2)")
        assert formula == Or(ne(var1("k"), var2("k")),
                             And(eq(var1("v"), var1("p")),
                                 eq(var2("v"), var2("p"))))


class TestErrors:
    @pytest.mark.parametrize("text", [
        "", "k1 !=", "k1 != k2 |", "k1 ! = k2", "(k1 != k2",
        "k1 != k2)", "k1 k2", "@", "k1 == == k2", "1 2",
    ])
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse_formula(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_formula("k1 != @")
        assert info.value.position >= 0

    def test_default_resolver_direct(self):
        assert default_resolver("nil") == Const(NIL)
        assert default_resolver("v1") == var1("v")
        with pytest.raises(ParseError):
            default_resolver("unsuffixed")


class TestRoundTrips:
    @pytest.mark.parametrize("text", [
        "k1 != k2 | (v1 == p1 & v2 == p2)",
        "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)",
        "d1 == 0",
        "x1 != x2 | (b1 == 0 & b2 == 0)",
        "not (a1 == 1) & true",
    ])
    def test_parse_of_str_is_stable(self, text):
        formula = parse_formula(text)
        # The pretty-printer uses math glyphs the parser also accepts.
        assert parse_formula(str(formula)) == formula
