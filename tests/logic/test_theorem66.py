"""Theorem 6.6: translated access points have bounded conflict degree.

Every schema of a translated representation conflicts with a bounded
number of schemas — which makes ``Co(pt)`` finite for concrete points
(value conflicts require equal values) and enables the detector's Θ(1)
ENUMERATE strategy.  We check boundedness for every bundled spec, raw and
optimized, and confirm the degree is small relative to the trace-size-
dependent behaviour of the naive representation.
"""

import pytest

from repro.core.access_points import NaiveRepresentation
from repro.logic.translate import (build_raw_translation,
                                   build_representation, translate)
from repro.specs import bundled_objects

KINDS = sorted(bundled_objects())


@pytest.mark.parametrize("kind", KINDS)
def test_translated_representation_is_bounded(kind):
    rep = translate(bundled_objects()[kind].spec())
    assert rep.bounded


@pytest.mark.parametrize("kind", KINDS)
def test_raw_translation_is_bounded_too(kind):
    rep = build_representation(
        build_raw_translation(bundled_objects()[kind].spec()))
    assert rep.bounded


@pytest.mark.parametrize("kind", KINDS)
def test_degree_bound_holds(kind):
    """The bound depends on the specification size, not the trace.

    All bundled specs are small; their β spaces have ≤ 2^3 assignments per
    method, so degrees stay well under (methods × β × conjuncts).
    """
    spec = bundled_objects()[kind].spec()
    raw = build_raw_translation(spec)
    methods = len(spec.methods)
    max_betas = max((2 ** len(raw.atoms_by_method[m])
                     for m in spec.methods), default=1)
    rep = build_representation(raw)
    assert rep.max_conflict_degree() <= methods * max_betas * 3


@pytest.mark.parametrize("kind", KINDS)
def test_optimization_keeps_degree_small(kind):
    rep = translate(bundled_objects()[kind].spec())
    assert rep.max_conflict_degree() <= 8


def test_dictionary_fig7_degree_is_two(when_optimized=True):
    """Fig. 7(c): w conflicts with {r, w}; everything else with one point."""
    rep = translate(bundled_objects()["dictionary"].spec())
    assert rep.max_conflict_degree() == 2


def test_naive_representation_contrast():
    spec = bundled_objects()["dictionary"].spec()
    naive = NaiveRepresentation("dictionary", spec.commutes)
    assert not naive.bounded
