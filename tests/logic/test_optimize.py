"""The Appendix A.3 optimization passes."""

import pytest

from repro.core.access_points import representations_equivalent
from repro.core.events import NIL, Action
from repro.logic.optimize import (merge_congruent, optimize_translation,
                                  remove_conflict_free)
from repro.logic.translate import (DS, build_raw_translation,
                                   build_representation, translate)
from repro.specs.dictionary import dictionary_representation, dictionary_spec
from repro.specs.set_spec import set_spec

from tests.support import sample_actions


@pytest.fixture()
def raw():
    return build_raw_translation(dictionary_spec())


class TestCleanup:
    def test_removes_conflict_free_schemas(self, raw):
        removed = remove_conflict_free(raw)
        assert removed > 0
        assert all(raw.conflicts.get(s) for s in raw.schemas)

    def test_idempotent(self, raw):
        remove_conflict_free(raw)
        assert remove_conflict_free(raw) == 0

    def test_value_slots_of_get_v_and_put_v_p_removed(self, raw):
        remove_conflict_free(raw)
        # Slots 1 (v) and 2 (p) of put never appear in any conjunct.
        assert not any(s.method == "put" and s.slot in (1, 2)
                       for s in raw.schemas)
        # get's return slot likewise.
        assert not any(s.method == "get" and s.slot == 1
                       for s in raw.schemas)


class TestMerge:
    def test_reaches_fig7_size(self, raw):
        remove_conflict_free(raw)
        merge_congruent(raw)
        # Fig. 7: r, w, size, resize.
        assert raw.schema_count() == 4

    def test_merge_unifies_get_slot_with_put_reader_slot(self, raw):
        """The appendix's *replacement*: o.get:∅:1:v ≡ o:r:v."""
        optimize_translation(raw)
        rep = build_representation(raw)
        get_pt = rep.points_of(Action("o", "get", ("k",), (NIL,)))[0]
        noop_put_pt = rep.points_of(Action("o", "put", ("k", 5), (5,)))[0]
        assert get_pt == noop_put_pt

    def test_merged_conflicts_match_fig7(self, raw):
        optimize_translation(raw)
        rep = build_representation(raw)
        writer = rep.points_of(Action("o", "put", ("k", 5), (6,)))[0]
        reader = rep.points_of(Action("o", "get", ("k",), (5,)))[0]
        size_pt = rep.points_of(Action("o", "size", (), (1,)))[0]
        insert_pts = rep.points_of(Action("o", "put", ("k", 5), (NIL,)))
        resize_pt = next(pt for pt in insert_pts if pt.value is None)
        assert rep.conflicts(writer, writer)        # w × w
        assert rep.conflicts(writer, reader)        # w × r
        assert not rep.conflicts(reader, reader)    # r × r: no
        assert rep.conflicts(size_pt, resize_pt)    # size × resize
        assert not rep.conflicts(size_pt, size_pt)  # size × size: no

    def test_merge_terminates_and_is_stable(self, raw):
        optimize_translation(raw)
        before = raw.schema_count()
        optimize_translation(raw)
        assert raw.schema_count() == before


class TestEquivalencePreservation:
    """Each pass preserves Definition 4.5 equivalence with the spec."""

    def rep_commutes(self, rep, a, b):
        pa, pb = rep.points_of(a), rep.points_of(b)
        return not any(rep.conflicts(x, y) for x in pa for y in pb)

    @pytest.mark.parametrize("passes", [
        (),
        (remove_conflict_free,),
        (remove_conflict_free, merge_congruent),
        (optimize_translation,),
    ])
    def test_dictionary_pipeline(self, passes):
        spec = dictionary_spec()
        raw = build_raw_translation(spec)
        for optimization in passes:
            optimization(raw)
        rep = build_representation(raw)
        for a in sample_actions("dictionary", count=30):
            for b in sample_actions("dictionary", count=30, seed=77):
                assert self.rep_commutes(rep, a, b) == spec.commutes(a, b)

    def test_set_spec_optimization_equivalent(self):
        spec = set_spec()
        optimized = translate(spec, optimize=True)
        raw = translate(spec, optimize=False)
        actions = sample_actions("set", count=40)
        assert representations_equivalent(optimized, raw, actions) is None

    def test_optimized_matches_handwritten_fig7(self):
        translated = translate(dictionary_spec())
        hand = dictionary_representation()
        actions = sample_actions("dictionary", count=50)
        assert representations_equivalent(translated, hand, actions) is None


class TestDegreeReduction:
    def test_optimization_reduces_schema_count_for_all_bundled(self):
        from repro.specs import bundled_objects
        for kind, bundled in bundled_objects().items():
            spec = bundled.spec()
            raw = build_raw_translation(spec)
            before = raw.schema_count()
            optimize_translation(raw)
            assert raw.schema_count() <= before, kind

    def test_optimization_never_raises_max_degree(self):
        raw = build_raw_translation(dictionary_spec())
        before = raw.max_degree()
        optimize_translation(raw)
        assert raw.max_degree() <= before
