"""Translator validation over *random* ECL specifications.

The bundled specs exercise a handful of formula shapes; this suite
generates arbitrary formulas from the ECL grammar (Definition 6.3),
assembles them into two-method specifications (self-pair formulas are
symmetrized as ``ϕ ∧ swap(ϕ)``, which stays within ECL), translates — raw
and optimized — and checks Definition 4.5 equivalence against direct
formula evaluation on random actions.

This is Theorem 6.5 tested at the grammar level rather than on curated
examples, and it doubles as a fuzzer for the optimizer (any unsound merge
or over-eager cleanup shows up as a verdict flip).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import NIL, Action
from repro.logic.formulas import (FALSE, TRUE, And, Atom, Const, Not, Or,
                                  Side, Var, swap_sides)
from repro.logic.fragments import is_ecl
from repro.logic.spec import CommutativitySpec
from repro.logic.translate import translate

# Two fixed method shapes; values drawn from a tiny collision-rich domain.
M1_VALUES = ("x", "y", "r")     # a(x, y)/r
M2_VALUES = ("u", "s")          # b(u)/s
DOMAIN = (NIL, 0, 1)

values = st.sampled_from(DOMAIN)


def var_of(side):
    names = M1_VALUES if side is Side.FIRST else M2_VALUES
    return st.sampled_from(names).map(lambda name: Var(name, side))


def one_sided_atom(side):
    """An LB atom over a single side's variables."""
    term = st.one_of(var_of(side), values.map(Const))
    pred = st.sampled_from(["eq", "ne", "lt", "le"])
    return st.builds(lambda p, a, b: Atom(p, (a, b)), pred, var_of(side),
                     term)


def ls_atom():
    """A cross-side disequality ``x1 ≠ y2``."""
    return st.builds(lambda a, b: Atom("ne", (a, b)),
                     var_of(Side.FIRST), var_of(Side.SECOND))


def lb_formulas(depth=2):
    base = st.one_of(one_sided_atom(Side.FIRST),
                     one_sided_atom(Side.SECOND),
                     st.just(TRUE), st.just(FALSE))
    if depth == 0:
        return base
    sub = lb_formulas(depth - 1)
    return st.one_of(
        base,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
    )


def simple_formulas(depth=1):
    base = st.one_of(ls_atom(), st.just(TRUE), st.just(FALSE))
    if depth == 0:
        return base
    sub = simple_formulas(depth - 1)
    return st.one_of(base, st.builds(And, sub, sub))


def ecl_formulas(depth=2):
    base = st.one_of(simple_formulas(), lb_formulas(1))
    if depth == 0:
        return base
    sub = ecl_formulas(depth - 1)
    lb = lb_formulas(1)
    return st.one_of(
        base,
        st.builds(And, sub, sub),
        st.builds(Or, sub, lb),
        st.builds(Or, lb, sub),
    )


@st.composite
def random_specs(draw):
    """A complete two-method ECL specification."""
    spec = CommutativitySpec("fuzz")
    spec.method("a", params=("x", "y"), returns=("r",))
    spec.method("b", params=("u",), returns=("s",))

    # Self pairs: symmetrize ϕ ∧ swap(ϕ); for (a, a) the side-2 variables
    # must use a's names, so draw a formula over (V1=a, V2=a).
    phi_aa = draw(_formula_over(("x", "y", "r"), ("x", "y", "r")))
    spec.pair("a", "a", And(phi_aa, swap_sides(phi_aa)))
    phi_bb = draw(_formula_over(("u", "s"), ("u", "s")))
    spec.pair("b", "b", And(phi_bb, swap_sides(phi_bb)))
    phi_ab = draw(_formula_over(("x", "y", "r"), ("u", "s")))
    spec.pair("a", "b", phi_ab)
    return spec


def _formula_over(names1, names2, depth=2):
    def v1():
        return st.sampled_from(names1).map(lambda n: Var(n, Side.FIRST))

    def v2():
        return st.sampled_from(names2).map(lambda n: Var(n, Side.SECOND))

    def atom_one_sided(var_strategy):
        term = st.one_of(var_strategy(), values.map(Const))
        pred = st.sampled_from(["eq", "ne", "lt", "le"])
        return st.builds(lambda p, a, b: Atom(p, (a, b)), pred,
                         var_strategy(), term)

    ls = st.builds(lambda a, b: Atom("ne", (a, b)), v1(), v2())
    lb_base = st.one_of(atom_one_sided(v1), atom_one_sided(v2),
                        st.just(TRUE), st.just(FALSE))
    lb = st.one_of(lb_base, st.builds(Not, lb_base),
                   st.builds(And, lb_base, lb_base),
                   st.builds(Or, lb_base, lb_base))
    simple = st.one_of(ls, st.just(TRUE), st.builds(And, ls, ls))
    base = st.one_of(simple, lb)

    def extend(sub):
        return st.one_of(
            base,
            st.builds(And, sub, sub),
            st.builds(Or, sub, lb),
            st.builds(Or, lb, sub),
        )

    formula = base
    for _ in range(depth):
        formula = extend(formula)
    return formula


def random_actions(count=10, seed_values=DOMAIN):
    actions = []
    for x in seed_values:
        for u in seed_values:
            actions.append(Action("o", "a", (x, 0), (u,)))
            actions.append(Action("o", "b", (x,), (u,)))
    return actions[: count * 4]


def rep_commutes(rep, a, b):
    pa, pb = rep.points_of(a), rep.points_of(b)
    return not any(rep.conflicts(x, y) for x in pa for y in pb)


@given(random_specs())
@settings(max_examples=40, deadline=None)
def test_every_generated_formula_is_ecl(spec):
    assert spec.is_ecl()


@given(random_specs())
@settings(max_examples=30, deadline=None)
def test_definition_45_on_random_specs_optimized(spec):
    rep = translate(spec, optimize=True)
    actions = random_actions()
    for a in actions:
        for b in actions:
            assert rep_commutes(rep, a, b) == spec.commutes(a, b), \
                (str(spec.formula_for(a.method, b.method)), str(a), str(b))


@given(random_specs())
@settings(max_examples=15, deadline=None)
def test_definition_45_on_random_specs_raw(spec):
    rep = translate(spec, optimize=False)
    actions = random_actions(count=6)
    for a in actions:
        for b in actions:
            assert rep_commutes(rep, a, b) == spec.commutes(a, b)


@given(random_specs())
@settings(max_examples=20, deadline=None)
def test_translated_representation_bounded_on_random_specs(spec):
    rep = translate(spec)
    assert rep.bounded
