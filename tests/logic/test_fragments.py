"""SIMPLE / LB / ECL fragment classification (Section 6.1)."""

import pytest

from repro.core.errors import FragmentError
from repro.logic.formulas import (FALSE, TRUE, And, Atom, Const, Not, Or,
                                  eq, lt, ne, var1, var2)
from repro.logic.fragments import (atom_side, canonical_lb_atom, is_ecl,
                                   is_lb, is_lb_atom, is_ls_atom, is_simple,
                                   lb_atoms, ls_atoms, require_ecl)
from repro.logic.parser import parse_formula
from repro.logic.formulas import Side


class TestAtomClassification:
    def test_cross_side_disequality_is_ls(self):
        assert is_ls_atom(ne(var1("k"), var2("k")))
        assert is_ls_atom(ne(var2("k"), var1("j")))  # either orientation

    def test_equality_is_not_ls(self):
        assert not is_ls_atom(eq(var1("k"), var2("k")))

    def test_same_side_disequality_is_not_ls(self):
        assert not is_ls_atom(ne(var1("k"), var1("j")))

    def test_var_const_disequality_is_not_ls(self):
        assert not is_ls_atom(ne(var1("v"), Const(0)))

    def test_lb_atom_single_side(self):
        assert is_lb_atom(eq(var1("v"), var1("p")))
        assert is_lb_atom(lt(Const(0), var2("z")))
        assert is_lb_atom(eq(Const(1), Const(1)))  # ground

    def test_lb_atom_rejects_mixed_sides(self):
        assert not is_lb_atom(lt(var1("x"), var2("z")))

    def test_atom_side(self):
        assert atom_side(eq(var1("v"), var1("p"))) is Side.FIRST
        assert atom_side(eq(var2("v"), Const(0))) is Side.SECOND
        assert atom_side(eq(Const(1), Const(2))) is None
        assert atom_side(eq(var1("v"), var2("v"))) is None


class TestSimple:
    def test_paper_grammar_examples(self):
        assert is_simple(TRUE)
        assert is_simple(FALSE)
        assert is_simple(ne(var1("k"), var2("k")))
        assert is_simple(And(ne(var1("k"), var2("k")),
                             ne(var1("v"), var2("v"))))

    def test_disjunction_not_simple(self):
        assert not is_simple(Or(ne(var1("k"), var2("k")), TRUE))

    def test_equality_not_simple(self):
        # The paper: ϕ_put_put is not SIMPLE because it compares v1 = p1.
        assert not is_simple(parse_formula("v1 == p1"))

    def test_negation_not_simple(self):
        assert not is_simple(Not(ne(var1("k"), var2("k"))))


class TestLb:
    def test_one_sided_boolean_combinations(self):
        # The paper's example: x < y ∧ 0 < z with x,y ∈ V1, z ∈ V2.
        formula = And(lt(var1("x"), var1("y")), lt(Const(0), var2("z")))
        assert is_lb(formula)

    def test_mixed_atom_rejected(self):
        assert not is_lb(lt(var1("x"), var2("z")))

    def test_negation_allowed(self):
        assert is_lb(Not(eq(var1("v"), Const(0))))

    def test_ls_atom_is_not_lb(self):
        assert not is_lb(ne(var1("k"), var2("k")))

    def test_or_allowed(self):
        assert is_lb(parse_formula(
            "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)"))


class TestEcl:
    @pytest.mark.parametrize("text", [
        "k1 != k2 | (v1 == p1 & v2 == p2)",            # ϕ_put_put
        "k1 != k2 | v1 == p1",                         # ϕ_put_get
        "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)",  # ϕ_put_size
        "true",
        "false",
        "x1 != x2 | (b1 == 0 & b2 == 0)",
        "k1 != k2 & v1 != v2",
        "d1 <= 0",
    ])
    def test_paper_and_library_formulas_are_ecl(self, text):
        assert is_ecl(parse_formula(text))

    def test_cross_side_equality_not_ecl(self):
        assert not is_ecl(parse_formula("k1 == k2"))

    def test_cross_side_order_not_ecl(self):
        assert not is_ecl(parse_formula("x1 < y2"))

    def test_disjunction_of_two_ls_not_ecl(self):
        # X ∨ X is not derivable: Or requires an LB side.
        formula = Or(ne(var1("k"), var2("k")), ne(var1("v"), var2("v")))
        assert not is_ecl(formula)

    def test_or_accepts_lb_on_either_side(self):
        ls = ne(var1("k"), var2("k"))
        lb = eq(var1("v"), var1("p"))
        assert is_ecl(Or(ls, lb))
        assert is_ecl(Or(lb, ls))

    def test_conjunction_of_ecl_is_ecl(self):
        left = parse_formula("k1 != k2 | v1 == p1")
        right = parse_formula("v2 == nil")
        assert is_ecl(And(left, right))

    def test_require_ecl_raises_outside(self):
        with pytest.raises(FragmentError):
            require_ecl(parse_formula("k1 == k2"), context="test")

    def test_require_ecl_passes_inside(self):
        require_ecl(parse_formula("k1 != k2"))


class TestAtomCollection:
    def test_lb_atoms_canonicalize_ne(self):
        formula = parse_formula(
            "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)")
        atoms = lb_atoms(formula)
        # v ≠ nil collapses onto the atom v = nil.
        assert len(atoms) == 2

    def test_lb_atoms_exclude_ls(self):
        formula = parse_formula("k1 != k2 | v1 == p1")
        atoms = lb_atoms(formula)
        assert len(atoms) == 1
        assert atoms[0].pred == "eq"

    def test_lb_atoms_rejects_non_ecl(self):
        with pytest.raises(FragmentError):
            lb_atoms(parse_formula("x1 < y2"))

    def test_ls_atoms(self):
        formula = parse_formula("k1 != k2 & v1 != v2 & p1 == p1")
        assert len(ls_atoms(formula)) == 2

    def test_canonical_lb_atom(self):
        atom, positive = canonical_lb_atom(ne(var1("v"), Const(0)))
        assert atom.pred == "eq"
        assert not positive
        atom2, positive2 = canonical_lb_atom(eq(var1("v"), Const(0)))
        assert positive2
        assert atom2.pred == "eq"

    def test_order_atoms_not_canonicalized(self):
        # gt is not the exact complement of le under nil-guarded semantics.
        atom, positive = canonical_lb_atom(
            Atom("gt", (var1("d"), Const(0))))
        assert atom.pred == "gt"
        assert positive
