"""Executable semantics, commutativity checking and soundness validation."""

import random

import pytest

from repro.core.events import NIL, Action
from repro.logic.semantics import (SoundnessCounterexample, apply_action,
                                   check_soundness, commute_at,
                                   commute_on_states, final_state)
from repro.logic.spec import CommutativitySpec
from repro.specs import bundled_objects
from repro.specs.dictionary import DictionarySemantics
from repro.verify import verifiable_objects, verify_spec

KINDS = sorted(bundled_objects())


class TestDictionaryEffects:
    """Fig. 5's method effects."""

    def setup_method(self):
        self.sem = DictionarySemantics()

    def test_put_returns_previous(self):
        state, returns = self.sem.apply((), "put", ("a", 1))
        assert returns == (NIL,)
        state, returns = self.sem.apply(state, "put", ("a", 2))
        assert returns == (1,)

    def test_put_nil_erases(self):
        state, _ = self.sem.apply((), "put", ("a", 1))
        state, returns = self.sem.apply(state, "put", ("a", NIL))
        assert returns == (1,)
        assert state == ()

    def test_get_is_pure(self):
        state, _ = self.sem.apply((), "put", ("a", 1))
        after, returns = self.sem.apply(state, "get", ("a",))
        assert after == state
        assert returns == (1,)
        _, absent = self.sem.apply(state, "get", ("zz",))
        assert absent == (NIL,)

    def test_size_counts_non_nil(self):
        state = ()
        for key in ("a", "b"):
            state, _ = self.sem.apply(state, "put", (key, 1))
        _, returns = self.sem.apply(state, "size", ())
        assert returns == (2,)

    def test_states_are_hashable_values(self):
        state, _ = self.sem.apply((), "put", ("a", 1))
        assert hash(state) == hash((("a", 1),))

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            self.sem.apply((), "frobnicate", ())


class TestApplyAction:
    def setup_method(self):
        self.sem = DictionarySemantics()

    def test_defined_when_returns_match(self):
        action = Action("o", "put", ("a", 1), (NIL,))
        assert apply_action(self.sem, (), action) == (("a", 1),)

    def test_undefined_when_returns_mismatch(self):
        action = Action("o", "put", ("a", 1), ("wrong",))
        assert apply_action(self.sem, (), action) is None

    def test_size_partiality(self):
        # Lo.size()/nM is defined only on states of size n (Section 3.1).
        action = Action("o", "size", (), (1,))
        assert apply_action(self.sem, (), action) is None
        assert apply_action(self.sem, (("a", 1),), action) == (("a", 1),)


class TestCommuteAt:
    def setup_method(self):
        self.sem = DictionarySemantics()

    def test_different_keys_commute(self):
        a = Action("o", "put", ("a", 1), (NIL,))
        b = Action("o", "put", ("b", 2), (NIL,))
        assert commute_at(self.sem, (), a, b)

    def test_same_key_inserts_do_not_commute(self):
        a = Action("o", "put", ("a", 1), (NIL,))
        b = Action("o", "put", ("a", 2), (1,))
        assert not commute_at(self.sem, (), a, b)

    def test_both_orders_undefined_counts_as_commuting(self):
        a = Action("o", "size", (), (5,))
        b = Action("o", "size", (), (7,))
        assert commute_at(self.sem, (), a, b)

    def test_commute_on_states(self):
        a = Action("o", "get", ("a",), (NIL,))
        b = Action("o", "get", ("b",), (NIL,))
        assert commute_on_states(self.sem, [()], a, b)


class TestFinalState:
    def test_sequence_application(self):
        sem = DictionarySemantics()
        actions = [Action("o", "put", ("a", 1), (NIL,)),
                   Action("o", "put", ("a", 2), (1,))]
        assert final_state(sem, (), actions) == (("a", 2),)

    def test_none_on_undefined_step(self):
        sem = DictionarySemantics()
        actions = [Action("o", "put", ("a", 1), ("bogus",))]
        assert final_state(sem, (), actions) is None


class TestSoundness:
    @pytest.mark.parametrize("kind", KINDS)
    def test_all_bundled_specs_verify_exhaustively(self, kind):
        """Promoted from a 120-sample spot-check: every bundled spec is
        sound and precise over its whole bounded universe."""
        entry = verifiable_objects()[kind]
        verdict = verify_spec(entry.spec(), entry.semantics(),
                              entry.domain(), entry.waiver_map())
        assert verdict.ok, "\n".join(
            str(ce) for ce in verdict.counterexamples)

    def test_unsound_spec_is_caught(self):
        """A deliberately wrong dictionary spec claiming all puts commute."""
        spec = (CommutativitySpec("broken")
                .method("put", params=("k", "v"), returns=("p",))
                .method("get", params=("k",), returns=("v",))
                .method("size", returns=("r",))
                .default_true())
        witness = check_soundness(spec, DictionarySemantics(), samples=200)
        assert isinstance(witness, SoundnessCounterexample)
        assert "commute" in str(witness)

    def test_witness_carries_its_seed(self):
        """Randomized failures must be replayable: the counterexample
        message names the seed that produced it."""
        spec = (CommutativitySpec("broken")
                .method("put", params=("k", "v"), returns=("p",))
                .method("get", params=("k",), returns=("v",))
                .method("size", returns=("r",))
                .default_true())
        witness = check_soundness(spec, DictionarySemantics(), samples=200,
                                  seed=7)
        assert witness.seed == 7
        assert "[seed=7]" in str(witness)
        replay = check_soundness(spec, DictionarySemantics(), samples=200,
                                 seed=witness.seed)
        assert replay == witness

    def test_soundness_check_is_deterministic(self):
        bundled = bundled_objects()["dictionary"]
        first = check_soundness(bundled.spec(), bundled.semantics(),
                                samples=50, seed=9)
        second = check_soundness(bundled.spec(), bundled.semantics(),
                                 samples=50, seed=9)
        assert first == second


class TestSampling:
    @pytest.mark.parametrize("kind", KINDS)
    def test_sample_invocations_are_applicable(self, kind):
        bundled = bundled_objects()[kind]
        sem = bundled.semantics()
        rng = random.Random(4)
        state = sem.initial_state()
        for _ in range(50):
            method, args = sem.sample_invocation(rng)
            state, returns = sem.apply(state, method, args)
            assert isinstance(returns, tuple)

    @pytest.mark.parametrize("kind", KINDS)
    def test_sample_states_start_with_initial(self, kind):
        bundled = bundled_objects()[kind]
        sem = bundled.semantics()
        states = sem.sample_states(random.Random(0), 5)
        assert states[0] == sem.initial_state()
        assert len(states) == 5
