"""Theorem 6.5: the translated representation is equivalent to Φ.

Definition 4.5: ``(ηo(a) × ηo(b)) ∩ Co = ∅ ⟺ ϕ(a, b)``.  We check it for
every bundled ECL specification over realizable random action pairs, both
raw and optimized, plus hypothesis-driven checks on the dictionary over
arbitrary (not necessarily realizable) actions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import NIL, Action
from repro.logic.translate import translate
from repro.specs import bundled_objects

from tests.support import sample_actions

KINDS = sorted(bundled_objects())


def rep_commutes(rep, a, b):
    pa, pb = rep.points_of(a), rep.points_of(b)
    return not any(rep.conflicts(x, y) for x in pa for y in pb)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("optimize", [False, True])
def test_definition_45_on_realizable_actions(kind, optimize):
    bundled = bundled_objects()[kind]
    spec = bundled.spec()
    rep = translate(spec, optimize=optimize)
    actions = sample_actions(kind, count=45)
    for a in actions:
        for b in actions:
            assert rep_commutes(rep, a, b) == spec.commutes(a, b), (a, b)


# -- arbitrary dictionary actions (returns need not be realizable) -------------

values = st.sampled_from([NIL, 0, 1, "x"])
keys = st.sampled_from(["a", "b"])


@st.composite
def dict_actions(draw):
    method = draw(st.sampled_from(["put", "get", "size"]))
    if method == "put":
        return Action("o", "put", (draw(keys), draw(values)),
                      (draw(values),))
    if method == "get":
        return Action("o", "get", (draw(keys),), (draw(values),))
    return Action("o", "size", (), (draw(st.integers(0, 3)),))


_DICT = bundled_objects()["dictionary"]
_DICT_SPEC = _DICT.spec()
_DICT_TRANSLATED = translate(_DICT_SPEC)
_DICT_HANDWRITTEN = _DICT.representation()


@given(dict_actions(), dict_actions())
@settings(max_examples=300, deadline=None)
def test_definition_45_dictionary_arbitrary(a, b):
    assert (rep_commutes(_DICT_TRANSLATED, a, b)
            == _DICT_SPEC.commutes(a, b))


@given(dict_actions(), dict_actions())
@settings(max_examples=200, deadline=None)
def test_handwritten_matches_spec_on_arbitrary_actions(a, b):
    assert (rep_commutes(_DICT_HANDWRITTEN, a, b)
            == _DICT_SPEC.commutes(a, b))
