"""Simplification, β-substitution and the LS extraction (Lemma 6.4)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import TranslationError
from repro.logic.formulas import (FALSE, TRUE, And, Not, Or, eq, evaluate,
                                  ne, normalize_sides, var1, var2, Var)
from repro.logic.fragments import lb_atoms
from repro.logic.parser import parse_formula
from repro.logic.simplify import simplify, substitute_beta, to_ls


class TestSimplify:
    def test_constant_folding(self):
        atom = ne(var1("k"), var2("k"))
        assert simplify(And(TRUE, atom)) == atom
        assert simplify(And(atom, FALSE)) == FALSE
        assert simplify(Or(atom, TRUE)) == TRUE
        assert simplify(Or(FALSE, atom)) == atom

    def test_negation_folding(self):
        assert simplify(Not(TRUE)) == FALSE
        assert simplify(Not(FALSE)) == TRUE
        assert simplify(Not(Not(ne(var1("k"), var2("k"))))) == \
            ne(var1("k"), var2("k"))

    def test_nested_folding(self):
        formula = Or(And(TRUE, FALSE), And(TRUE, TRUE))
        assert simplify(formula) == TRUE

    def test_idempotent(self):
        formula = Or(ne(var1("k"), var2("k")), FALSE)
        assert simplify(simplify(formula)) == simplify(formula)

    def test_leaves_irreducible_structure(self):
        a, b = ne(var1("k"), var2("k")), ne(var1("v"), var2("v"))
        assert simplify(And(a, b)) == And(a, b)


def beta_for(formula, side_vars, assignment):
    """Build a β keyed by normalized atoms, by truth-value index."""
    atoms = lb_atoms(formula)
    return {normalize_sides(atom): value
            for atom, value in zip(atoms, assignment)}


class TestSubstituteBeta:
    PUT_PUT = parse_formula("k1 != k2 | (v1 == p1 & v2 == p2)")

    def test_both_noops_give_true(self):
        beta = {normalize_sides(eq(var1("v"), var1("p"))): True}
        assert substitute_beta(self.PUT_PUT, beta, beta) == TRUE

    def test_writer_gives_ls_residual(self):
        key = normalize_sides(eq(var1("v"), var1("p")))
        result = substitute_beta(self.PUT_PUT, {key: False}, {key: True})
        assert result == ne(var1("k"), var2("k"))

    def test_negated_atom_flips_beta_value(self):
        formula = parse_formula("v1 != nil")
        key = normalize_sides(parse_formula("v1 == nil"))
        assert substitute_beta(formula, {key: False}, {}) == TRUE
        assert substitute_beta(formula, {key: True}, {}) == FALSE

    def test_put_size_residual(self):
        formula = parse_formula(
            "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)")
        v_nil = normalize_sides(parse_formula("v1 == nil"))
        p_nil = normalize_sides(parse_formula("p1 == nil"))
        # insert: v ≠ nil, p = nil → resize → formula false
        assert substitute_beta(formula,
                               {v_nil: False, p_nil: True}, {}) == FALSE
        # overwrite: both non-nil → no resize → formula true
        assert substitute_beta(formula,
                               {v_nil: False, p_nil: False}, {}) == TRUE

    def test_missing_beta_entry_raises(self):
        with pytest.raises(TranslationError):
            substitute_beta(parse_formula("v1 == p1"), {}, {})

    def test_ground_atom_folds(self):
        assert substitute_beta(parse_formula("1 == 1"), {}, {}) == TRUE
        assert substitute_beta(parse_formula("1 != 1"), {}, {}) == FALSE


class TestToLs:
    def test_constants(self):
        assert to_ls(TRUE) is True
        assert to_ls(FALSE) is False

    def test_single_conjunct(self):
        assert to_ls(ne(var1("k"), var2("k"))) == frozenset({("k", "k")})

    def test_orientation_normalized(self):
        # x2 ≠ y1 reports the side-1 name first.
        assert to_ls(ne(var2("x"), var1("y"))) == frozenset({("y", "x")})

    def test_conjunction_collects_all(self):
        formula = And(ne(var1("k"), var2("k")), ne(var1("v"), var2("p")))
        assert to_ls(formula) == frozenset({("k", "k"), ("v", "p")})

    def test_folds_constants_first(self):
        formula = And(TRUE, ne(var1("k"), var2("k")))
        assert to_ls(formula) == frozenset({("k", "k")})

    def test_non_ls_rejected(self):
        with pytest.raises(TranslationError):
            to_ls(eq(var1("k"), var2("k")))
        with pytest.raises(TranslationError):
            to_ls(Or(ne(var1("k"), var2("k")), ne(var1("v"), var2("v"))))


class TestLemma64:
    """Any ECL formula with all LB atoms substituted simplifies to LS."""

    FORMULAS = [
        "k1 != k2 | (v1 == p1 & v2 == p2)",
        "k1 != k2 | v1 == p1",
        "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)",
        "x1 != x2 | (b1 == 0 & b2 == 0)",
        "(k1 != k2 & v1 != v2) | p1 == nil",
        "k1 != k2 & (v1 == 0 | v2 == 0)",
    ]

    @pytest.mark.parametrize("text", FORMULAS)
    def test_all_beta_assignments_yield_ls(self, text):
        formula = parse_formula(text)
        atoms = [normalize_sides(atom) for atom in lb_atoms(formula)]
        for values in itertools.product((False, True), repeat=len(atoms)):
            beta = dict(zip(atoms, values))
            residual = substitute_beta(formula, beta, beta)
            result = to_ls(residual)  # must not raise (Lemma 6.4)
            assert result in (True, False) or isinstance(result, frozenset)

    @pytest.mark.parametrize("text", FORMULAS)
    def test_substitution_agrees_with_direct_evaluation(self, text):
        """ϕ[β1;β2] evaluated on cross-side vars ≡ ϕ evaluated outright."""
        formula = parse_formula(text)
        atoms = [normalize_sides(atom) for atom in lb_atoms(formula)]
        domain = [0, 1]
        variables = sorted({(v.name, v.side) for atom in [formula]
                            for v in _vars(formula)},
                           key=str)
        import itertools as it
        for assignment in it.islice(
                it.product(domain, repeat=len(variables)), 64):
            env = dict(zip(variables, assignment))
            lookup = lambda var: env[(var.name, var.side)]
            beta1 = {atom: _eval_side(atom, env, 1) for atom in atoms}
            beta2 = {atom: _eval_side(atom, env, 2) for atom in atoms}
            residual = substitute_beta(formula, beta1, beta2)
            assert evaluate(residual, lookup) == evaluate(formula, lookup)


def _vars(formula):
    from repro.logic.formulas import vars_of
    return vars_of(formula)


def _side(index):
    from repro.logic.formulas import Side
    return Side(index)


def _eval_side(atom, env, side_index):
    side = _side(side_index)

    def lookup(var):
        key = (var.name, side)
        if key in env:
            return env[key]
        # The variable does not occur on this side in the original
        # formula; its value is irrelevant.
        return 0

    return evaluate(atom, lookup)
