"""The ECL → access point translation (Section 6.2), on the paper's
worked dictionary example (Appendix A.2)."""

import pytest

from repro.core.errors import TranslationError
from repro.core.events import NIL, Action
from repro.logic.formulas import normalize_sides
from repro.logic.parser import parse_formula
from repro.logic.spec import CommutativitySpec
from repro.logic.translate import (DS, RawSchema, build_raw_translation,
                                   build_representation, translate)
from repro.specs.dictionary import dictionary_spec


@pytest.fixture(scope="module")
def raw():
    return build_raw_translation(dictionary_spec())


class TestBOfPhi:
    def test_b_phi_put_is_the_papers_set(self, raw):
        """B(Φ, put) = {v = p, v = nil, p = nil} (the worked example)."""
        atoms = {str(atom) for atom in raw.atoms_by_method["put"]}
        assert atoms == {"v = p", "v = nil", "p = nil"}

    def test_b_phi_get_and_size_empty(self, raw):
        assert raw.atoms_by_method["get"] == ()
        assert raw.atoms_by_method["size"] == ()


class TestRawSchemas:
    def test_schema_counts(self, raw):
        # put: 2^3 β × (ds + 3 slots) = 32; get: 1 × (ds + 2) = 3;
        # size: 1 × (ds + 1) = 2.
        assert raw.schema_count() == 32 + 3 + 2

    def test_every_schema_canonical_initially(self, raw):
        assert all(raw.canon[s] == s for s in raw.schemas)

    def test_put_ds_conflicts_size_ds_iff_resize(self, raw):
        """Appendix A.2: (o.put:β1:ds, o.size:∅:ds) ∈ Co iff
        ¬(β1(v=nil) ⟺ β1(p=nil))."""
        v_nil = normalize_sides(parse_formula("v1 == nil"))
        p_nil = normalize_sides(parse_formula("p1 == nil"))
        v_p = normalize_sides(parse_formula("v1 == p1"))
        size_ds = RawSchema("size", DS, frozenset())
        for v_val in (False, True):
            for p_val in (False, True):
                for vp_val in (False, True):
                    beta = frozenset({(v_nil, v_val), (p_nil, p_val),
                                      (v_p, vp_val)})
                    put_ds = RawSchema("put", DS, beta)
                    conflicting = size_ds in raw.conflicts.get(put_ds, ())
                    assert conflicting == (v_val != p_val)

    def test_put_slot_conflicts_get_slot_iff_writer(self, raw):
        """Appendix A.2: (o.put:β1:1:u, o.get:∅:1:v) ∈ Co iff u = v and
        ¬β1(k = v) — at schema level: slot-0 of put conflicts with slot-0
        of get exactly when β1(v=p) is false."""
        v_p = normalize_sides(parse_formula("v1 == p1"))
        get_k = RawSchema("get", 0, frozenset())
        for schema in raw.schemas:
            if schema.method == "put" and schema.slot == 0:
                writer = not dict(schema.beta)[v_p]
                assert (get_k in raw.conflicts.get(schema, ())) == writer

    def test_slot_points_carry_values_ds_points_do_not(self, raw):
        for schema in raw.schemas:
            assert schema.carries_value == (schema.slot != DS)


class TestRawRepresentation:
    def test_raw_touches_all_slots(self, raw):
        rep = build_representation(raw)
        action = Action("o", "put", ("k", 5), (NIL,))
        points = rep.points_of(action)
        # ds + one point per value (k, v, p).
        assert len(points) == 4
        values = {pt.value for pt in points}
        assert values == {None, "k", 5, NIL}

    def test_raw_representation_is_bounded(self, raw):
        assert build_representation(raw).bounded


class TestTranslateValidation:
    def test_incomplete_spec_rejected(self):
        spec = CommutativitySpec("partial").method("a").method("b")
        spec.pair("a", "a", "true")
        with pytest.raises(TranslationError):
            build_raw_translation(spec)

    def test_non_ecl_spec_rejected(self):
        spec = (CommutativitySpec("bad")
                .method("m", params=("x",))
                .pair("m", "m", "x1 == x2"))
        from repro.core.errors import FragmentError
        with pytest.raises(FragmentError):
            build_raw_translation(spec)

    def test_translate_requires_all_pairs(self):
        spec = (CommutativitySpec("ok").method("m", params=("x",))
                .pair("m", "m", "x1 != x2"))
        rep = translate(spec)
        assert rep.kind == "ok"


class TestTranslatedEta:
    def test_beta_computed_from_action_values(self):
        rep = translate(dictionary_spec())
        no_op = Action("o", "put", ("k", 7), (7,))      # v = p: a read
        writer = Action("o", "put", ("k", 7), (8,))     # v ≠ p: a write
        points_noop = rep.points_of(no_op)
        points_writer = rep.points_of(writer)
        schemas_noop = {pt.schema for pt in points_noop}
        schemas_writer = {pt.schema for pt in points_writer}
        assert schemas_noop != schemas_writer

    def test_resize_put_touches_plain_point(self):
        rep = translate(dictionary_spec())
        insert = Action("o", "put", ("k", 7), (NIL,))
        plain = [pt for pt in rep.points_of(insert) if pt.value is None]
        assert plain, "an inserting put must touch its ds/resize point"

    def test_mismatched_action_rejected(self):
        rep = translate(dictionary_spec())
        with pytest.raises(Exception):
            rep.points_of(Action("o", "put", ("only-key",), (NIL,)))

    def test_describe_lists_schemas(self):
        rep = translate(dictionary_spec())
        text = rep.describe()
        assert "representation of dictionary" in text
        assert "⨯" in text
