"""Formula AST: construction, evaluation, traversal, side operations."""

import pytest

from repro.core.errors import SpecificationError
from repro.core.events import NIL
from repro.logic.formulas import (FALSE, TRUE, And, Atom, Const, Not, Or,
                                  Side, Var, atoms_of, conj, disj, eq,
                                  evaluate, ge, gt, le, lt, map_atoms, ne,
                                  normalize_sides, register_predicate,
                                  sides_of, subformulas, swap_sides, var1,
                                  var2, vars_of)


class TestTerms:
    def test_var_str_includes_side(self):
        assert str(var1("k")) == "k1"
        assert str(var2("k")) == "k2"
        assert str(Var("k")) == "k"

    def test_const_str(self):
        assert str(Const(5)) == "5"
        assert str(Const(NIL)) == "nil"

    def test_side_other(self):
        assert Side.FIRST.other() is Side.SECOND
        assert Side.SECOND.other() is Side.FIRST


class TestAtoms:
    def test_helpers_coerce_plain_values_to_consts(self):
        atom = eq(var1("v"), 5)
        assert atom.args == (var1("v"), Const(5))

    def test_unknown_predicate_rejected(self):
        with pytest.raises(SpecificationError):
            Atom("frobnicate", (Const(1), Const(2)))

    def test_arity_checked(self):
        with pytest.raises(SpecificationError):
            Atom("eq", (Const(1),))

    def test_infix_rendering(self):
        assert str(ne(var1("k"), var2("k"))) == "k1 ≠ k2"
        assert str(le(var1("d"), 0)) == "d1 ≤ 0"

    def test_custom_predicate_registration(self):
        register_predicate("divides_test", 2,
                           lambda a, b: b % a == 0 if a else False)
        atom = Atom("divides_test", (Const(3), Const(9)))
        assert evaluate(atom, lambda v: None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SpecificationError):
            register_predicate("eq", 2, lambda a, b: True)


class TestEvaluation:
    def test_boolean_structure(self):
        formula = Or(And(TRUE, FALSE), Not(FALSE))
        assert evaluate(formula, lambda v: None)

    def test_atom_lookup(self):
        formula = And(eq(var1("k"), var2("k")), ne(var1("v"), 3))
        env = {var1("k"): 7, var2("k"): 7, var1("v"): 4}
        assert evaluate(formula, env.__getitem__)

    def test_nil_guarded_orders(self):
        assert not evaluate(lt(var1("x"), 5), lambda v: NIL)
        assert not evaluate(ge(var1("x"), 5), lambda v: NIL)
        assert evaluate(gt(var1("x"), 5), lambda v: 9)

    def test_paper_put_put_formula(self):
        # k1 ≠ k2 ∨ (v1 = p1 ∧ v2 = p2)
        formula = Or(ne(var1("k"), var2("k")),
                     And(eq(var1("v"), var1("p")),
                         eq(var2("v"), var2("p"))))
        same_key_noop = {var1("k"): "a", var2("k"): "a",
                         var1("v"): 1, var1("p"): 1,
                         var2("v"): 2, var2("p"): 2}
        assert evaluate(formula, same_key_noop.__getitem__)
        same_key_write = dict(same_key_noop)
        same_key_write[var1("p")] = 9
        assert not evaluate(formula, same_key_write.__getitem__)


class TestCombinators:
    def test_conj_empty_is_true(self):
        assert conj() == TRUE

    def test_disj_empty_is_false(self):
        assert disj() == FALSE

    def test_conj_folds(self):
        a, b, c = (eq(var1("x"), i) for i in range(3))
        assert conj(a, b, c) == And(a, And(b, c))

    def test_operators(self):
        a, b = eq(var1("x"), 1), eq(var2("y"), 2)
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)


class TestTraversal:
    FORMULA = Or(ne(var1("k"), var2("k")),
                 And(eq(var1("v"), var1("p")), Not(eq(var2("v"), 0))))

    def test_subformulas_preorder(self):
        kinds = [type(sub).__name__ for sub in subformulas(self.FORMULA)]
        assert kinds[0] == "Or"
        assert "Not" in kinds

    def test_atoms_of(self):
        atoms = list(atoms_of(self.FORMULA))
        assert len(atoms) == 3

    def test_vars_of(self):
        names = {str(v) for v in vars_of(self.FORMULA)}
        assert names == {"k1", "k2", "v1", "p1", "v2"}

    def test_sides_of(self):
        assert sides_of(self.FORMULA) == frozenset({Side.FIRST, Side.SECOND})


class TestSideOperations:
    def test_swap_sides(self):
        formula = And(eq(var1("v"), var1("p")), ne(var1("k"), var2("k")))
        swapped = swap_sides(formula)
        assert swapped == And(eq(var2("v"), var2("p")),
                              ne(var2("k"), var1("k")))

    def test_swap_is_involutive(self):
        formula = Or(ne(var1("k"), var2("k")), eq(var2("v"), 0))
        assert swap_sides(swap_sides(formula)) == formula

    def test_normalize_erases_sides(self):
        formula = eq(var1("v"), var1("p"))
        assert normalize_sides(formula) == eq(Var("v"), Var("p"))

    def test_normalize_identifies_both_sides(self):
        assert (normalize_sides(eq(var1("v"), var1("p")))
                == normalize_sides(eq(var2("v"), var2("p"))))

    def test_map_atoms_replaces(self):
        formula = And(eq(var1("x"), 1), TRUE)
        rewritten = map_atoms(formula, lambda atom: FALSE)
        assert rewritten == And(FALSE, TRUE)


class TestValueSemantics:
    def test_formulas_hashable(self):
        f1 = And(eq(var1("x"), 1), TRUE)
        f2 = And(eq(var1("x"), 1), TRUE)
        assert f1 == f2
        assert len({f1, f2}) == 1

    def test_distinct_formulas_unequal(self):
        assert eq(var1("x"), 1) != eq(var1("x"), 2)
        assert TRUE != FALSE
