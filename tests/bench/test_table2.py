"""The Table 2 regeneration driver (smoke-level: tiny scale)."""

import pytest

from repro.bench.table2 import PAPER_TABLE2, render, run_row, run_table2


class TestPaperReference:
    def test_all_rows_recorded(self):
        assert len(PAPER_TABLE2) == 7
        assert "DynamicEndpointSnitch" in PAPER_TABLE2

    def test_reference_row_shape(self):
        row = PAPER_TABLE2["ComplexConcurrency"]
        assert row == ("2011 qps", "685 qps", "425 qps",
                       "1784 (26)", "200 (2)")


class TestRunRow:
    def test_h2_row(self):
        row = run_row("ComplexConcurrency", scale=0.1, seed=0)
        assert row.application == "H2 database"
        assert not row.timed_in_seconds
        assert set(row.measurements) == {"uninstrumented", "fasttrack",
                                         "rd2"}
        assert row.measurements["uninstrumented"].operations > 0
        assert "qps" in row.performance("rd2")

    def test_snitch_row_timed_in_seconds(self):
        row = run_row("DynamicEndpointSnitch", scale=0.1, seed=0)
        assert row.application == "Cassandra"
        assert row.timed_in_seconds
        assert row.performance("rd2").endswith("s")

    def test_races_accessor(self):
        row = run_row("ComplexConcurrency", scale=0.15, seed=0)
        rd2 = row.races("rd2")
        fasttrack = row.races("fasttrack")
        assert rd2.total >= 1
        assert fasttrack.total >= 1

    def test_custom_configs(self):
        row = run_row("ComplexConcurrency", scale=0.1,
                      configs=("uninstrumented",))
        assert set(row.measurements) == {"uninstrumented"}


class TestShapeClaims:
    """The qualitative claims the reproduction makes about Table 2."""

    @pytest.fixture(scope="class")
    def rows(self):
        # Best-of-3 per cell: the shape claims compare wall-clock numbers,
        # and a single-shot measurement can catch a GC pause on whichever
        # config runs first (flaky under a loaded full-suite run).
        return {row.benchmark: row
                for row in run_table2(scale=0.15, seed=0, repeats=3)}

    def test_uninstrumented_is_fastest(self, rows):
        for row in rows.values():
            uninstrumented = row.measurements["uninstrumented"]
            for config in ("fasttrack", "rd2"):
                other = row.measurements[config]
                if row.timed_in_seconds:
                    assert uninstrumented.elapsed <= other.elapsed
                else:
                    assert uninstrumented.qps >= other.qps

    def test_clean_rows_have_zero_rd2_races(self, rows):
        for name in ("QueryCentricConcurrency", "Complex", "NestedLists"):
            assert rows[name].races("rd2").total == 0, name

    def test_concurrency_rows_have_rd2_races_on_few_objects(self, rows):
        for name in ("ComplexConcurrency", "ComplexConcurrency-alt",
                     "InsertCentricConcurrency"):
            tally = rows[name].races("rd2")
            assert tally.total >= 1, name
            assert tally.distinct <= 3, name

    def test_fasttrack_flags_every_h2_row(self, rows):
        for name, row in rows.items():
            assert row.races("fasttrack").total >= 1, name

    def test_snitch_rd2_races_on_two_objects(self, rows):
        tally = rows["DynamicEndpointSnitch"].races("rd2")
        assert tally.total >= 1
        assert tally.distinct == 2


class TestRender:
    def test_render_includes_measured_and_paper(self):
        rows = [run_row("Complex", scale=0.1)]
        text = render(rows)
        assert "measured on this machine" in text
        assert "paper, JVM testbed" in text
        assert "Complex" in text

    def test_render_without_paper(self):
        rows = [run_row("Complex", scale=0.1)]
        text = render(rows, with_paper=False)
        assert "JVM testbed" not in text

    def test_cli_main(self, capsys):
        from repro.bench.table2 import main
        code = main(["--scale", "0.05", "--benchmark", "Complex",
                     "--no-paper"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Complex" in out
