"""The measurement harness and configuration stacks."""

import pytest

from repro.bench.harness import (CONFIGURATIONS, Measurement, analyzer_stack,
                                 measure)
from repro.core.races import RaceTally
from repro.runtime.analyzers import (DirectAnalyzer, EraserAnalyzer,
                                     FastTrackAnalyzer, NullAnalyzer,
                                     Rd2Analyzer)
from repro.runtime.collections_rt import MonitoredDict
from repro.runtime.monitor import Monitor
from repro.sched.scheduler import Scheduler


class TestAnalyzerStack:
    def test_table2_configurations(self):
        assert CONFIGURATIONS == ("uninstrumented", "fasttrack", "rd2")

    def test_uninstrumented_is_empty(self):
        assert analyzer_stack("uninstrumented") == []

    def test_fasttrack(self):
        stack = analyzer_stack("fasttrack")
        assert len(stack) == 1
        assert isinstance(stack[0], FastTrackAnalyzer)

    def test_rd2_pays_for_low_level_stream(self):
        stack = analyzer_stack("rd2")
        assert isinstance(stack[0], Rd2Analyzer)
        assert isinstance(stack[1], NullAnalyzer)

    def test_maps_only_variant(self):
        stack = analyzer_stack("rd2-maps-only")
        assert len(stack) == 1
        assert isinstance(stack[0], Rd2Analyzer)

    def test_extra_configs(self):
        assert isinstance(analyzer_stack("eraser")[0], EraserAnalyzer)
        assert isinstance(analyzer_stack("direct")[0], DirectAnalyzer)

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            analyzer_stack("warp")


def racy_workload(monitor: Monitor) -> int:
    scheduler = Scheduler(monitor, seed=0)

    def main():
        shared = MonitoredDict(monitor, name="d")

        def worker(value):
            shared.put("hot", value)

        scheduler.join_all([scheduler.spawn(worker, i) for i in range(3)])

    scheduler.run(main)
    return 3


class TestMeasure:
    def test_uninstrumented_measurement(self):
        measurement = measure(racy_workload, "uninstrumented")
        assert measurement.operations == 3
        assert measurement.elapsed > 0
        assert measurement.qps > 0
        assert measurement.events == 0
        assert measurement.races_for() == RaceTally(0, 0)

    def test_rd2_measurement_counts_commutativity_races(self):
        measurement = measure(racy_workload, "rd2")
        assert measurement.commutativity_races.total >= 1
        assert measurement.commutativity_races.distinct == 1
        assert measurement.races_for().total >= 1

    def test_fasttrack_measurement_counts_data_races(self):
        measurement = measure(racy_workload, "fasttrack")
        assert measurement.races_for() == measurement.data_races

    def test_maps_only_sees_fewer_events(self):
        full = measure(racy_workload, "rd2")
        maps_only = measure(racy_workload, "rd2-maps-only")
        assert maps_only.events < full.events
        assert (maps_only.commutativity_races.total
                == full.commutativity_races.total)

    def test_repeats_keep_best_time(self):
        measurement = measure(racy_workload, "uninstrumented", repeats=2)
        assert measurement.elapsed > 0

    def test_eraser_config_tallies_warnings(self):
        measurement = measure(racy_workload, "eraser")
        assert measurement.races_for() == measurement.lockset_warnings
