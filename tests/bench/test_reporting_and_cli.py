"""Text rendering and the command-line front ends."""

import pytest

from repro.bench.reporting import format_rate, format_seconds, render_table


class TestFormatting:
    def test_rate(self):
        assert format_rate(2011.4) == "2,011 qps"
        assert format_rate(0) == "0 qps"

    def test_seconds(self):
        assert format_seconds(2.9066) == "2.907 s"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"],
                            [["a", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # Right-aligned numeric column: the widths line up.
        assert lines[2].index("1") == lines[3].index("2") + 1

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_separator_row(self):
        text = render_table(["col"], [[1]])
        assert "---" in text.splitlines()[1]

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestBenchCli:
    def test_fig4_subcommand(self, capsys):
        from repro.bench.cli import main
        assert main(["fig4", "--puts", "3", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "5" in out

    def test_scaling_subcommand(self, capsys):
        from repro.bench.cli import main
        assert main(["scaling", "--sizes", "50", "100"]) == 0
        out = capsys.readouterr().out
        assert "checks" in out

    def test_table2_subcommand_scaled(self, capsys):
        from repro.bench.cli import main
        assert main(["table2", "--scale", "0.05", "--no-paper"]) == 0
        out = capsys.readouterr().out
        assert "ComplexConcurrency" in out
        assert "JVM" not in out

    def test_requires_subcommand(self):
        from repro.bench.cli import main
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        from repro.bench.cli import main
        with pytest.raises(SystemExit):
            main(["warp-speed"])


class TestTable2Cli:
    def test_single_benchmark_selection(self, capsys):
        from repro.bench.table2 import main
        assert main(["--scale", "0.05", "--benchmark", "NestedLists"]) == 0
        out = capsys.readouterr().out
        assert "NestedLists" in out
        assert "InsertCentric" not in out.split("paper")[0]

    def test_invalid_benchmark_rejected(self):
        from repro.bench.table2 import main
        with pytest.raises(SystemExit):
            main(["--benchmark", "Monaco"])
