"""The design-choice ablations."""

import pytest

from repro.bench.ablation import (adaptive_ablation, atomicity_ablation,
                                  instrumentation_ablation,
                                  pruning_ablation, render_ablations,
                                  strategy_ablation, translation_ablation)


class TestTranslationAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return translation_ablation(actions=400)

    def value(self, rows, variant, metric):
        return next(r.value for r in rows
                    if r.variant == variant and r.metric == metric)

    def test_optimization_shrinks_schema_table(self, rows):
        assert int(self.value(rows, "optimized", "schemas")) < \
            int(self.value(rows, "raw", "schemas"))

    def test_optimization_reduces_points_per_action(self, rows):
        assert float(self.value(rows, "optimized", "points/action")) < \
            float(self.value(rows, "raw", "points/action"))

    def test_race_counts_agree(self, rows):
        assert (self.value(rows, "raw", "races")
                == self.value(rows, "optimized", "races"))


class TestStrategyAblation:
    def test_enumerate_beats_scan_in_checks(self):
        rows = strategy_ablation(actions=400)
        enum_checks = next(float(r.value) for r in rows
                           if r.variant == "enumerate"
                           and r.metric == "checks/action")
        scan_checks = next(float(r.value) for r in rows
                           if r.variant == "scan"
                           and r.metric == "checks/action")
        assert enum_checks < scan_checks


class TestInstrumentationAblation:
    def test_maps_only_is_not_slower_and_equally_precise(self):
        rows = instrumentation_ablation(scale=0.1)
        races = {r.variant: r.value for r in rows if r.metric == "races"}
        assert races["rd2"] == races["rd2-maps-only"]


class TestAdaptiveAblation:
    def test_identical_verdicts_and_mostly_epochs(self):
        rows = adaptive_ablation(actions=500)
        races = {r.variant: r.value for r in rows if r.metric == "races"}
        assert races["epochs"] == races["vector-clocks"]
        promoted = next(r.value for r in rows
                        if r.metric == "points promoted")
        # The workload is mostly thread-local key inserts: few promotions.
        assert int(promoted.split()[0]) < 50


class TestPruningAblation:
    def test_pruning_shrinks_active_sets_without_changing_verdicts(self):
        rows = pruning_ablation(phases=10)
        value = lambda variant, metric: next(
            r.value for r in rows
            if r.variant == variant and r.metric == metric)
        assert (int(value("every-16-actions", "active points at end"))
                < int(value("off", "active points at end")))
        assert value("off", "races") == value("every-16-actions", "races")


class TestAtomicityAblation:
    def test_access_points_eliminate_false_alarms(self):
        rows = atomicity_ablation(seeds=range(6))
        value = lambda variant, metric_prefix: next(
            int(r.value) for r in rows
            if r.variant == variant and r.metric.startswith(metric_prefix))
        assert value("access-points", "flagged commuting") == 0
        assert value("read-write", "flagged commuting") > 0
        # Both modes catch the genuinely broken block on racy schedules.
        assert value("access-points", "flagged broken") > 0
        assert (value("access-points", "flagged broken")
                <= value("read-write", "flagged broken"))


def test_render():
    text = render_ablations(translation_ablation(actions=200))
    assert "experiment" in text
    assert "optimized" in text
