"""The Fig. 4 and Section 5.4 experiment drivers."""

import pytest

from repro.bench.fig4 import fig4_trace, render_fig4, run_fig4
from repro.bench.scaling import render_scaling, run_scaling, scaling_trace


class TestFig4:
    def test_direct_checks_scale_with_k(self):
        points = run_fig4(put_counts=(3, 10, 25))
        for point in points:
            # The paper's claim, literally: k checks on invocations...
            assert point.direct_checks_for_size == point.puts
            # ...versus a single bounded lookup on access points.
            assert point.access_point_checks_for_size == 1

    def test_both_detectors_flag_the_size_race(self):
        points = run_fig4(put_counts=(5,))
        point = points[0]
        assert point.direct_races >= 1
        assert point.access_point_races >= 1

    def test_trace_shape(self):
        trace = fig4_trace(4).build()
        actions = trace.actions("o")
        assert len(actions) == 5
        assert actions[-1].action.method == "size"
        # Without joinall, size may happen in parallel with every put.
        for put_event in actions[:-1]:
            assert put_event.clock.parallel(actions[-1].clock)

    def test_render(self):
        text = render_fig4(run_fig4(put_counts=(3,)))
        assert "Fig. 4" in text
        assert "3" in text


class TestScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return run_scaling(sizes=(100, 400))

    def test_enumerate_checks_stay_constant(self, points):
        small, large = points
        assert large.enumerate_checks_per_action <= \
            small.enumerate_checks_per_action * 1.5 + 1

    def test_scan_checks_grow_linearly(self, points):
        small, large = points
        growth = (large.scan_checks_per_action
                  / max(small.scan_checks_per_action, 1))
        assert growth > 2.0  # 4× more actions → ~4× more checks

    def test_direct_matches_scan_order(self, points):
        for point in points:
            assert point.direct_checks_per_action > \
                point.enumerate_checks_per_action

    def test_trace_generator_consistent(self):
        trace = scaling_trace(60, threads=3, seed=1)
        assert len(trace.actions("o")) == 60

    def test_render(self, points):
        text = render_scaling(points)
        assert "Θ(1)" in text or "enum" in text
