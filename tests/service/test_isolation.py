"""Per-tenant fault isolation: one bad tenant never hurts its neighbors.

The service reuses the PR 3 ``analyzer_policy`` semantics through the
shared :class:`~repro.core.supervise.QuarantinePolicy` (``site=
"tenant"``): ``log`` tolerates every fault, ``disable`` quarantines the
tenant after ``max_faults`` strikes, ``raise`` stops the daemon.
"""

import json
import socket

from repro.service import ControlClient, ServiceClient
from repro.service.chaos import offline_race_lines
from repro.service.protocol import encode_hello
from repro.testing.workloads import tenant_trace_text

GOOD_SEED = 8


def poison_stream(socket_path, tenant, bindings, garbage=b"{not json}\n"):
    """Hello + valid header + a malformed record; the final ERR line."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10)
    try:
        sock.connect(socket_path)
        reader = sock.makefile("rb")
        sock.sendall((encode_hello(tenant, bindings) + "\n").encode())
        ack = reader.readline().decode().rstrip("\n")
        if not ack.startswith("OK"):
            return ack
        header = json.dumps({"repro-trace": 1, "root": 0, "events": 50})
        sock.sendall(header.encode() + b"\n" + garbage)
        return reader.readline().decode().rstrip("\n")
    finally:
        sock.close()


class TestLogPolicy:
    def test_faults_are_tolerated_and_counted(self, make_server):
        host = make_server(analyzer_policy="log")
        _, bindings, _ = tenant_trace_text(GOOD_SEED)
        for _ in range(3):
            reply = poison_stream(host.config.socket_path, "clumsy",
                                  bindings)
            assert reply.startswith("ERR analyzer-fault")
        # Never quarantined, however often it faults.
        assert not host.server._policy.is_quarantined("clumsy")
        assert host.server._policy.fault_count("clumsy") == 3
        counters = host.server.merged_stats()["breakdowns"]["tenant_faults"]
        assert counters == {"clumsy": 3}


class TestDisablePolicy:
    def test_quarantine_after_max_faults(self, make_server):
        host = make_server(analyzer_policy="disable", max_faults=2)
        control = ControlClient(host.config.control_path)
        _, bindings, _ = tenant_trace_text(GOOD_SEED)
        first = poison_stream(host.config.socket_path, "hostile", bindings)
        assert first.startswith("ERR analyzer-fault")
        second = poison_stream(host.config.socket_path, "hostile", bindings)
        assert second == "ERR quarantined"
        # Further connects are refused at the handshake.
        third = poison_stream(host.config.socket_path, "hostile", bindings)
        assert third == "ERR quarantined"
        (line,) = control.status()
        assert line.startswith("hostile state=quarantined")
        stats = control.stats()
        assert stats["counters"]["tenants_quarantined"] == 1

    def test_neighbors_are_untouched(self, make_server):
        host = make_server(analyzer_policy="disable", max_faults=1)
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        _, bad_bindings, _ = tenant_trace_text(GOOD_SEED)
        assert poison_stream(host.config.socket_path, "hostile",
                             bad_bindings) == "ERR quarantined"
        # A healthy tenant on the same daemon gets full, correct service.
        text, bindings, trace = tenant_trace_text(9)
        result = client.stream_text("innocent", bindings, text)
        assert result.status == "done", result
        observed = [line for line in control.races("innocent")
                    if line != "(no races)"]
        assert observed == offline_race_lines(trace, bindings)
        assert host.server._policy.fault_count("innocent") == 0

    def test_oversized_event_frame_is_a_tenant_fault(self, make_server):
        host = make_server(analyzer_policy="disable", max_faults=1,
                           max_record_bytes=4096)
        _, bindings, _ = tenant_trace_text(GOOD_SEED)
        reply = poison_stream(host.config.socket_path, "bloated", bindings,
                              garbage=b'{"kind": "x' + b"x" * 8192 + b"\n")
        assert reply == "ERR quarantined"
        counters = host.server.merged_stats()["counters"]
        assert counters["stream_frame_errors"] >= 1


class TestRaisePolicy:
    def test_a_fault_stops_the_daemon(self, make_server):
        host = make_server(analyzer_policy="raise")
        _, bindings, _ = tenant_trace_text(GOOD_SEED)
        reply = poison_stream(host.config.socket_path, "fatal", bindings)
        assert reply.startswith("ERR analyzer-fault")
        host.stop()
        assert host.error is not None
        assert "malformed" in str(host.error)
