"""The seeded chaos harness is the service's acceptance test: run it.

Byte-identical per-tenant reports versus offline analysis and a held
queue bound are asserted *inside* :func:`repro.service.chaos.run_chaos`
(via ``ChaosReport.ok``); this file keeps the harness wired into the
ordinary test run with a small plan, plus pins the report's evidence so
a future refactor cannot quietly turn the harness into a no-op.
"""

from repro.service.chaos import ChaosPlan, run_chaos

SEED = 7


class TestChaos:
    def test_seeded_chaos_run_is_clean(self, tmp_path):
        # min_cuts=1 guarantees every tenant is killed mid-stream at
        # least once, so the resume machinery is exercised every run.
        plan = ChaosPlan(seed=SEED, tenants=6, min_cuts=1)
        report = run_chaos(plan, base_dir=str(tmp_path), queue_size=8)
        assert report.ok, report.summary()
        # The harness must have actually exercised the failure modes,
        # not just streamed six happy tenants.
        assert sum(len(o.cuts) for o in report.outcomes) > 0
        assert any(len(o.expected_lines) > 0 for o in report.outcomes)
        counters = report.stats["counters"]
        assert counters.get("budget_forced_windows", 0) > 0
        assert counters.get("tenant_checkpoints_written", 0) > 0
        # The flood tenant really queued (and was really bounded).
        hwms = [o.queue_hwm for o in report.outcomes]
        assert max(hwms) > 1
        assert max(hwms) <= report.queue_size

    def test_reports_survive_every_tenant(self, tmp_path):
        report = run_chaos(ChaosPlan.seeded(SEED, tenants=6),
                           base_dir=str(tmp_path), queue_size=8)
        for outcome in report.outcomes:
            assert outcome.attempts[-1].status == "done", outcome.tenant
            assert outcome.observed_lines == outcome.expected_lines
