"""Shared fixtures for the detection-service suite.

Every test that needs a live daemon builds it through ``make_server`` so
sockets land in the test's tmp dir and the thread is always joined.  The
CI matrix runs this suite under both ``fork`` and ``spawn``
(``REPRO_TEST_START_METHOD``) because the kill -9 resume tests launch
client processes via multiprocessing and crash-resume must not care how
those clients came to be.
"""

import os

import pytest

from repro.service import ServerThread, ServiceConfig, SessionConfig

START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None


@pytest.fixture
def start_method():
    return START_METHOD


@pytest.fixture
def make_server(tmp_path):
    """A factory: ``make_server(**config_overrides) -> ServerThread``.

    The returned host is already started; teardown drains every host the
    test created.
    """
    hosts = []

    def factory(**overrides):
        session = overrides.pop("session", None) or SessionConfig()
        config = ServiceConfig(
            socket_path=str(tmp_path / f"ingest-{len(hosts)}.sock"),
            control_path=str(tmp_path / f"control-{len(hosts)}.sock"),
            session=session,
            **overrides)
        host = ServerThread(config)
        hosts.append(host)
        host.__enter__()
        return host

    yield factory
    for host in hosts:
        host.stop()
