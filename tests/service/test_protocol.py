"""The ingest handshake and response-line grammar."""

import pytest

from repro.service.protocol import (Hello, ProtocolError, done_line,
                                    encode_hello, err_line, ok_new,
                                    ok_resume, parse_hello)

KINDS = frozenset({"dictionary", "counter"})


class TestHello:
    def test_roundtrip(self):
        line = encode_hello("web-42", {"o": "dictionary", "c": "counter"})
        hello = parse_hello(line, KINDS)
        assert hello == Hello(tenant="web-42",
                              objects={"o": "dictionary", "c": "counter"})

    def test_not_json(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            parse_hello("{nope", KINDS)

    def test_shm_key_roundtrip_and_default(self):
        line = encode_hello("t", {"o": "counter"}, shm="psm_abc123")
        assert parse_hello(line, KINDS).shm == "psm_abc123"
        plain = encode_hello("t", {"o": "counter"})
        assert "shm" not in plain
        assert parse_hello(plain, KINDS).shm is None

    @pytest.mark.parametrize("shm", ["", 7, "x" * 200])
    def test_bad_shm_names(self, shm):
        import json
        line = json.dumps({"repro-serve": 1, "tenant": "t",
                           "objects": {"o": "counter"}, "shm": shm})
        with pytest.raises(ProtocolError, match="shm"):
            parse_hello(line, KINDS)

    def test_wrong_version_key(self):
        with pytest.raises(ProtocolError, match="handshake"):
            parse_hello('{"repro-serve": 99, "tenant": "t", '
                        '"objects": {"o": "counter"}}', KINDS)

    def test_plain_trace_header_is_not_a_handshake(self):
        # The most likely client bug: forgetting the HELLO and opening
        # with the trace header.  Must be rejected, not half-accepted.
        with pytest.raises(ProtocolError):
            parse_hello('{"repro-trace": 1, "root": 0, "events": 5}', KINDS)

    @pytest.mark.parametrize("tenant", ["", "a\nb", "x" * 129])
    def test_bad_tenant_names(self, tenant):
        line = encode_hello(tenant, {"o": "counter"})
        with pytest.raises(ProtocolError, match="tenant"):
            parse_hello(line, KINDS)

    def test_empty_objects(self):
        with pytest.raises(ProtocolError, match="objects"):
            parse_hello('{"repro-serve": 1, "tenant": "t", "objects": {}}',
                        KINDS)

    def test_unknown_kind(self):
        line = encode_hello("t", {"o": "flux-capacitor"})
        with pytest.raises(ProtocolError, match="flux-capacitor"):
            parse_hello(line, KINDS)

    def test_non_string_binding(self):
        with pytest.raises(ProtocolError, match="strings"):
            parse_hello('{"repro-serve": 1, "tenant": "t", '
                        '"objects": {"o": 7}}', KINDS)


class TestResponses:
    def test_acks(self):
        assert ok_new() == "OK NEW"
        assert ok_resume(1200) == "OK RESUME 1200"
        assert done_line(3) == "DONE 3"

    def test_err_collapses_to_one_line(self):
        assert err_line("bad\nthing  happened") == "ERR bad thing happened"
