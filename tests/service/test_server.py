"""The daemon end to end: correctness, control plane, backpressure.

The acceptance bar from the issue is asserted here directly: race
reports served over the control socket are byte-identical to offline
single-tenant analysis, and a flooded slow tenant's ingest queue never
grows past the configured bound (checked via the server's own obs
gauges, not client-side bookkeeping).
"""

import asyncio
import json
import socket
import threading

from repro.service import ControlClient, ServiceClient, SessionConfig
from repro.service.budget import BudgetConfig
from repro.service.chaos import offline_race_lines
from repro.service.protocol import encode_hello
from repro.testing.workloads import tenant_trace_text

RACY_SEEDS = (6, 8, 9, 18)
QUIET_SEED = 3


class TestCorrectness:
    def test_reports_are_byte_identical_to_offline(self, make_server):
        host = make_server()
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        for seed in RACY_SEEDS:
            text, bindings, trace = tenant_trace_text(seed)
            result = client.stream_text(f"t{seed}", bindings, text)
            assert result.status == "done", result
            expected = offline_race_lines(trace, bindings)
            observed = control.races(f"t{seed}")
            if observed == ["(no races)"]:
                observed = []
            assert observed == expected

    def test_concurrent_tenants_do_not_cross_pollinate(self, make_server):
        host = make_server()
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        payloads = {f"t{seed}": tenant_trace_text(seed)
                    for seed in RACY_SEEDS}
        results = {}

        def drive(tenant):
            text, bindings, _ = payloads[tenant]
            results[tenant] = client.stream_text(tenant, bindings, text)

        threads = [threading.Thread(target=drive, args=(t,))
                   for t in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for tenant, (text, bindings, trace) in payloads.items():
            assert results[tenant].status == "done", results[tenant]
            observed = control.races(tenant)
            if observed == ["(no races)"]:
                observed = []
            assert observed == offline_race_lines(trace, bindings), tenant


class TestControlPlane:
    def test_status_stats_races_unknown(self, make_server):
        host = make_server()
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        assert control.status() == ["(no tenants)"]
        text, bindings, _ = tenant_trace_text(QUIET_SEED)
        assert client.stream_text("web", bindings, text).status == "done"
        (line,) = control.status()
        assert line.startswith("web state=done events=")
        assert "queue_hwm=" in line and "faults=0" in line
        stats = control.stats()
        assert stats["counters"]["streams_completed"] == 1
        assert control.races("nobody") == ["ERR unknown-tenant nobody"]
        assert control.command("FROBNICATE") \
            == ["ERR unknown-command FROBNICATE"]

    def test_stats_is_valid_sorted_json(self, make_server):
        host = make_server()
        control = ControlClient(host.config.control_path)
        lines = control.command("STATS")
        assert len(lines) == 1
        snapshot = json.loads(lines[0])
        assert snapshot["enabled"] is True


class TestRefusals:
    def test_second_stream_for_a_live_tenant_is_busy(self, make_server):
        host = make_server()
        text, bindings, _ = tenant_trace_text(QUIET_SEED)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(host.config.socket_path)
        try:
            sock.sendall((encode_hello("dup", bindings) + "\n").encode())
            assert sock.makefile("rb").readline().startswith(b"OK NEW")
            second = ServiceClient(host.config.socket_path).stream_text(
                "dup", bindings, text)
            assert second.status == "refused"
            assert second.final.startswith("ERR busy")
        finally:
            sock.close()

    def test_garbage_handshake_is_refused(self, make_server):
        host = make_server()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(host.config.socket_path)
        try:
            sock.sendall(b"GET / HTTP/1.1\n")
            reply = sock.makefile("rb").readline().decode()
            assert reply.startswith("ERR ")
        finally:
            sock.close()

    def test_oversized_handshake_frame(self, make_server):
        host = make_server(max_record_bytes=4096)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(host.config.socket_path)
        try:
            sock.sendall(b"x" * 8192 + b"\n")
            reply = sock.makefile("rb").readline().decode()
            assert reply.startswith("ERR frame-too-large")
        finally:
            sock.close()
        assert host.server.obs.snapshot()["counters"][
            "stream_frame_errors"] == 1


class TestBackpressure:
    def test_flooded_slow_tenant_never_exceeds_queue_bound(
            self, make_server):
        bound = 4

        async def crawl(tenant, events_seen):
            await asyncio.sleep(0.002)

        host = make_server(queue_size=bound, throttle=crawl)
        client = ServiceClient(host.config.socket_path)
        # A large trace flooded as fast as the socket accepts it, against
        # a worker that crawls: the queue must absorb at most `bound`.
        text, bindings, trace = tenant_trace_text(
            QUIET_SEED, min_ops=120, max_ops=120)
        result = client.stream_text("flood", bindings, text)
        assert result.status == "done", result
        gauges = host.server.merged_stats()["gauges"]
        hwm = gauges.get("tenant_queue_hwm[flood]", 0)
        assert 0 < hwm <= bound
        observed = [line for line in ControlClient(
            host.config.control_path).races("flood")
            if line != "(no races)"]
        assert observed == offline_race_lines(trace, bindings)


class TestBudgetDegradation:
    def test_over_budget_tenant_suspends_and_keeps_served_races(
            self, make_server):
        host = make_server(session=SessionConfig(
            window=8, budget=BudgetConfig(max_points=1, suspend_after=1)))
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        text, bindings, _ = tenant_trace_text(18)  # footprint ≫ 1 point
        result = client.stream_text("piggy", bindings, text)
        assert result.status == "error"
        assert result.final.startswith("ERR budget-exceeded")
        (line,) = control.status()
        assert "state=suspended" in line
        # Races found before suspension stay served...
        races = control.races("piggy")
        assert races  # at least the "(no races)" marker, usually reports
        # ...and reconnecting is refused until the operator intervenes.
        again = client.stream_text("piggy", bindings, text)
        assert again.status == "refused"
        assert again.final.startswith("ERR budget-exceeded")
        stats = control.stats()
        assert stats["counters"]["budget_suspensions"] == 1

    def test_healthy_tenants_are_untouched_by_a_suspended_neighbor(
            self, make_server):
        # Seed 18's dictionary workload floors at ~18 points even after
        # forced maintenance; seed 21's register workload floors at 4 —
        # a 10-point budget suspends the first and never taxes the second.
        host = make_server(session=SessionConfig(
            window=8, budget=BudgetConfig(max_points=10, suspend_after=1)))
        client = ServiceClient(host.config.socket_path)
        heavy_text, heavy_bindings, _ = tenant_trace_text(18)
        assert client.stream_text("piggy", heavy_bindings, heavy_text) \
            .final.startswith("ERR budget-exceeded")
        light_text, light_bindings, light_trace = tenant_trace_text(21)
        result = client.stream_text("ant", light_bindings, light_text)
        assert result.status == "done", result
