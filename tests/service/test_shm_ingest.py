"""The daemon's shared-memory ingest transport.

The ``shm`` handshake key moves trace bytes out of the unix socket and
into a client-owned :class:`~repro.core.shmem.ByteRing`; the socket
keeps the handshake, the ack and the final status line.  The transport
must be *invisible*: byte-identical race reports, the same torn-frame
tolerance, the same backpressure story — and a server configured with
``allow_shm=False`` (``repro-serve --no-shm``) must refuse the
handshake cleanly so the client can fall back to socket streaming.
"""

import time

import pytest

from repro.core.backend import shm_available
from repro.service import ControlClient, ServiceClient
from repro.service.chaos import offline_race_lines
from repro.testing.workloads import tenant_trace_text

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no shared memory on this host")

RACY_SEEDS = (6, 8, 9, 18)


def races_for(control, tenant):
    observed = control.races(tenant)
    return [] if observed == ["(no races)"] else observed


class TestShmTransportIsInvisible:
    def test_reports_byte_identical_to_socket_and_offline(self, make_server):
        host = make_server()
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        for seed in RACY_SEEDS:
            text, bindings, trace = tenant_trace_text(seed)
            sock = client.stream_text(f"sock{seed}", bindings, text)
            shm = client.stream_text(f"shm{seed}", bindings, text,
                                     via_shm=True)
            assert sock.status == shm.status == "done"
            expected = offline_race_lines(trace, bindings)
            assert races_for(control, f"sock{seed}") == expected
            assert races_for(control, f"shm{seed}") == expected
        stats = control.stats()
        assert stats["counters"]["shm_streams"] == len(RACY_SEEDS)

    def test_small_ring_backpressure_still_completes(self, make_server):
        # A 256-byte ring forces thousands of wraparounds and constant
        # writer blocking; the report must not care.
        host = make_server()
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        text, bindings, trace = tenant_trace_text(6)
        result = client.stream_text("tiny", bindings, text, via_shm=True,
                                    ring_capacity=256)
        assert result.status == "done", result
        assert races_for(control, "tiny") \
            == offline_race_lines(trace, bindings)


class TestShmTornFrames:
    def test_truncated_ring_stream_recovers_like_a_socket(self, make_server):
        host = make_server()
        client = ServiceClient(host.config.socket_path)
        text, bindings, trace = tenant_trace_text(6)
        torn = client.stream_text("torn", bindings, text,
                                  truncate_at=len(text) // 2, via_shm=True)
        assert torn.status == "disconnected"
        # Same dumb-client recovery loop as the socket path: reconnect
        # (retrying through the wind-down's ERR busy) until DONE.
        deadline = time.monotonic() + 30
        while True:
            retry = client.stream_text("torn", bindings, text, via_shm=True)
            if retry.status == "done":
                break
            assert retry.final.startswith("ERR busy") \
                or retry.status == "disconnected", retry
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert retry.races is not None


class TestShmRefusals:
    def test_disabled_by_configuration(self, make_server):
        host = make_server(allow_shm=False)
        client = ServiceClient(host.config.socket_path)
        text, bindings, _ = tenant_trace_text(6)
        result = client.stream_text("t", bindings, text, via_shm=True)
        assert result.status == "refused"
        assert result.ack.startswith("ERR shm-unavailable")
        # Socket streaming still works against the same server.
        assert client.stream_text("t", bindings, text).status == "done"

    def test_unattachable_segment_is_refused_before_ack(self, make_server):
        import socket as socket_mod
        from repro.service.protocol import encode_hello
        host = make_server()
        text, bindings, _ = tenant_trace_text(6)
        sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        sock.settimeout(10)
        try:
            sock.connect(host.config.socket_path)
            hello = encode_hello("ghost", bindings, shm="no-such-segment")
            sock.sendall((hello + "\n").encode("utf-8"))
            ack = sock.makefile("rb").readline().decode("utf-8").rstrip("\n")
        finally:
            sock.close()
        assert ack.startswith("ERR shm-unavailable")
        # The refusal is an accounted protocol error, not a crash.
        control = ControlClient(host.config.control_path)
        stats = control.stats()
        assert stats["counters"]["protocol_errors"] >= 1
