"""Crash-resume: fast-forward validation, degradation, kill -9 writers.

The resume design under test: a reconnecting tenant re-streams its trace
from event zero, the server fast-forwards through the checkpointed
prefix while recomputing the fingerprint digest, and only a digest match
lets the checkpointed analyzer continue — any defect (edited trace,
corrupt file, version skew) degrades to a fresh analysis, never a wrong
one.  The kill -9 test is the satellite-3 acceptance: two tenants
writing *concurrently* into one shared checkpoint directory, both
clients SIGKILLed mid-stream, both resumed byte-identically — under
whatever multiprocessing start method ``REPRO_TEST_START_METHOD``
selects.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.service import ControlClient, ServiceClient, SessionConfig
from repro.service.chaos import offline_race_lines
from repro.service.checkpoints import tenant_checkpoint_path
from repro.testing.workloads import tenant_trace_text

RACY_SEED = 18          # single dictionary, 133 events, many races
SECOND_SEED = 9         # msetlog + counter, different shape
KILL_OPS = 120          # ops per thread for the kill -9 workloads


def resume_session_config(tmp_path) -> SessionConfig:
    return SessionConfig(window=8, checkpoint_dir=str(tmp_path / "ckpt"),
                         checkpoint_interval=16)


def served_races(control, tenant):
    lines = control.races(tenant)
    return [] if lines == ["(no races)"] else lines


def stream_past_busy(client, tenant, bindings, text, **kw):
    """One real attempt, skipping the short busy window while the server
    is still winding down this tenant's previous (killed) connection."""
    for _ in range(100):
        result = client.stream_text(tenant, bindings, text, **kw)
        if not result.final.startswith("ERR busy"):
            return result
        time.sleep(0.05)
    pytest.fail(f"server stayed busy for tenant {tenant}")


class TestFastForwardResume:
    def test_torn_stream_resumes_byte_identically(self, make_server,
                                                  tmp_path):
        host = make_server(session=resume_session_config(tmp_path))
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        text, bindings, trace = tenant_trace_text(RACY_SEED)
        # Kill the stream mid-record, well past the checkpoint cadence.
        torn = client.stream_text("web", bindings, text,
                                  truncate_at=(len(text) * 3) // 4)
        assert torn.status == "disconnected"
        attempts = client.stream_until_done("web", bindings, text)
        final = attempts[-1]
        assert final.status == "done", attempts
        assert final.resumed > 0  # the server really fast-forwarded
        assert served_races(control, "web") \
            == offline_race_lines(trace, bindings)
        stats = control.stats()
        assert stats["counters"]["tenants_resumed"] >= 1
        assert stats["counters"]["tenant_checkpoints_written"] >= 1

    def test_edited_trace_rejects_checkpoint_then_fresh(self, make_server,
                                                        tmp_path):
        host = make_server(session=resume_session_config(tmp_path))
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        text, bindings, trace = tenant_trace_text(RACY_SEED)
        torn = client.stream_text("web", bindings, text,
                                  truncate_at=(len(text) * 3) // 4)
        assert torn.status == "disconnected"
        # "Edit" the trace: swap the first two fork records.  Same
        # events, different prefix — the fingerprint digest must veto
        # the fast-forward.
        lines = text.splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        edited = "\n".join(lines) + "\n"
        rejected = stream_past_busy(client, "web", bindings, edited)
        assert rejected.resumed > 0
        assert rejected.final.startswith("ERR checkpoint-rejected")
        # The dumb-client retry then gets a fresh, correct analysis of
        # the edited trace.
        final = client.stream_until_done("web", bindings, edited)[-1]
        assert final.status == "done", final
        assert final.ack == "OK NEW"
        from repro.core.serialize import loads_trace
        assert served_races(control, "web") \
            == offline_race_lines(loads_trace(edited), bindings)

    def test_corrupt_checkpoint_degrades_to_fresh(self, make_server,
                                                  tmp_path):
        host = make_server(session=resume_session_config(tmp_path))
        client = ServiceClient(host.config.socket_path)
        control = ControlClient(host.config.control_path)
        text, bindings, trace = tenant_trace_text(RACY_SEED)
        torn = client.stream_text("web", bindings, text,
                                  truncate_at=(len(text) * 3) // 4)
        assert torn.status == "disconnected"
        path = tenant_checkpoint_path(str(tmp_path / "ckpt"), "web")
        _wait_for(lambda: os.path.exists(path), timeout=30,
                  what="the disconnect checkpoint")
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        final = stream_past_busy(client, "web", bindings, text)
        assert final.ack == "OK NEW"  # degraded, not dead
        assert final.status == "done"
        assert served_races(control, "web") \
            == offline_race_lines(trace, bindings)
        assert control.stats()["counters"][
            "tenant_checkpoints_rejected"] >= 1

    def test_changed_bindings_silently_start_fresh(self, make_server,
                                                   tmp_path):
        host = make_server(session=resume_session_config(tmp_path))
        client = ServiceClient(host.config.socket_path)
        text, bindings, _ = tenant_trace_text(RACY_SEED)
        torn = client.stream_text("web", bindings, text,
                                  truncate_at=(len(text) * 3) // 4)
        assert torn.status == "disconnected"
        other_text, other_bindings, other_trace = tenant_trace_text(
            SECOND_SEED)
        assert other_bindings != bindings
        final = stream_past_busy(client, "web", other_bindings, other_text)
        assert final.ack == "OK NEW"
        assert final.status == "done"


# -- satellite 3: concurrent writers, kill -9 --------------------------------

def _slow_writer(socket_path: str, tenant: str, seed: int,
                 delay: float) -> None:
    """Stream one tenant's trace one record at a time, forever slowly.

    Module-level so the ``spawn`` start method can import it.  The
    parent SIGKILLs this process mid-stream; the trailing hold keeps the
    socket open so the kill is what ends the stream, not completion.
    """
    import socket as socketlib

    from repro.service.protocol import encode_hello
    from repro.testing.workloads import tenant_trace_text as make_text

    text, bindings, _ = make_text(seed, min_ops=KILL_OPS, max_ops=KILL_OPS)
    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.connect(socket_path)
    sock.sendall((encode_hello(tenant, bindings) + "\n").encode())
    sock.makefile("rb").readline()  # ack
    for line in text.splitlines():
        sock.sendall((line + "\n").encode())
        time.sleep(delay)
    time.sleep(600)


def _wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {what}")


def _status_events(control, tenant) -> int:
    for line in control.status():
        if line.startswith(f"{tenant} "):
            for field in line.split():
                if field.startswith("events="):
                    return int(field[len("events="):])
    return 0


class TestKillNineWriters:
    def test_concurrent_sigkilled_writers_resume_from_shared_dir(
            self, make_server, tmp_path, start_method):
        host = make_server(session=resume_session_config(tmp_path))
        control = ControlClient(host.config.control_path)
        client = ServiceClient(host.config.socket_path)
        ckpt_dir = str(tmp_path / "ckpt")
        ctx = multiprocessing.get_context(start_method)
        writers = {
            "alpha": (RACY_SEED,
                      ctx.Process(target=_slow_writer, daemon=True,
                                  args=(host.config.socket_path, "alpha",
                                        RACY_SEED, 0.003))),
            "beta": (SECOND_SEED,
                     ctx.Process(target=_slow_writer, daemon=True,
                                 args=(host.config.socket_path, "beta",
                                       SECOND_SEED, 0.003))),
        }
        for _, process in writers.values():
            process.start()
        try:
            # Let both sessions get well past the checkpoint cadence,
            # then kill -9 both clients mid-stream.
            for tenant in writers:
                _wait_for(lambda t=tenant: _status_events(control, t) >= 40,
                          timeout=60,
                          what=f"{tenant} to stream 40 events")
            for _, process in writers.values():
                os.kill(process.pid, signal.SIGKILL)
            for _, process in writers.values():
                process.join(timeout=10)
                assert process.exitcode == -signal.SIGKILL
            # The server notices both EOFs and parks both tenants'
            # checkpoints in the *shared* directory, under distinct
            # namespaced names.
            paths = {tenant: tenant_checkpoint_path(ckpt_dir, tenant)
                     for tenant in writers}
            assert len(set(paths.values())) == 2
            for tenant, path in paths.items():
                _wait_for(lambda p=path: os.path.exists(p), timeout=30,
                          what=f"checkpoint for {tenant}")
            # Both tenants reconnect, fast-forward, and finish with
            # reports byte-identical to offline analysis.
            for tenant, (seed, _) in writers.items():
                text, bindings, trace = tenant_trace_text(
                    seed, min_ops=KILL_OPS, max_ops=KILL_OPS)
                attempts = client.stream_until_done(tenant, bindings, text)
                final = attempts[-1]
                assert final.status == "done", (tenant, attempts)
                assert any(a.resumed > 0 for a in attempts), (tenant,
                                                              attempts)
                observed = served_races(control, tenant)
                assert observed == offline_race_lines(trace, bindings), \
                    tenant
            assert control.stats()["counters"]["tenants_resumed"] >= 2
        finally:
            for _, process in writers.values():
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5)
