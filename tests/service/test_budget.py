"""Per-tenant memory budgets: forced windows, strikes, suspension."""

import pytest

from repro.core.detector import CommutativityRaceDetector
from repro.core.stream import StreamAnalyzer
from repro.obs import Registry
from repro.service.budget import BudgetConfig, TenantBudget
from repro.specs import bundled_objects
from repro.testing.workloads import build_tenant_trace, tenant_program
from tests.support import race_snapshot

RACY_SEED = 18  # a seeded tenant workload with races and a real footprint


def analyzed_pair(seed=RACY_SEED):
    """(trace, bindings) plus a fresh registered StreamAnalyzer."""
    trace, bindings = build_tenant_trace(tenant_program(seed))
    registry = bundled_objects()
    analyzer = StreamAnalyzer(root=trace.root, window=16)
    for name, kind in bindings.items():
        analyzer.register_object(name, registry[kind].representation())
    return trace, bindings, analyzer


class TestConfig:
    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError, match="max_points"):
            BudgetConfig(max_points=0)

    def test_rejects_nonpositive_suspend_after(self):
        with pytest.raises(ValueError, match="suspend_after"):
            BudgetConfig(suspend_after=0)

    def test_unlimited_is_always_ok(self):
        _, _, analyzer = analyzed_pair()
        budget = TenantBudget(BudgetConfig(), "t")
        assert budget.check(analyzer) == "ok"
        assert budget.forced_windows == 0


class TestEnforcement:
    def test_squeeze_forces_windows_and_preserves_reports(self):
        trace, bindings, analyzer = analyzed_pair()
        obs = Registry()
        budget = TenantBudget(BudgetConfig(max_points=8,
                                           suspend_after=1_000_000),
                              "t", obs=obs)
        for index, event in enumerate(trace):
            analyzer.process(event)
            if index % 16 == 0:
                assert budget.check(analyzer) in ("ok", "forced")
        analyzer.finish()
        assert budget.forced_windows > 0
        assert not budget.suspended
        counters = obs.snapshot()["counters"]
        assert counters["budget_forced_windows"] == budget.forced_windows

        # The squeezed run's report is byte-identical to an unconstrained
        # offline analysis — forced maintenance is report-preserving.
        registry = bundled_objects()
        offline = CommutativityRaceDetector(root=trace.root)
        for name, kind in bindings.items():
            offline.register_object(name, registry[kind].representation())
        offline.run(trace)
        assert [race_snapshot(r) for r in analyzer.races] \
            == [race_snapshot(r) for r in offline.races]

    def test_hopeless_budget_suspends_after_strikes(self):
        trace, _, analyzer = analyzed_pair()
        obs = Registry()
        budget = TenantBudget(BudgetConfig(max_points=1, suspend_after=2),
                              "t", obs=obs)
        verdicts = []
        for event in trace:
            analyzer.process(event)
            verdict = budget.check(analyzer)
            verdicts.append(verdict)
            if verdict == "suspend":
                break
        assert budget.suspended
        assert verdicts[-1] == "suspend"
        # Two strikes means exactly two failed forced windows preceded it.
        assert verdicts.count("forced") >= 1
        assert obs.snapshot()["counters"]["budget_suspensions"] == 1
        # Idempotent once tripped.
        assert budget.check(analyzer) == "suspend"

    def test_recovery_resets_strikes(self):
        trace, _, analyzer = analyzed_pair()
        budget = TenantBudget(BudgetConfig(max_points=60, suspend_after=2),
                              "t")
        for event in trace:
            analyzer.process(event)
            if budget.check(analyzer) == "suspend":
                pytest.fail("a recoverable footprint must never suspend "
                            "with a generous limit")

    def test_gauge_tracks_footprint_hwm(self):
        trace, _, analyzer = analyzed_pair()
        obs = Registry()
        budget = TenantBudget(BudgetConfig(max_points=10_000), "t", obs=obs)
        for event in trace:
            analyzer.process(event)
            budget.check(analyzer)
        gauges = obs.snapshot()["gauges"]
        assert gauges["tenant_points_hwm[t]"] > 0
