"""Per-tenant checkpoint files: namespacing, integrity, atomicity."""

import os

import pytest

from repro.core.errors import CheckpointError
from repro.service.checkpoints import (TENANT_CHECKPOINT_VERSION,
                                       TenantCheckpoint,
                                       discard_tenant_checkpoint,
                                       load_tenant_checkpoint,
                                       save_tenant_checkpoint,
                                       tenant_checkpoint_path)


def checkpoint_for(tenant, events=10):
    return TenantCheckpoint(
        version=TENANT_CHECKPOINT_VERSION, tenant=tenant, root=0,
        events_processed=events, prefix_digest="d" * 64,
        bindings={"o": "counter"}, analyzer=None)


class TestNamespacing:
    def test_colliding_slugs_get_distinct_paths(self):
        # "a/b" and "a_b" sanitize to the same slug; the content-hash
        # suffix is what keeps two such tenants from sharing a file.
        first = tenant_checkpoint_path("/ckpt", "a/b")
        second = tenant_checkpoint_path("/ckpt", "a_b")
        assert first != second
        assert os.path.dirname(first) == "/ckpt"

    def test_hostile_names_stay_inside_the_directory(self):
        path = tenant_checkpoint_path("/ckpt", "../../etc/passwd")
        assert os.path.dirname(path) == "/ckpt"

    def test_long_names_are_bounded(self):
        path = tenant_checkpoint_path("/ckpt", "x" * 128)
        assert len(os.path.basename(path)) < 100


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        directory = str(tmp_path)
        saved = checkpoint_for("web-1")
        path = save_tenant_checkpoint(directory, saved)
        assert os.path.exists(path)
        loaded = load_tenant_checkpoint(directory, "web-1")
        assert loaded.events_processed == 10
        assert loaded.bindings == {"o": "counter"}

    def test_absent_is_none(self, tmp_path):
        assert load_tenant_checkpoint(str(tmp_path), "ghost") is None

    def test_two_tenants_share_a_directory(self, tmp_path):
        directory = str(tmp_path)
        save_tenant_checkpoint(directory, checkpoint_for("a", events=1))
        save_tenant_checkpoint(directory, checkpoint_for("b", events=2))
        assert load_tenant_checkpoint(directory, "a").events_processed == 1
        assert load_tenant_checkpoint(directory, "b").events_processed == 2

    def test_discard_is_idempotent(self, tmp_path):
        directory = str(tmp_path)
        save_tenant_checkpoint(directory, checkpoint_for("a"))
        discard_tenant_checkpoint(directory, "a")
        discard_tenant_checkpoint(directory, "a")
        assert load_tenant_checkpoint(directory, "a") is None

    def test_no_tmp_droppings(self, tmp_path):
        directory = str(tmp_path)
        save_tenant_checkpoint(directory, checkpoint_for("a"))
        save_tenant_checkpoint(directory, checkpoint_for("a", events=20))
        assert [name for name in os.listdir(directory)
                if name.startswith(".repro-ckpt-")] == []


class TestResumeMetadata:
    def test_declared_events_round_trips(self, tmp_path):
        directory = str(tmp_path)
        saved = checkpoint_for("web-1")
        saved.declared_events = 133
        save_tenant_checkpoint(directory, saved)
        assert load_tenant_checkpoint(directory,
                                      "web-1").declared_events == 133

    def test_headerless_reconnect_adopts_checkpointed_count(self, tmp_path):
        # A writer killed before re-sending the header reconnects with no
        # declared count; the session adopts the checkpointed one so the
        # resumed analysis can still recognize end-of-trace.
        from repro.service.session import FAST_FORWARD, SessionConfig, \
            TenantSession
        directory = str(tmp_path)
        saved = checkpoint_for("web-1")
        saved.declared_events = 133
        save_tenant_checkpoint(directory, saved)
        session = TenantSession(
            "web-1", {"o": "counter"},
            SessionConfig(checkpoint_dir=directory))
        assert session.prepare_resume() == 10
        session.start(root=0, declared_events=None)
        assert session.state is FAST_FORWARD
        assert session.declared_events == 133


class TestIntegrity:
    def test_truncation_is_detected(self, tmp_path):
        directory = str(tmp_path)
        path = save_tenant_checkpoint(directory, checkpoint_for("a"))
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-3])
        with pytest.raises(CheckpointError, match="truncated"):
            load_tenant_checkpoint(directory, "a")

    def test_corruption_is_detected(self, tmp_path):
        directory = str(tmp_path)
        path = save_tenant_checkpoint(directory, checkpoint_for("a"))
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="digest"):
            load_tenant_checkpoint(directory, "a")

    def test_version_skew_is_rejected(self, tmp_path):
        directory = str(tmp_path)
        bad = checkpoint_for("a")
        bad.version = TENANT_CHECKPOINT_VERSION + 1
        save_tenant_checkpoint(directory, bad)
        with pytest.raises(CheckpointError, match="version"):
            load_tenant_checkpoint(directory, "a")

    def test_phase_a_checkpoints_are_not_tenant_checkpoints(self, tmp_path):
        # Same sealed container, different magic: the families must not
        # masquerade as one another.
        from repro.core.checkpoint import write_sealed_payload
        directory = str(tmp_path)
        path = tenant_checkpoint_path(directory, "a")
        write_sealed_payload(path, b"payload")  # phase-A magic
        with pytest.raises(CheckpointError, match="magic"):
            load_tenant_checkpoint(directory, "a")
