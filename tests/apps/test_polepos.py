"""The PolePosition circuits."""

import pytest

from repro.apps.polepos.circuits import (CIRCUITS, CircuitConfig,
                                         circuit_names, get_circuit,
                                         run_circuit)
from repro.core.races import CommutativityRace
from repro.runtime.analyzers import FastTrackAnalyzer, Rd2Analyzer
from repro.runtime.monitor import Monitor


def small(config, ops=25):
    return CircuitConfig(**{**config.__dict__, "ops_per_worker": ops})


class TestCatalog:
    def test_all_table2_rows_present(self):
        assert set(circuit_names()) == {
            "ComplexConcurrency", "ComplexConcurrency-alt",
            "QueryCentricConcurrency", "InsertCentricConcurrency",
            "Complex", "NestedLists"}

    def test_get_circuit(self):
        assert get_circuit("Complex").workers == 1
        with pytest.raises(KeyError):
            get_circuit("Monaco")

    def test_single_threaded_circuits(self):
        assert CIRCUITS["Complex"].workers == 1
        assert CIRCUITS["NestedLists"].workers == 1

    def test_mix_weights_positive(self):
        for config in CIRCUITS.values():
            ops, weights = config.weights()
            assert len(ops) == len(weights)
            assert all(weight > 0 for weight in weights)


class TestExecution:
    def test_runs_expected_operation_count(self):
        config = small(CIRCUITS["ComplexConcurrency"], ops=20)
        result = run_circuit(config, Monitor(), seed=0)
        assert result.operations == config.workers * 20

    def test_reproducible_for_fixed_seed(self):
        config = small(CIRCUITS["ComplexConcurrency"], ops=15)
        monitor1 = Monitor(analyzers=[Rd2Analyzer()])
        monitor2 = Monitor(analyzers=[Rd2Analyzer()])
        run_circuit(config, monitor1, seed=4)
        run_circuit(config, monitor2, seed=4)
        races1 = [str(r) for r in monitor1.races()]
        races2 = [str(r) for r in monitor2.races()]
        assert races1 == races2

    def test_final_counts_reported(self):
        config = small(CIRCUITS["ComplexConcurrency"], ops=15)
        result = run_circuit(config, Monitor(), seed=0)
        assert set(result.final_counts) == set(config.tables)


class TestRaceProfiles:
    def rd2_objects(self, name, ops=30, seed=0):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        run_circuit(small(CIRCUITS[name], ops=ops), monitor, seed=seed)
        return {race.obj for race in rd2.races()}, rd2

    def test_query_centric_is_commutativity_clean(self):
        objects, _ = self.rd2_objects("QueryCentricConcurrency")
        assert objects == set()

    def test_complex_single_is_commutativity_clean(self):
        objects, _ = self.rd2_objects("Complex")
        assert objects == set()

    def test_nested_lists_is_commutativity_clean(self):
        objects, _ = self.rd2_objects("NestedLists")
        assert objects == set()

    def test_complex_concurrency_hits_the_h2_maps(self):
        objects, _ = self.rd2_objects("ComplexConcurrency", ops=60)
        names = {str(obj) for obj in objects}
        assert any("freedPageSpace" in name for name in names)
        assert any("chunks" in name for name in names)

    def test_insert_centric_races_only_on_store_bookkeeping(self):
        objects, _ = self.rd2_objects("InsertCentricConcurrency", ops=60)
        names = {str(obj) for obj in objects}
        assert names, "expected bookkeeping races"
        assert all("map/" not in name for name in names), \
            "private keys: the table map itself must be race-free"

    def test_fasttrack_flags_statistics_fields_in_query_centric(self):
        fasttrack = FastTrackAnalyzer()
        monitor = Monitor(analyzers=[fasttrack])
        run_circuit(small(CIRCUITS["QueryCentricConcurrency"], ops=30),
                    monitor, seed=0)
        locations = {str(race.location) for race in fasttrack.races()}
        assert locations, "plain counters must race at the memory level"
        assert any("stmtCount" in loc or "rowsRead" in loc
                   for loc in locations)
