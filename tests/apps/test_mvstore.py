"""The MVStore substitute and its database layer."""

import pytest

from repro.apps.mvstore import Database, MVStore, PAGE_SIZE
from repro.core.events import NIL
from repro.runtime.monitor import Monitor


class TestMVMap:
    def setup_method(self):
        self.monitor = Monitor()
        self.store = MVStore(self.monitor, chunk_count=4, name="s")

    def test_put_get_roundtrip(self):
        table = self.store.open_map("t")
        assert table.put("k", "v") is NIL
        assert table.get("k") == "v"
        assert table.size() == 1

    def test_open_map_is_idempotent(self):
        assert self.store.open_map("t") is self.store.open_map("t")

    def test_remove(self):
        table = self.store.open_map("t")
        table.put("k", "v")
        assert table.remove("k") == "v"
        assert table.remove("k") is NIL
        assert not table.contains("k")


class TestBookkeeping:
    def setup_method(self):
        self.monitor = Monitor()
        self.store = MVStore(self.monitor, chunk_count=4, name="s")
        self.table = self.store.open_map("t")

    def test_replacement_frees_page_space(self):
        self.table.put("k", "v1")
        assert all(v is NIL or v == 0
                   for v in self.store.freed_page_space.snapshot().values()) \
            or not self.store.freed_page_space.snapshot()
        self.table.put("k", "v2")   # replacement frees the old page
        chunk = self.store.chunk_of("t", "k")
        assert self.store.freed_page_space.get(chunk) == PAGE_SIZE

    def test_fresh_insert_does_not_free(self):
        self.table.put("k", "v1")
        assert len(self.store.freed_page_space) == 0

    def test_reads_materialize_chunks_once(self):
        self.table.put("k", "v")
        self.table.get("k")
        self.table.get("k")
        assert self.store.chunk_loads.peek() == 1
        assert self.store.cache_hits.peek() == 1

    def test_write_invalidates_chunk_cache(self):
        self.table.put("k", "v1")
        self.table.get("k")         # load chunk
        self.table.put("k", "v2")   # invalidate
        self.table.get("k")         # reload
        assert self.store.chunk_loads.peek() == 2

    def test_chunk_of_is_deterministic(self):
        assert (self.store.chunk_of("t", "k")
                == self.store.chunk_of("t", "k"))
        assert 0 <= self.store.chunk_of("t", "k") < 4

    def test_unsaved_memory_accumulates(self):
        self.table.put("a", 1)
        self.table.put("b", 2)
        assert self.store.unsaved_memory.peek() == 2 * PAGE_SIZE


class TestCommit:
    def test_commit_bumps_version_and_resets_memory(self):
        monitor = Monitor()
        store = MVStore(monitor, name="s")
        table = store.open_map("t")
        table.put("a", 1)
        version = store.commit()
        assert version == 1
        assert store.current_version.peek() == 1
        assert store.unsaved_memory.peek() == 0
        assert store.commit() == 2

    def test_commit_consumes_freed_space(self):
        monitor = Monitor()
        store = MVStore(monitor, chunk_count=1, name="s")
        table = store.open_map("t")
        table.put("k", 1)
        table.put("k", 2)     # frees into chunk 0
        assert store.freed_page_space.get(0) == PAGE_SIZE
        store.commit()        # version 1 % 1 == 0: consumes chunk 0
        assert store.freed_page_space.get(0) == 0


class TestDatabase:
    def setup_method(self):
        self.db = Database(Monitor(), name="db")
        self.session = self.db.connect()

    def test_insert_select(self):
        assert self.session.insert("t", "k", ("row",))
        assert self.session.select("t", "k") == ("row",)
        assert self.session.select("t", "missing") is None

    def test_duplicate_insert_reports_false(self):
        assert self.session.insert("t", "k", ("a",))
        assert not self.session.insert("t", "k", ("b",))

    def test_update_reports_presence(self):
        assert not self.session.update("t", "k", ("a",))
        assert self.session.update("t", "k", ("b",))

    def test_delete(self):
        self.session.insert("t", "k", ("a",))
        assert self.session.delete("t", "k")
        assert not self.session.delete("t", "k")

    def test_select_range_skips_absent(self):
        for index in range(3):
            self.session.insert("t", f"k{index}", (index,))
        rows = self.session.select_range("t", ["k0", "nope", "k2"])
        assert rows == [(0,), (2,)]

    def test_count(self):
        self.session.insert("t", "a", (1,))
        self.session.insert("t", "b", (2,))
        assert self.session.count("t") == 2

    def test_statement_statistics(self):
        self.session.insert("t", "a", (1,))
        self.session.select("t", "a")
        assert self.db.statements_executed.peek() == 2
        assert self.db.rows_read.peek() == 1

    def test_commit_through_session(self):
        assert self.session.commit() == 1

    def test_close_releases_objects(self):
        from repro.runtime.analyzers import Rd2Analyzer
        rd2 = Rd2Analyzer()
        db = Database(Monitor(analyzers=[rd2]), name="db2")
        db.connect().insert("t", "k", (1,))
        before = len(list(rd2.detector.registered_objects()))
        db.close()
        after = len(list(rd2.detector.registered_objects()))
        assert after < before
