"""Transactional database sessions and app-level atomicity analysis."""

import pytest

from repro.apps.mvstore import Database
from repro.atomicity import AtomicityChecker, ConflictMode
from repro.runtime.monitor import Monitor
from repro.sched.scheduler import Scheduler
from repro.specs.dictionary import dictionary_representation


def run_banking(seed, transactional_reader=True):
    """A balance-transfer app: read-compute-write inside a transaction
    while another session updates the same row."""
    monitor = Monitor(record_trace=True)
    scheduler = Scheduler(monitor, seed=seed)
    database = Database(monitor, name=f"bank/{seed}")
    database.bind_scheduler(scheduler)

    def main():
        setup = database.connect()
        setup.insert("accounts", "alice", (100,))
        setup.insert("accounts", "bob", (50,))

        def transfer():
            session = database.connect()
            with session.transaction():
                (alice_balance,) = session.select("accounts", "alice")
                session.update("accounts", "alice", (alice_balance - 10,))

        def direct_update():
            session = database.connect()
            session.update("accounts", "alice", (999,))

        scheduler.join_all([scheduler.spawn(transfer),
                            scheduler.spawn(direct_update),
                            scheduler.spawn(transfer)])

    scheduler.run(main)
    return monitor, database


def app_checker(database):
    checker = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    # Register every store map the app touched with the dictionary rep.
    for obj_id in {e.action.obj for e in database.monitor.trace.actions()}:
        checker.register_object(obj_id, dictionary_representation())
    return checker


class TestSessionTransactions:
    def test_transaction_context_emits_boundaries(self):
        monitor = Monitor(record_trace=True)
        database = Database(monitor, name="db")
        session = database.connect()
        with session.transaction() as txn:
            txn.insert("t", "k", (1,))
        from repro.core.events import EventKind
        kinds = [e.kind for e in monitor.trace]
        assert kinds[0] is EventKind.BEGIN
        assert kinds[-1] is EventKind.COMMIT

    def test_transaction_yields_the_session(self):
        database = Database(Monitor(), name="db")
        session = database.connect()
        with session.transaction() as txn:
            assert txn is session

    def test_uninstrumented_transactions_are_free(self):
        monitor = Monitor()
        database = Database(monitor, name="db")
        with database.connect().transaction():
            pass
        assert monitor.events_emitted == 0


class TestAppLevelAtomicity:
    def test_some_interleaving_breaks_the_transfer_block(self):
        flagged = []
        for seed in range(10):
            monitor, database = run_banking(seed)
            database.monitor = monitor  # for app_checker
            report = app_checker(database).analyze(monitor.trace)
            flagged.append(not report.serializable)
        assert any(flagged), \
            "a direct update should intrude into some transfer block"

    def test_serial_schedule_is_serializable(self):
        # switch_probability irrelevant: use one worker only.
        monitor = Monitor(record_trace=True)
        scheduler = Scheduler(monitor, seed=0)
        database = Database(monitor, name="serial")
        database.bind_scheduler(scheduler)

        def main():
            session = database.connect()
            session.insert("accounts", "alice", (100,))
            with session.transaction():
                (balance,) = session.select("accounts", "alice")
                session.update("accounts", "alice", (balance - 10,))

        scheduler.run(main)
        database.monitor = monitor
        report = app_checker(database).analyze(monitor.trace)
        assert report.serializable
