"""The DynamicEndpointSnitch substitute."""

import pytest

from repro.apps.snitch import (DynamicEndpointSnitch, SnitchTestConfig,
                               run_snitch_test)
from repro.core.events import NIL
from repro.runtime.analyzers import FastTrackAnalyzer, Rd2Analyzer
from repro.runtime.monitor import Monitor


class TestSnitchUnit:
    def setup_method(self):
        self.monitor = Monitor()
        self.snitch = DynamicEndpointSnitch(self.monitor, ["h1", "h2"],
                                            name="s")

    def test_receive_timing_accumulates(self):
        self.snitch.receive_timing("h1", 4.0)
        self.snitch.receive_timing("h1", 6.0)
        count, total = self.snitch.samples.get("h1")
        assert count == 2
        assert total == 10.0

    def test_window_decay(self):
        for _ in range(DynamicEndpointSnitch.WINDOW + 1):
            self.snitch.receive_timing("h1", 2.0)
        count, _ = self.snitch.samples.get("h1")
        assert count <= DynamicEndpointSnitch.WINDOW + 1

    def test_update_scores_publishes_averages(self):
        self.snitch.receive_timing("h1", 4.0)
        self.snitch.receive_timing("h1", 6.0)
        self.snitch.receive_timing("h2", 1.0)
        hint = self.snitch.update_scores()
        assert hint == 2
        assert self.snitch.scores.get("h1") == 5.0
        assert self.snitch.scores.get("h2") == 1.0

    def test_best_endpoint_prefers_low_latency(self):
        self.snitch.receive_timing("h1", 9.0)
        self.snitch.receive_timing("h2", 1.0)
        self.snitch.update_scores()
        assert self.snitch.best_endpoint() == "h2"

    def test_best_endpoint_none_without_scores(self):
        assert self.snitch.best_endpoint() is None

    def test_update_scores_skips_unsampled_hosts(self):
        self.snitch.receive_timing("h1", 3.0)
        self.snitch.update_scores()
        assert self.snitch.scores.get("h2") is NIL


class TestSnitchTest:
    def test_run_counts(self):
        config = SnitchTestConfig(producers=2, timings_per_producer=20,
                                  score_updates=5)
        result = run_snitch_test(config, Monitor(), seed=0)
        assert result.timings == 40
        assert result.score_rounds == 5
        assert result.final_scores  # at least the hot host

    def test_reproducible(self):
        config = SnitchTestConfig(producers=2, timings_per_producer=15,
                                  score_updates=4)
        first = run_snitch_test(config, Monitor(), seed=7)
        second = run_snitch_test(config, Monitor(), seed=7)
        assert first.final_scores == second.final_scores
        assert first.stale_hints == second.stale_hints

    def test_rd2_finds_samples_and_scores_races(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        config = SnitchTestConfig(producers=3, timings_per_producer=40,
                                  score_updates=12)
        run_snitch_test(config, monitor, seed=1)
        objects = {str(race.obj) for race in rd2.races()}
        assert any("samples" in obj for obj in objects)
        assert any("scores" in obj for obj in objects)

    def test_the_papers_size_hint_race(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        config = SnitchTestConfig(producers=3, timings_per_producer=40,
                                  score_updates=12)
        run_snitch_test(config, monitor, seed=1)
        size_races = [race for race in rd2.races()
                      if "samples" in str(race.obj)
                      and ("size" in str(race.point)
                           or "resize" in str(race.point)
                           or "size" in str(race.prior_point)
                           or "resize" in str(race.prior_point))]
        assert size_races, "expected samples.size() vs put races"

    def test_fasttrack_flags_the_plain_counters(self):
        fasttrack = FastTrackAnalyzer()
        monitor = Monitor(analyzers=[fasttrack])
        config = SnitchTestConfig(producers=3, timings_per_producer=25,
                                  score_updates=8)
        run_snitch_test(config, monitor, seed=1)
        locations = {str(race.location) for race in fasttrack.races()}
        assert any("updateCount" in loc for loc in locations)
