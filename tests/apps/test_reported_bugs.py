"""The paper's three reported findings (Section 7), as regression tests.

1. H2: concurrent accesses to the ``freedPageSpace`` map of the MVStore
   can corrupt server state (lost freed-space updates).
2. H2: concurrent accesses to the ``chunks`` map can compute the same
   result multiple times (duplicated chunk loads).
3. Cassandra: entries are added to the snitch's ``samples`` map while its
   size is used as a performance hint, making the hint obsolete.

Each test drives the substitute application under the commutativity race
detector and (a) finds the race on the named map, (b) demonstrates the
harmful consequence the paper describes.
"""

import pytest

from repro.apps.mvstore import Database, PAGE_SIZE
from repro.apps.snitch import SnitchTestConfig, run_snitch_test
from repro.core.events import NIL
from repro.runtime.analyzers import Rd2Analyzer
from repro.runtime.monitor import Monitor
from repro.sched.scheduler import Scheduler


def run_replacement_storm(seed, analyzers=()):
    """Workers replacing rows concurrently: drives bugs 1 and 2."""
    monitor = Monitor(analyzers=list(analyzers))
    scheduler = Scheduler(monitor, seed=seed)
    database = Database(monitor, chunk_count=2, name=f"h2bug/{seed}")
    database.bind_scheduler(scheduler)

    def main():
        setup = database.connect()
        for index in range(4):
            setup.insert("t", f"k{index}", ("seed",))

        def worker(worker_id):
            session = database.connect()
            for step in range(10):
                session.update("t", f"k{(worker_id + step) % 4}",
                               (worker_id, step))
                if step % 3 == 0:
                    session.select("t", f"k{step % 4}")

        scheduler.join_all([scheduler.spawn(worker, w) for w in range(3)])

    scheduler.run(main)
    return monitor, database


class TestBug1FreedPageSpace:
    def test_rd2_reports_the_race(self):
        rd2 = Rd2Analyzer()
        monitor, _ = run_replacement_storm(seed=2, analyzers=[rd2])
        assert any("freedPageSpace" in str(race.obj)
                   for race in rd2.races())

    def test_updates_can_be_lost(self):
        """The harmful consequence: recorded freed space undercounts."""
        outcomes = []
        for seed in range(10):
            _, database = run_replacement_storm(seed=seed)
            store = database.store
            recorded = sum(
                value for value in store.freed_page_space.snapshot().values()
                if value is not NIL)
            # Ground truth: every replacement freed one page.  30 updates
            # over 4 pre-seeded keys: first update per key is a replacement
            # and every subsequent one too (keys always present).
            true_freed = 30 * PAGE_SIZE
            outcomes.append(recorded < true_freed)
        assert any(outcomes), \
            "expected at least one interleaving to lose a freed-space update"


class TestBug2ChunksDuplicatedWork:
    def test_rd2_reports_the_race(self):
        rd2 = Rd2Analyzer()
        monitor, _ = run_replacement_storm(seed=2, analyzers=[rd2])
        assert any("chunks" in str(race.obj) for race in rd2.races())

    def test_duplicate_chunk_loads_happen(self):
        duplicated = []
        for seed in range(10):
            _, database = run_replacement_storm(seed=seed)
            store = database.store
            loads = store.chunk_loads.peek()
            live_chunks = len(store.chunks)
            # More loads than distinct chunks ever cached means some chunk
            # was materialized more than once between invalidations...
            # conservative check: loads strictly exceed invalidations + live.
            duplicated.append(loads > live_chunks)
        assert any(duplicated)


class TestBug3SnitchSizeHint:
    def test_rd2_reports_the_race_and_hint_goes_stale(self):
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        config = SnitchTestConfig(producers=3, timings_per_producer=50,
                                  score_updates=15)
        stale = 0
        result = run_snitch_test(config, monitor, seed=0)
        stale += result.stale_hints
        races_on_samples = [race for race in rd2.races()
                            if "samples" in str(race.obj)]
        assert races_on_samples
        size_involved = [race for race in races_on_samples
                         if "size" in str(race.point)
                         or "resize" in str(race.point)
                         or "size" in str(race.prior_point)
                         or "resize" in str(race.prior_point)]
        assert size_involved, "the size-hint race itself"

    def test_hint_observed_stale_on_some_seed(self):
        config = SnitchTestConfig(producers=3, timings_per_producer=40,
                                  score_updates=15)
        stale_counts = [run_snitch_test(config, Monitor(), seed=s).stale_hints
                        for s in range(6)]
        assert any(count > 0 for count in stale_counts), \
            "expected the size hint to be observably stale on some schedule"
