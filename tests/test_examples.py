"""Every example script must run green (each asserts what it shows)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=180)
    assert completed.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{completed.stdout}\n"
        f"--- stderr ---\n{completed.stderr}")
    assert completed.stdout.strip(), f"{script.name} printed nothing"
