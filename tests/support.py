"""Shared helpers and hypothesis strategies for the test-suite.

The recurring need is *consistent* random traces: fork/join/lock structure
plus actions whose return values are realizable at their linearization
points.  ``trace_strategy`` builds them via the executable semantics, for
any bundled object kind.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from hypothesis import strategies as st

from repro.core.events import Action
from repro.core.trace import Trace, TraceBuilder
from repro.specs import BundledObject, bundled_objects


# -- consistent random traces ------------------------------------------------------
#
# A trace is driven by a compact "program": a seed, a thread count, an op
# count and a lock-usage rate.  Hypothesis shrinks over these integers, and
# the builder below deterministically expands them into a consistent trace.

@st.composite
def trace_programs(draw,
                   kinds: Tuple[str, ...] = ("dictionary", "set", "counter",
                                             "register", "msetlog",
                                             "accumulator", "queue")):
    kind = draw(st.sampled_from(kinds))
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    threads = draw(st.integers(min_value=1, max_value=4))
    ops = draw(st.integers(min_value=0, max_value=30))
    lock_rate = draw(st.sampled_from((0.0, 0.3, 1.0)))
    join_all = draw(st.booleans())
    return (kind, seed, threads, ops, lock_rate, join_all)


def build_trace(program, registry=None) -> Tuple[Trace, BundledObject]:
    """Expand a trace program into a consistent stamped trace."""
    kind, seed, threads, ops, lock_rate, join_all = program
    registry = registry or bundled_objects()
    bundled = registry[kind]
    semantics = bundled.semantics()
    state = semantics.initial_state()
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    worker_tids = list(range(1, threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)
    remaining = {tid: ops for tid in worker_tids}
    held: Dict[int, bool] = {tid: False for tid in worker_tids}
    while any(remaining.values()):
        tid = rng.choice([t for t, n in remaining.items() if n])
        use_lock = rng.random() < lock_rate
        if use_lock:
            builder.acquire(tid, "L")
        method, args = semantics.sample_invocation(rng)
        state, returns = semantics.apply(state, method, args)
        builder.action(tid, Action("obj", method, args, returns))
        if use_lock:
            builder.release(tid, "L")
        remaining[tid] -= 1
    if join_all:
        builder.join_all(0, worker_tids)
        method, args = semantics.sample_invocation(rng)
        state, returns = semantics.apply(state, method, args)
        builder.action(0, Action("obj", method, args, returns))
    return builder.build(), bundled


# -- multi-object traces (the sharded analyzer's natural workload) -----------------
#
# Same program-expansion idea, but the trace touches several shared objects
# of (possibly) different kinds, so object sharding has something to chew
# on.  ``random_multi_object_program`` is the plain-random twin used by the
# seeded differential loops (>=100 seeds without hypothesis machinery).

DEFAULT_KINDS: Tuple[str, ...] = ("dictionary", "set", "counter", "register",
                                  "msetlog", "accumulator", "queue")


@st.composite
def multi_object_programs(draw, kinds: Tuple[str, ...] = DEFAULT_KINDS,
                          max_objects: int = 4):
    count = draw(st.integers(min_value=1, max_value=max_objects))
    object_kinds = tuple(draw(st.sampled_from(kinds)) for _ in range(count))
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    threads = draw(st.integers(min_value=1, max_value=4))
    ops = draw(st.integers(min_value=0, max_value=40))
    lock_rate = draw(st.sampled_from((0.0, 0.3, 1.0)))
    join_all = draw(st.booleans())
    return (object_kinds, seed, threads, ops, lock_rate, join_all)


def random_multi_object_program(seed: int,
                                kinds: Tuple[str, ...] = DEFAULT_KINDS,
                                max_objects: int = 5,
                                max_threads: int = 4,
                                max_ops: int = 50):
    """A deterministic pseudo-random program for plain seed loops."""
    rng = random.Random(seed)
    count = rng.randint(1, max_objects)
    object_kinds = tuple(rng.choice(kinds) for _ in range(count))
    threads = rng.randint(1, max_threads)
    ops = rng.randint(0, max_ops)
    lock_rate = rng.choice((0.0, 0.3, 1.0))
    join_all = rng.random() < 0.5
    return (object_kinds, seed, threads, ops, lock_rate, join_all)


def build_multi_object_trace(program, registry=None):
    """Expand a multi-object program into (stamped trace, bindings).

    ``bindings`` maps object name (``"o0"``, ``"o1"``...) to its bundled
    kind — the shape detector registration and the CLI's ``--object``
    flags both want.  Each object evolves its own semantics state, so all
    recorded return values are realizable at their linearization points.
    """
    object_kinds, seed, threads, ops, lock_rate, join_all = program
    registry = registry or bundled_objects()
    bindings = {f"o{i}": kind for i, kind in enumerate(object_kinds)}
    semantics = {name: registry[kind].semantics()
                 for name, kind in bindings.items()}
    states = {name: sem.initial_state() for name, sem in semantics.items()}
    names = list(bindings)
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    worker_tids = list(range(1, threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)
    remaining = {tid: ops for tid in worker_tids}
    while any(remaining.values()):
        tid = rng.choice([t for t, n in remaining.items() if n])
        name = rng.choice(names)
        use_lock = rng.random() < lock_rate
        if use_lock:
            builder.acquire(tid, "L")
        method, args = semantics[name].sample_invocation(rng)
        states[name], returns = semantics[name].apply(states[name],
                                                      method, args)
        builder.action(tid, Action(name, method, args, returns))
        if use_lock:
            builder.release(tid, "L")
        remaining[tid] -= 1
    if join_all:
        builder.join_all(0, worker_tids)
        name = rng.choice(names)
        method, args = semantics[name].sample_invocation(rng)
        states[name], returns = semantics[name].apply(states[name],
                                                      method, args)
        builder.action(0, Action(name, method, args, returns))
    return builder.build(), bindings


# -- contention-adversarial traces (the epoch machinery's worst case) --------------
#
# The epoch representation is cheapest when points stay thread-local; these
# programs are built to deny it that: operations re-target recently touched
# arguments from *other* threads (non-commutative method pairs on the same
# access point → promotions and races), and workers are continuously joined
# and replaced by fresh tids (dead components inside carried epoch clocks →
# deflation, compaction and pruning all get real work).


def contention_program(seed: int, kinds: Tuple[str, ...] = DEFAULT_KINDS,
                       max_objects: int = 3, max_threads: int = 6,
                       max_ops: int = 60):
    """A deterministic adversarial program for plain seed loops."""
    rng = random.Random(seed ^ 0xC0117E57)
    count = rng.randint(1, max_objects)
    object_kinds = tuple(rng.choice(kinds) for _ in range(count))
    threads = rng.randint(2, max_threads)
    ops = rng.randint(10, max_ops)
    lock_rate = rng.choice((0.0, 0.1, 0.3))
    churn_rate = rng.choice((0.0, 0.1, 0.25))
    return (object_kinds, seed, threads, ops, lock_rate, churn_rate)


def build_contention_trace(program, registry=None, repeat_bias: float = 0.75,
                           lookback: int = 8):
    """Expand a contention program into (stamped trace, bindings).

    Like :func:`build_multi_object_trace` (every recorded return value is
    realizable at its linearization point), with two adversarial twists:

    * **argument re-targeting** — with probability ``repeat_bias`` an
      operation redraws its invocation a few times, preferring one whose
      arguments match something another thread touched within the last
      ``lookback`` actions on the same object.  Conflicting-schema pairs
      on the *same point value* (put/put, put/get on one key...) are
      exactly the non-commutative pairs Algorithm 1 must catch, and the
      cross-thread re-touch is what forces epoch promotions.
    * **tid churn** — with probability ``churn_rate`` per step, a live
      worker is joined into the root and replaced by a brand-new tid that
      inherits its remaining budget.  The tid space keeps growing, old
      components go dead inside carried epoch clocks, and every
      maintenance pass (deflation, compaction, pruning) sees the state it
      exists for.
    """
    object_kinds, seed, threads, ops, lock_rate, churn_rate = program
    registry = registry or bundled_objects()
    bindings = {f"o{i}": kind for i, kind in enumerate(object_kinds)}
    semantics = {name: registry[kind].semantics()
                 for name, kind in bindings.items()}
    states = {name: sem.initial_state() for name, sem in semantics.items()}
    names = list(bindings)
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    workers = list(range(1, threads + 1))
    next_tid = threads + 1
    for tid in workers:
        builder.fork(0, tid)
    remaining = {tid: ops for tid in workers}
    recent: Dict[str, List[Tuple[int, str, tuple]]] = {n: [] for n in names}
    while any(remaining.values()):
        live = [t for t, n in remaining.items() if n]
        tid = rng.choice(live)
        if rng.random() < churn_rate:
            # Retire this worker and hand its budget to a fresh tid: the
            # replacement is ordered after everything the old tid did
            # (join into root, fork from root), so the old component goes
            # dead while its stamps live on inside point clocks.
            builder.join(0, tid)
            budget = remaining.pop(tid)
            builder.fork(0, next_tid)
            remaining[next_tid] = budget
            tid = next_tid
            next_tid += 1
        name = rng.choice(names)
        use_lock = rng.random() < lock_rate
        if use_lock:
            builder.acquire(tid, "L")
        method, args = semantics[name].sample_invocation(rng)
        if rng.random() < repeat_bias:
            history = recent[name]
            for _ in range(4):
                if any(h_args == args and h_tid != tid
                       for h_tid, _, h_args in history):
                    break  # cross-thread re-touch found: keep it
                method, args = semantics[name].sample_invocation(rng)
        states[name], returns = semantics[name].apply(states[name],
                                                      method, args)
        builder.action(tid, Action(name, method, args, returns))
        history = recent[name]
        history.append((tid, method, args))
        del history[:-lookback]
        if use_lock:
            builder.release(tid, "L")
        remaining[tid] -= 1
    return builder.build(), bindings


def register_bindings(detector, bindings, registry=None, **register_kw):
    """Register every bound object's bundled representation on a detector."""
    registry = registry or bundled_objects()
    for name, kind in bindings.items():
        detector.register_object(name, registry[kind].representation(),
                                 **register_kw)
    return detector


def race_snapshot(race) -> dict:
    """A stable, JSON-able rendering of a CommutativityRace report.

    Used both by the golden-trace corpus (snapshots on disk) and by
    equivalence tests that compare verdicts across detector configurations
    where report *order* may legitimately differ.
    """
    def clock_items(clock):
        return [[str(tid), stamp] for tid, stamp in
                sorted(clock.items(), key=lambda kv: str(kv[0]))]

    return {
        "obj": str(race.obj),
        "tid": str(race.current_tid),
        "current": str(race.current),
        "point": str(race.point),
        "prior_point": str(race.prior_point),
        "current_clock": clock_items(race.current_clock),
        "prior_clock": clock_items(race.prior_clock),
    }


def verdict_keys(races) -> List[Tuple]:
    """Order- and clock-insensitive race identity (sorted).

    The adaptive detector reports a *narrower* prior clock (the epoch) for
    single-thread histories, so cross-configuration equivalence is stated
    on (object, action, point pair) identity — exactly the detector
    docstring's verdict-preservation promise.
    """
    return sorted((str(r.obj), str(r.current), str(r.point),
                   str(r.prior_point)) for r in races)


def sample_actions(kind: str, count: int = 60, seed: int = 13,
                   obj: str = "o") -> List[Action]:
    """Realizable actions of a bundled kind, reached by random executions."""
    bundled = bundled_objects()[kind]
    semantics = bundled.semantics()
    rng = random.Random(seed)
    actions: List[Action] = []
    state = semantics.initial_state()
    for index in range(count):
        if index % 9 == 0:
            state = semantics.initial_state()
        method, args = semantics.sample_invocation(rng)
        state, returns = semantics.apply(state, method, args)
        actions.append(Action(obj, method, args, returns))
    return actions
