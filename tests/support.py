"""Shared helpers and hypothesis strategies for the test-suite.

The recurring need is *consistent* random traces: fork/join/lock structure
plus actions whose return values are realizable at their linearization
points.  ``trace_strategy`` builds them via the executable semantics, for
any bundled object kind.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from hypothesis import strategies as st

from repro.core.events import Action
from repro.core.trace import Trace, TraceBuilder
from repro.specs import BundledObject, bundled_objects


# -- consistent random traces ------------------------------------------------------
#
# A trace is driven by a compact "program": a seed, a thread count, an op
# count and a lock-usage rate.  Hypothesis shrinks over these integers, and
# the builder below deterministically expands them into a consistent trace.

@st.composite
def trace_programs(draw,
                   kinds: Tuple[str, ...] = ("dictionary", "set", "counter",
                                             "register", "msetlog",
                                             "accumulator", "queue")):
    kind = draw(st.sampled_from(kinds))
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    threads = draw(st.integers(min_value=1, max_value=4))
    ops = draw(st.integers(min_value=0, max_value=30))
    lock_rate = draw(st.sampled_from((0.0, 0.3, 1.0)))
    join_all = draw(st.booleans())
    return (kind, seed, threads, ops, lock_rate, join_all)


def build_trace(program, registry=None) -> Tuple[Trace, BundledObject]:
    """Expand a trace program into a consistent stamped trace."""
    kind, seed, threads, ops, lock_rate, join_all = program
    registry = registry or bundled_objects()
    bundled = registry[kind]
    semantics = bundled.semantics()
    state = semantics.initial_state()
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    worker_tids = list(range(1, threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)
    remaining = {tid: ops for tid in worker_tids}
    held: Dict[int, bool] = {tid: False for tid in worker_tids}
    while any(remaining.values()):
        tid = rng.choice([t for t, n in remaining.items() if n])
        use_lock = rng.random() < lock_rate
        if use_lock:
            builder.acquire(tid, "L")
        method, args = semantics.sample_invocation(rng)
        state, returns = semantics.apply(state, method, args)
        builder.action(tid, Action("obj", method, args, returns))
        if use_lock:
            builder.release(tid, "L")
        remaining[tid] -= 1
    if join_all:
        builder.join_all(0, worker_tids)
        method, args = semantics.sample_invocation(rng)
        state, returns = semantics.apply(state, method, args)
        builder.action(0, Action("obj", method, args, returns))
    return builder.build(), bundled


def sample_actions(kind: str, count: int = 60, seed: int = 13,
                   obj: str = "o") -> List[Action]:
    """Realizable actions of a bundled kind, reached by random executions."""
    bundled = bundled_objects()[kind]
    semantics = bundled.semantics()
    rng = random.Random(seed)
    actions: List[Action] = []
    state = semantics.initial_state()
    for index in range(count):
        if index % 9 == 0:
            state = semantics.initial_state()
        method, args = semantics.sample_invocation(rng)
        state, returns = semantics.apply(state, method, args)
        actions.append(Action(obj, method, args, returns))
    return actions
