"""Commutativity-aware atomicity checking vs. classic Velodrome."""

import pytest

from repro.atomicity import AtomicityChecker, ConflictMode, atomic
from repro.core.events import NIL
from repro.core.trace import TraceBuilder
from repro.runtime.analyzers import NullAnalyzer
from repro.runtime.collections_rt import MonitoredCounter, MonitoredDict
from repro.runtime.monitor import Monitor
from repro.sched.scheduler import Scheduler
from repro.specs.counter import counter_representation
from repro.specs.dictionary import dictionary_representation


def commutativity_checker(*objects):
    checker = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    for obj, representation in objects:
        checker.register_object(obj, representation)
    return checker


def dict_checker():
    return commutativity_checker(("d", dictionary_representation()))


class TestSerializableCases:
    def test_serial_blocks_are_serializable(self):
        trace = (TraceBuilder(root=0)
                 .begin(0)
                 .invoke(0, "d", "put", "a", 1, returns=NIL)
                 .commit(0)
                 .begin(0)
                 .invoke(0, "d", "put", "a", 2, returns=1)
                 .commit(0)
                 .build())
        assert dict_checker().analyze(trace).serializable

    def test_commuting_interleaving_is_serializable(self):
        """The generalization's win: an interleaved counter increment
        does not break atomicity because increments commute."""
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .invoke(1, "c", "add", 1)
                 .invoke(2, "c", "add", 1)     # interleaved, commutes
                 .invoke(1, "c", "add", 1)
                 .commit(1)
                 .build())
        checker = commutativity_checker(("c", counter_representation()))
        assert checker.analyze(trace).serializable

    def test_different_key_interleaving_is_serializable(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .invoke(1, "d", "get", "a", returns=NIL)
                 .invoke(2, "d", "put", "b", 9, returns=NIL)  # other key
                 .invoke(1, "d", "put", "a", 1, returns=NIL)
                 .commit(1)
                 .build())
        assert dict_checker().analyze(trace).serializable

    def test_unregistered_objects_do_not_conflict(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .invoke(1, "ghost", "put", "a", 1, returns=NIL)
                 .invoke(2, "ghost", "put", "a", 2, returns=1)
                 .invoke(1, "ghost", "put", "a", 3, returns=2)
                 .commit(1)
                 .build())
        assert dict_checker().analyze(trace).serializable


class TestViolations:
    def interleaved_check_then_act(self):
        return (TraceBuilder(root=0)
                .fork(0, 1).fork(0, 2)
                .begin(1)
                .invoke(1, "d", "get", "k", returns=NIL)
                .invoke(2, "d", "put", "k", 99, returns=NIL)  # intruder
                .invoke(1, "d", "put", "k", 1, returns=99)
                .commit(1)
                .build())

    def test_same_key_intrusion_violates(self):
        report = dict_checker().analyze(self.interleaved_check_then_act())
        assert not report.serializable
        violation = report.violations[0]
        labels = {txn.label for txn in violation.cycle}
        assert any(label.startswith("T") for label in labels)
        assert "→" in str(violation)

    def test_two_blocks_cross_violate(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1).begin(2)
                 .invoke(1, "d", "put", "a", 1, returns=NIL)
                 .invoke(2, "d", "put", "a", 2, returns=1)
                 .invoke(1, "d", "put", "a", 3, returns=2)
                 .commit(1).commit(2)
                 .build())
        report = dict_checker().analyze(trace)
        assert not report.serializable

    def test_size_intrusion_violates(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .invoke(1, "d", "size", returns=0)
                 .invoke(2, "d", "put", "k", 1, returns=NIL)   # resizes
                 .invoke(1, "d", "size", returns=1)
                 .commit(1)
                 .build())
        report = dict_checker().analyze(trace)
        assert not report.serializable


class TestModesDiffer:
    def commuting_rw_trace(self):
        """Interleaved counter adds at both abstraction levels."""
        builder = (TraceBuilder(root=0).fork(0, 1).fork(0, 2).begin(1))
        builder.invoke(1, "c", "add", 1).write(1, "c.value")
        builder.invoke(2, "c", "add", 1).write(2, "c.value")
        builder.invoke(1, "c", "add", 1).write(1, "c.value")
        return builder.commit(1).build()

    def test_read_write_mode_false_alarms(self):
        trace = self.commuting_rw_trace()
        rw_report = AtomicityChecker(ConflictMode.READ_WRITE).analyze(trace)
        assert not rw_report.serializable
        comm = commutativity_checker(("c", counter_representation()))
        assert comm.analyze(trace).serializable

    def test_read_write_mode_ignores_actions(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .invoke(1, "d", "put", "k", 1, returns=NIL)
                 .invoke(2, "d", "put", "k", 2, returns=1)
                 .invoke(1, "d", "put", "k", 3, returns=2)
                 .commit(1)
                 .build())
        assert AtomicityChecker(ConflictMode.READ_WRITE).analyze(
            trace).serializable


class TestSynchronization:
    def test_lock_round_trip_inside_block_violates(self):
        # The block releases and re-acquires a lock another thread takes
        # in between: lock edges force a cycle (classic Velodrome case).
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .acquire(1, "L").release(1, "L")
                 .acquire(2, "L").release(2, "L")
                 .acquire(1, "L").release(1, "L")
                 .commit(1)
                 .build())
        assert not dict_checker().analyze(trace).serializable

    def test_internal_locks_invisible_in_commutativity_mode(self):
        from repro.runtime.shared import internal_lock_id
        internal = internal_lock_id("d")
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .acquire(1, internal).release(1, internal)
                 .acquire(2, internal).release(2, internal)
                 .acquire(1, internal).release(1, internal)
                 .commit(1)
                 .build())
        assert dict_checker().analyze(trace).serializable

    def test_sync_can_be_excluded(self):
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .begin(1)
                 .acquire(1, "L").release(1, "L")
                 .acquire(2, "L").release(2, "L")
                 .acquire(1, "L").release(1, "L")
                 .commit(1)
                 .build())
        lenient = AtomicityChecker(ConflictMode.COMMUTATIVITY,
                                   include_sync=False)
        assert lenient.analyze(trace).serializable


class TestRuntimeIntegration:
    def test_atomic_context_manager_records_boundaries(self):
        monitor = Monitor(record_trace=True)
        scheduler = Scheduler(monitor, seed=0)

        def main():
            counter = MonitoredCounter(monitor, name="c")
            with atomic(monitor):
                counter.add(1)
                counter.add(1)

        scheduler.run(main)
        from repro.core.events import EventKind
        kinds = [e.kind for e in monitor.trace]
        assert kinds[0] is EventKind.BEGIN
        assert kinds[-1] is EventKind.COMMIT

    def test_atomic_is_noop_when_uninstrumented(self):
        monitor = Monitor()
        with atomic(monitor):
            pass
        assert monitor.events_emitted == 0

    def test_end_to_end_violation_under_scheduler(self):
        violations_seen = []
        for seed in range(12):
            monitor = Monitor(record_trace=True)
            scheduler = Scheduler(monitor, seed=seed)

            def main():
                d = MonitoredDict(monitor, name="d")

                def transactional_worker():
                    with atomic(monitor):
                        current = d.get("hot")
                        d.put("hot", (current, "updated"))

                def intruder():
                    d.put("hot", "intrusion")

                scheduler.join_all([
                    scheduler.spawn(transactional_worker),
                    scheduler.spawn(intruder),
                    scheduler.spawn(transactional_worker),
                ])

            scheduler.run(main)
            checker = dict_checker()
            report = checker.analyze(monitor.trace)
            violations_seen.append(not report.serializable)
        assert any(violations_seen), \
            "some interleaving must intrude into an atomic block"
