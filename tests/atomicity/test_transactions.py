"""Trace → transaction splitting."""

import pytest

from repro.atomicity.transactions import split_transactions
from repro.core.errors import MonitorError
from repro.core.events import NIL, begin_event, commit_event
from repro.core.trace import TraceBuilder


def txn_trace():
    builder = TraceBuilder(root=0)
    builder.fork(0, 1)
    builder.begin(1)
    builder.invoke(1, "o", "put", "a", 1, returns=NIL)
    builder.invoke(1, "o", "get", "a", returns=1)
    builder.commit(1)
    builder.invoke(1, "o", "size", returns=1)
    return builder.build()


class TestSplitting:
    def test_block_plus_unaries(self):
        transactions = split_transactions(txn_trace())
        # fork (unary, tid 0), the block, the trailing size (unary).
        assert len(transactions) == 3
        block = transactions[1]
        assert not block.unary
        assert len(list(block.operations())) == 2
        assert transactions[0].unary and transactions[2].unary

    def test_operations_exclude_boundaries(self):
        block = split_transactions(txn_trace())[1]
        assert all(not e.kind.is_transactional()
                   for e in block.operations())
        assert len(block.events) == 4  # begin + 2 ops + commit

    def test_labels(self):
        transactions = split_transactions(txn_trace())
        assert transactions[1].label.startswith("T")
        assert transactions[0].label.startswith("u")
        assert "@" in transactions[1].label

    def test_indices_span_events(self):
        block = split_transactions(txn_trace())[1]
        assert block.start_index < block.end_index

    def test_interleaved_threads_split_independently(self):
        builder = TraceBuilder(root=0)
        builder.fork(0, 1).fork(0, 2)
        builder.begin(1)
        builder.begin(2)
        builder.invoke(1, "o", "get", "a", returns=NIL)
        builder.invoke(2, "o", "get", "b", returns=NIL)
        builder.commit(2)
        builder.commit(1)
        transactions = split_transactions(builder.build())
        blocks = [t for t in transactions if not t.unary]
        assert len(blocks) == 2
        assert {t.tid for t in blocks} == {1, 2}

    def test_unterminated_block_closed_at_eof(self):
        builder = TraceBuilder(root=0)
        builder.begin(0)
        builder.invoke(0, "o", "size", returns=0)
        transactions = split_transactions(builder.build())
        assert len(transactions) == 1
        assert not transactions[0].unary

    def test_nested_begin_rejected(self):
        builder = TraceBuilder(root=0)
        builder.begin(0)
        builder.begin(0)
        with pytest.raises(MonitorError):
            split_transactions(builder.build())

    def test_commit_without_begin_rejected(self):
        builder = TraceBuilder(root=0)
        builder.commit(0)
        with pytest.raises(MonitorError):
            split_transactions(builder.build())

    def test_empty_trace(self):
        assert split_transactions(TraceBuilder(root=0).build()) == []
