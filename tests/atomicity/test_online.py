"""The online (monitor-pluggable) atomicity analyzer."""

import pytest
from hypothesis import given, settings, strategies as st

import random

from repro.atomicity import (AtomicityAnalyzer, AtomicityChecker,
                             ConflictMode, atomic)
from repro.core.events import NIL
from repro.core.trace import TraceBuilder
from repro.runtime.collections_rt import MonitoredDict
from repro.runtime.monitor import Monitor
from repro.sched.scheduler import Scheduler
from repro.specs.dictionary import dictionary_representation


def analyzer():
    out = AtomicityAnalyzer(ConflictMode.COMMUTATIVITY)
    out.register_object("d", representation=dictionary_representation())
    return out


def violating_trace():
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .begin(1)
            .invoke(1, "d", "get", "k", returns=NIL)
            .invoke(2, "d", "put", "k", 99, returns=NIL)
            .invoke(1, "d", "put", "k", 1, returns=99)
            .commit(1)
            .build())


def clean_trace():
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .begin(1)
            .invoke(1, "d", "get", "a", returns=NIL)
            .invoke(2, "d", "put", "b", 9, returns=NIL)
            .invoke(1, "d", "put", "a", 1, returns=NIL)
            .commit(1)
            .build())


class TestOnlineDetection:
    def test_violation_reported_at_closing_event(self):
        online = analyzer()
        for event in violating_trace():
            online.process(event)
        assert online.violation_count == 1
        violation = online.violations[0]
        assert "put" in violation.closing_event
        assert any(label.startswith("T") for label in violation.cycle_labels)

    def test_clean_trace_silent(self):
        online = analyzer()
        for event in clean_trace():
            online.process(event)
        assert online.violation_count == 0

    def test_cycle_reported_once(self):
        builder = (TraceBuilder(root=0)
                   .fork(0, 1).fork(0, 2)
                   .begin(1)
                   .invoke(1, "d", "get", "k", returns=NIL)
                   .invoke(2, "d", "put", "k", 99, returns=NIL)
                   .invoke(1, "d", "put", "k", 1, returns=99)
                   .invoke(2, "d", "put", "k", 2, returns=1)
                   .invoke(1, "d", "get", "k", returns=2)
                   .commit(1))
        online = analyzer()
        for event in builder.build():
            online.process(event)
        # Multiple closing edges may exist; distinct cycles only.
        assert online.violation_count == len(
            {v.cycle_labels for v in online.violations})

    def test_str_and_keys(self):
        online = analyzer()
        for event in violating_trace():
            online.process(event)
        violation = online.violations[0]
        assert "atomicity violation" in str(violation)
        assert violation.distinct_key() == violation.cycle_labels

    def test_keep_reports_false(self):
        online = AtomicityAnalyzer(keep_reports=False)
        online.register_object("d",
                               representation=dictionary_representation())
        for event in violating_trace():
            online.process(event)
        assert online.violation_count == 1
        assert online.races() == []


class TestAgreementWithOffline:
    @staticmethod
    def random_transactional_trace(seed):
        rng = random.Random(seed)
        builder = TraceBuilder(root=0)
        tids = [1, 2, 3]
        for tid in tids:
            builder.fork(0, tid)
        in_block = {tid: False for tid in tids}
        state: dict = {}
        for _ in range(rng.randrange(5, 30)):
            tid = rng.choice(tids)
            roll = rng.random()
            if roll < 0.15 and not in_block[tid]:
                builder.begin(tid)
                in_block[tid] = True
            elif roll < 0.3 and in_block[tid]:
                builder.commit(tid)
                in_block[tid] = False
            else:
                key = rng.choice(["a", "b"])
                if rng.random() < 0.5:
                    prev = state.get(key, NIL)
                    value = rng.randrange(5)
                    state[key] = value
                    builder.invoke(tid, "d", "put", key, value,
                                   returns=prev)
                else:
                    builder.invoke(tid, "d", "get", key,
                                   returns=state.get(key, NIL))
        return builder.build()

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_online_flags_iff_offline_does(self, seed):
        trace = self.random_transactional_trace(seed)
        online = analyzer()
        for event in trace:
            online.process(event)
        offline = AtomicityChecker(ConflictMode.COMMUTATIVITY)
        offline.register_object("d", dictionary_representation())
        report = offline.analyze(trace)
        assert (online.violation_count > 0) == (not report.serializable)


class TestMonitorIntegration:
    def test_runs_alongside_rd2(self):
        from repro.runtime.analyzers import Rd2Analyzer
        online = AtomicityAnalyzer()
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2, online])
        scheduler = Scheduler(monitor, seed=6)

        def main():
            shared = MonitoredDict(monitor, name="shared")

            def transactional():
                with atomic(monitor):
                    current = shared.get("hot")
                    shared.put("hot", (current,))

            def intruder():
                shared.put("hot", "x")

            scheduler.join_all([scheduler.spawn(transactional),
                                scheduler.spawn(intruder)])

        scheduler.run(main)
        # Both analyzers consumed the same stream without interference.
        assert rd2.detector.stats.actions > 0
        assert online._next_txn > 0
