"""The repro-analyze command line and the spec reporter."""

import json

import pytest

from repro.cli import main
from repro.core.serialize import dump_trace
from repro.core.trace import TraceBuilder
from repro.core.events import NIL
from repro.logic.pretty import spec_report
from repro.specs.dictionary import dictionary_spec


@pytest.fixture()
def racy_trace_file(tmp_path):
    trace = (TraceBuilder(root=0)
             .fork(0, 1).fork(0, 2)
             .begin(1)
             .invoke(1, "o", "get", "k", returns=NIL)
             .invoke(2, "o", "put", "k", 9, returns=NIL)
             .invoke(1, "o", "put", "k", 1, returns=9)
             .commit(1)
             .write(1, "field")
             .write(2, "field")
             .build())
    path = tmp_path / "trace.jsonl"
    with open(path, "w", encoding="utf-8") as stream:
        dump_trace(trace, stream)
    return str(path)


class TestAnalyzeCli:
    def test_rd2_analysis_finds_races(self, racy_trace_file, capsys):
        code = main([racy_trace_file, "--object", "o=dictionary"])
        out = capsys.readouterr().out
        assert code == 1
        assert "commutativity race" in out
        assert "loaded" in out

    def test_direct_detector_option(self, racy_trace_file, capsys):
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--detector", "direct"])
        assert code == 1
        assert "direct:" in capsys.readouterr().out

    def test_fasttrack_needs_no_bindings(self, racy_trace_file, capsys):
        code = main([racy_trace_file, "--detector", "fasttrack"])
        out = capsys.readouterr().out
        assert code == 1
        assert "data race" in out

    def test_eraser(self, racy_trace_file, capsys):
        code = main([racy_trace_file, "--detector", "eraser"])
        assert code == 1
        assert "lockset" in capsys.readouterr().out

    def test_atomicity_mode(self, racy_trace_file, capsys):
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--atomicity"])
        out = capsys.readouterr().out
        assert code == 1
        assert "atomicity violation" in out

    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        trace = (TraceBuilder(root=0)
                 .invoke(0, "o", "put", "k", 1, returns=NIL)
                 .build())
        path = tmp_path / "clean.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            dump_trace(trace, stream)
        assert main([str(path), "--object", "o=dictionary"]) == 0

    def test_missing_binding_rejected(self, racy_trace_file):
        with pytest.raises(SystemExit):
            main([racy_trace_file])

    def test_bad_binding_syntax_rejected(self, racy_trace_file):
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--object", "o:dictionary"])

    def test_unknown_kind_rejected(self, racy_trace_file):
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--object", "o=warpdrive"])

    def test_trace_argument_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestWorkersFlag:
    def test_sharded_rd2_reports_the_same_races(self, racy_trace_file,
                                                capsys):
        sequential = main([racy_trace_file, "--object", "o=dictionary"])
        seq_out = capsys.readouterr().out
        sharded = main([racy_trace_file, "--object", "o=dictionary",
                        "--workers", "2"])
        shard_out = capsys.readouterr().out
        assert sharded == sequential == 1
        assert "[2 workers]" in shard_out
        # Same grouped report lines, just the annotated header differs.
        assert (seq_out.replace("rd2:", "rd2 [2 workers]:")
                == shard_out)

    def test_workers_one_is_the_plain_sequential_path(self, racy_trace_file,
                                                      capsys):
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--workers", "1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "workers" not in out

    def test_workers_rejected_for_other_detectors(self, racy_trace_file):
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--object", "o=dictionary",
                  "--detector", "direct", "--workers", "2"])
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--detector", "fasttrack",
                  "--workers", "2"])

    def test_nonpositive_workers_rejected(self, racy_trace_file):
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--object", "o=dictionary",
                  "--workers", "0"])


class TestBackendFlag:
    def test_shm_backend_reports_the_same_races(self, racy_trace_file,
                                                capsys):
        import repro.core.backend as backend_mod
        if not backend_mod.shm_available():
            pytest.skip("no shared memory on this host")
        sequential = main([racy_trace_file, "--object", "o=dictionary"])
        seq_out = capsys.readouterr().out
        sharded = main([racy_trace_file, "--object", "o=dictionary",
                        "--workers", "2", "--backend", "shm"])
        shard_out = capsys.readouterr().out
        assert sharded == sequential == 1
        assert (seq_out.replace("rd2:", "rd2 [2 workers]:")
                == shard_out)

    def test_fallback_is_announced_on_stderr(self, racy_trace_file,
                                             monkeypatch, capsys):
        import repro.core.backend as backend_mod
        monkeypatch.setattr(backend_mod, "_SHM_PROBE", False)
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--workers", "2", "--backend", "shm"])
        err = capsys.readouterr().err
        assert code == 1
        assert "backend: shm -> pickle" in err

    def test_backend_needs_rd2_and_workers(self, racy_trace_file):
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--detector", "fasttrack",
                  "--backend", "shm"])
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--object", "o=dictionary",
                  "--backend", "shm"])          # workers defaults to 1
        with pytest.raises(SystemExit):
            main([racy_trace_file, "--object", "o=dictionary",
                  "--workers", "2", "--backend", "laser"])


class TestAdaptiveFlag:
    def test_adaptive_reports_the_same_races(self, racy_trace_file, capsys):
        plain = main([racy_trace_file, "--object", "o=dictionary",
                      "--no-epochs"])
        plain_out = capsys.readouterr().out
        adaptive = main([racy_trace_file, "--object", "o=dictionary",
                         "--adaptive"])
        adaptive_out = capsys.readouterr().out
        assert adaptive == plain == 1
        # Clock-carrying epochs report the exact accumulated clock, so
        # adaptive output is byte-identical to the plain detector's.
        assert adaptive_out == plain_out

    def test_adaptive_composes_with_workers(self, racy_trace_file, capsys):
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--adaptive", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[2 workers]" in out

    def test_adaptive_rejected_for_other_detectors(self, racy_trace_file):
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--detector", "fasttrack", "--adaptive"])
        assert err.value.code == 2
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--object", "o=dictionary",
                  "--detector", "direct", "--adaptive"])
        assert err.value.code == 2

    def test_adaptive_rejected_with_atomicity(self, racy_trace_file):
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--object", "o=dictionary",
                  "--atomicity", "--adaptive"])
        assert err.value.code == 2


class TestEpochBatchFlags:
    def test_no_epochs_is_byte_identical_to_default(self, racy_trace_file,
                                                    capsys):
        default = main([racy_trace_file, "--object", "o=dictionary"])
        default_out = capsys.readouterr().out
        plain = main([racy_trace_file, "--object", "o=dictionary",
                      "--no-epochs"])
        plain_out = capsys.readouterr().out
        assert plain == default == 1
        assert plain_out == default_out

    def test_no_epochs_contradicts_adaptive(self, racy_trace_file):
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--object", "o=dictionary",
                  "--no-epochs", "--adaptive"])
        assert err.value.code == 2

    def test_no_epochs_rejected_outside_rd2(self, racy_trace_file):
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--detector", "fasttrack", "--no-epochs"])
        assert err.value.code == 2
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--object", "o=dictionary",
                  "--atomicity", "--no-epochs"])
        assert err.value.code == 2

    def test_batch_window_is_byte_identical_to_per_event(self,
                                                         racy_trace_file,
                                                         capsys):
        per_event = main([racy_trace_file, "--object", "o=dictionary"])
        per_event_out = capsys.readouterr().out
        batched = main([racy_trace_file, "--object", "o=dictionary",
                        "--batch-window", "3"])
        batched_out = capsys.readouterr().out
        assert batched == per_event == 1
        assert batched_out == per_event_out

    def test_batch_window_composes_with_workers(self, racy_trace_file,
                                                capsys):
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--batch-window", "2", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[2 workers]" in out

    def test_batch_window_composes_with_follow(self, racy_trace_file,
                                               capsys):
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--follow", "--batch-window", "2", "--window", "3",
                     "--prune-interval", "2", "--follow-timeout", "5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "race:" in out

    def test_bad_batch_window_rejected(self, racy_trace_file):
        for bad in ("0", "-2", "soon"):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      "--batch-window", bad])
            assert err.value.code == 2

    def test_batch_window_rejected_outside_rd2(self, racy_trace_file):
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--object", "o=dictionary",
                  "--detector", "direct", "--batch-window", "2"])
        assert err.value.code == 2


class TestPruneIntervalFlag:
    def test_pruning_reports_the_same_races(self, racy_trace_file, capsys):
        plain = main([racy_trace_file, "--object", "o=dictionary"])
        plain_out = capsys.readouterr().out
        pruned = main([racy_trace_file, "--object", "o=dictionary",
                       "--prune-interval", "1"])
        pruned_out = capsys.readouterr().out
        assert pruned == plain == 1
        # Pruning is fully verdict-preserving: identical reports, byte
        # for byte (only the "loaded ..." preamble is shared anyway).
        assert pruned_out == plain_out

    def test_composes_with_workers(self, racy_trace_file, capsys):
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--prune-interval", "2", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[2 workers]" in out

    def test_nonpositive_rejected(self, racy_trace_file):
        for bad in ("0", "-3", "soon"):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      "--prune-interval", bad])
            assert err.value.code == 2

    def test_rejected_for_other_detectors(self, racy_trace_file):
        with pytest.raises(SystemExit) as err:
            main([racy_trace_file, "--object", "o=dictionary",
                  "--detector", "direct", "--prune-interval", "2"])
        assert err.value.code == 2

    def test_rejected_with_checkpointing(self, racy_trace_file, tmp_path):
        # Prune-boundary snapshots are not part of the checkpoint format.
        ck = str(tmp_path / "ck")
        for extra in (["--checkpoint", ck], ["--resume-from", ck]):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      "--prune-interval", "2", *extra])
            assert err.value.code == 2


@pytest.fixture()
def predictable_trace_file(tmp_path):
    """Witnessed-clean, but a correct reordering races: t0's put is
    ordered before t1's only by an empty lock hand-off."""
    trace = (TraceBuilder(root=0)
             .fork(0, 1)
             .acquire(0, "L")
             .invoke(0, "o", "put", "k", 1, returns=NIL)
             .release(0, "L")
             .acquire(1, "L")
             .release(1, "L")
             .invoke(1, "o", "put", "k", 2, returns=1)
             .join(0, 1)
             .build())
    path = tmp_path / "predictable.jsonl"
    with open(path, "w", encoding="utf-8") as stream:
        dump_trace(trace, stream)
    return str(path)


class TestPredictFlag:
    def test_predicted_race_reported_and_exit_one(self,
                                                  predictable_trace_file,
                                                  capsys):
        witnessed = main([predictable_trace_file, "--object", "o=dictionary"])
        witnessed_out = capsys.readouterr().out
        assert witnessed == 0
        assert "predicted" not in witnessed_out
        code = main([predictable_trace_file, "--object", "o=dictionary",
                     "--predict"])
        out = capsys.readouterr().out
        assert code == 1                      # predictions count as reports
        assert "0 (0) commutativity race report(s)" in out
        assert "1 predicted race(s) in sound reorderings" in out
        assert "  predicted: commutativity race on o" in out
        # Witnessed-mode output is byte-identical: the predict run's
        # output is the witnessed output plus the predicted section.
        assert out.startswith(witnessed_out)

    def test_predict_off_is_byte_identical_to_before(self, racy_trace_file,
                                                     capsys):
        code = main([racy_trace_file, "--object", "o=dictionary"])
        out = capsys.readouterr().out
        assert code == 1
        assert "predicted" not in out

    def test_predict_composes_with_workers(self, predictable_trace_file,
                                           capsys):
        sequential = main([predictable_trace_file, "--object", "o=dictionary",
                           "--predict"])
        seq_out = capsys.readouterr().out
        sharded = main([predictable_trace_file, "--object", "o=dictionary",
                        "--predict", "--workers", "2"])
        shard_out = capsys.readouterr().out
        assert sharded == sequential == 1
        assert (seq_out.replace("rd2:", "rd2 [2 workers]:") == shard_out)

    def test_predict_composes_with_follow(self, predictable_trace_file,
                                          capsys):
        code = main([predictable_trace_file, "--object", "o=dictionary",
                     "--predict", "--follow", "--window", "3",
                     "--follow-timeout", "5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "rd2 [follow]: 1 predicted race(s)" in out

    def test_predict_stats_json_schema_extension(self, predictable_trace_file,
                                                 tmp_path, capsys):
        stats = tmp_path / "stats.json"
        main([predictable_trace_file, "--object", "o=dictionary",
              "--predict=32", "--stats-json", str(stats)])
        capsys.readouterr()
        report = json.loads(stats.read_text(encoding="utf-8"))
        assert report["meta"]["predict_window"] == 32
        (entry,) = report["predicted"]
        assert entry["object"] == "o"
        assert entry["pair"] == [2, 6]
        assert entry["race"].startswith("commutativity race on o")
        assert entry["witness"][-1].startswith("1: o.put")
        assert report["stats"]["counters"]["predict_validated"] == 1

    def test_stats_json_schema_frozen_without_predict(self,
                                                      predictable_trace_file,
                                                      tmp_path, capsys):
        stats = tmp_path / "stats.json"
        main([predictable_trace_file, "--object", "o=dictionary",
              "--stats-json", str(stats)])
        capsys.readouterr()
        report = json.loads(stats.read_text(encoding="utf-8"))
        assert "predicted" not in report
        assert "predict_window" not in report["meta"]

    def test_predict_rejected_outside_rd2(self, racy_trace_file):
        for extra in (["--detector", "direct"],
                      ["--detector", "fasttrack"],
                      ["--atomicity"]):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      "--predict", *extra])
            assert err.value.code == 2

    def test_predict_rejected_with_checkpointing(self, racy_trace_file,
                                                 tmp_path):
        ck = str(tmp_path / "ck")
        for extra in (["--checkpoint", ck], ["--resume-from", ck]):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      "--predict", *extra])
            assert err.value.code == 2

    def test_bad_predict_window_rejected(self, racy_trace_file):
        for bad in ("0", "-4", "soon"):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      f"--predict={bad}"])
            assert err.value.code == 2


class TestFollowFlag:
    def test_follow_streams_and_matches_batch_summary(self, racy_trace_file,
                                                      capsys):
        batch = main([racy_trace_file, "--object", "o=dictionary"])
        batch_out = capsys.readouterr().out
        followed = main([racy_trace_file, "--object", "o=dictionary",
                         "--follow", "--window", "3",
                         "--prune-interval", "2", "--follow-timeout", "5"])
        follow_out = capsys.readouterr().out
        assert followed == batch == 1
        assert "race:" in follow_out           # incremental emission
        assert "rd2 [follow]:" in follow_out
        batch_groups = [l for l in batch_out.splitlines()
                        if l.startswith("  ")]
        follow_groups = [l for l in follow_out.splitlines()
                         if l.startswith("  ")]
        assert follow_groups == batch_groups

    def test_window_and_timeout_require_follow(self, racy_trace_file):
        for extra in (["--window", "4"], ["--follow-timeout", "1"]):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary", *extra])
            assert err.value.code == 2

    def test_follow_is_sequential_rd2_only(self, racy_trace_file, tmp_path):
        for extra in (["--workers", "2"],
                      ["--shard-timeout", "5"],
                      ["--checkpoint", str(tmp_path / "ck")],
                      ["--resume-from", str(tmp_path / "ck")],
                      ["--detector", "direct"],
                      ["--atomicity"]):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      "--follow", *extra])
            assert err.value.code == 2

    def test_bad_window_and_timeout_values(self, racy_trace_file):
        for extra in (["--window", "0"], ["--window", "wide"],
                      ["--follow-timeout", "0"],
                      ["--follow-timeout", "later"]):
            with pytest.raises(SystemExit) as err:
                main([racy_trace_file, "--object", "o=dictionary",
                      "--follow", *extra])
            assert err.value.code == 2

    def test_follow_stats_json_snapshot(self, racy_trace_file, tmp_path,
                                        capsys):
        stats = tmp_path / "stats.json"
        code = main([racy_trace_file, "--object", "o=dictionary",
                     "--follow", "--window", "2", "--prune-interval", "1",
                     "--follow-timeout", "5", "--stats-json", str(stats)])
        capsys.readouterr()
        assert code == 1
        report = json.loads(stats.read_text(encoding="utf-8"))
        assert report["meta"]["detector"] == "rd2"
        assert report["meta"]["events"] > 0
        gauges = report["stats"]["gauges"]
        assert "active_points" in gauges and "interned_points" in gauges
        counters = report["stats"]["counters"]
        assert "interned_points_evicted" in counters


class TestObservabilityFlags:
    def test_stats_table_goes_to_stderr(self, racy_trace_file, capsys):
        baseline = main([racy_trace_file, "--object", "o=dictionary"])
        plain_out = capsys.readouterr().out
        code = main([racy_trace_file, "--object", "o=dictionary", "--stats"])
        captured = capsys.readouterr()
        assert code == baseline == 1
        # the race report on stdout is untouched by the flag
        assert captured.out == plain_out
        assert "checks_by_object" in captured.err
        assert "stamp" in captured.err

    def test_stats_json_report(self, racy_trace_file, tmp_path, capsys):
        out_path = tmp_path / "stats.json"
        main([racy_trace_file, "--object", "o=dictionary",
              "--stats-json", str(out_path)])
        capsys.readouterr()
        report = json.loads(out_path.read_text())
        assert report["repro-stats"] == 1
        assert report["meta"]["detector"] == "rd2"
        assert report["meta"]["workers"] == 1
        counters = report["stats"]["counters"]
        assert counters["events"] == 9
        assert counters["races"] >= 1
        assert report["stats"]["breakdowns"]["checks_by_object"]
        assert report["stats"]["timers"]["stamp"]["count"] == 9

    def test_stats_json_with_workers_merges_shards(self, racy_trace_file,
                                                   tmp_path, capsys):
        out_path = tmp_path / "stats.json"
        main([racy_trace_file, "--object", "o=dictionary",
              "--workers", "2", "--stats-json", str(out_path)])
        capsys.readouterr()
        report = json.loads(out_path.read_text())
        assert report["meta"]["workers"] == 2
        timers = report["stats"]["timers"]
        for phase in ("stamp", "fanout", "merge", "shard"):
            assert phase in timers
        assert report["stats"]["gauges"]["shards"] >= 1

    def test_spans_stream_is_jsonl(self, racy_trace_file, tmp_path, capsys):
        spans_path = tmp_path / "spans.jsonl"
        main([racy_trace_file, "--object", "o=dictionary",
              "--spans", str(spans_path)])
        capsys.readouterr()
        records = [json.loads(line)
                   for line in spans_path.read_text().splitlines()]
        names = [record["name"] for record in records]
        assert "load" in names
        assert "report" in names
        assert all(record["dur_ns"] >= 0 for record in records)

    def test_without_flags_no_stats_output(self, racy_trace_file, capsys):
        main([racy_trace_file, "--object", "o=dictionary"])
        assert capsys.readouterr().err == ""


class TestTraceErrors:
    HEADER = '{"repro-trace": 1, "root": 0, "events": 2}\n'

    def _run(self, path, capsys):
        """Bad input exits with EXIT_DATA and one clean stderr line."""
        with pytest.raises(SystemExit) as excinfo:
            main([str(path), "--object", "o=dictionary"])
        assert excinfo.value.code == 3
        message = capsys.readouterr().err.strip()
        assert message.startswith("repro-analyze: error: ")
        assert "\n" not in message
        return message

    def test_malformed_json_line_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(self.HEADER
                        + '{"kind": "fork", "tid": 0, "peer": 1}\n'
                        + "{not json\n")
        message = self._run(path, capsys)
        assert f"invalid trace file {str(path)!r}:" in message

    def test_unknown_event_kind_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "future.jsonl"
        path.write_text(self.HEADER
                        + '{"kind": "fork", "tid": 0, "peer": 1}\n'
                        + '{"kind": "teleport", "tid": 1}\n')
        message = self._run(path, capsys)
        assert f"invalid trace file {str(path)!r}:" in message
        assert "teleport" in message

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "nope.jsonl"
        message = self._run(path, capsys)
        assert f"cannot read trace {str(path)!r}:" in message

    def test_empty_file_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        message = self._run(path, capsys)
        assert f"invalid trace file {str(path)!r}:" in message


class TestSpecReportCli:
    def test_spec_report_flag(self, capsys):
        assert main(["--spec-report", "dictionary"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6 style" in out
        assert "Fig. 7 style" in out
        assert "Theorem 6.6" in out

    def test_unknown_spec_kind(self):
        with pytest.raises(SystemExit):
            main(["--spec-report", "nope"])


class TestSpecReportFunction:
    def test_contains_the_papers_artifacts(self):
        report = spec_report(dictionary_spec())
        assert "ϕ[put, put]" in report
        assert "B(Φ, put) = {v = p, v = nil, p = nil}" in report
        assert "max conflict degree: 2" in report
        assert "B(Φ, get) = ∅" in report

    def test_every_bundled_spec_reports(self):
        from repro.specs import bundled_objects
        for kind, bundled in bundled_objects().items():
            report = spec_report(bundled.spec())
            assert kind in report
