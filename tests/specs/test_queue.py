"""The FIFO queue: spec subtleties, semantics, monitored collection."""

import pytest

from repro.core.events import NIL, Action
from repro.runtime.collections_rt import MonitoredQueue
from repro.runtime.monitor import Monitor
from repro.specs.queue_spec import (QueueSemantics, queue_representation,
                                    queue_spec)


class TestSpecRows:
    def setup_method(self):
        self.spec = queue_spec()

    def test_enqueues_never_commute(self):
        a = Action("q", "enq", ("a",), ())
        b = Action("q", "enq", ("b",), ())
        assert not self.spec.commutes(a, b)
        assert not self.spec.commutes(a, a)

    def test_enq_vs_successful_other_deq_commutes(self):
        enq = Action("q", "enq", ("x",), ())
        deq = Action("q", "deq", (), ("y",))
        assert self.spec.commutes(enq, deq)

    def test_enq_vs_deq_of_same_element_does_not_commute(self):
        """The empty-queue subtlety: enq(x); deq()/x is realizable while
        deq()/x; enq(x) is not — the x ≠ y guard is essential."""
        enq = Action("q", "enq", ("x",), ())
        deq_same = Action("q", "deq", (), ("x",))
        assert not self.spec.commutes(enq, deq_same)

    def test_enq_vs_failed_deq_does_not_commute(self):
        enq = Action("q", "enq", ("x",), ())
        deq_nil = Action("q", "deq", (), (NIL,))
        assert not self.spec.commutes(enq, deq_nil)

    def test_noop_deqs_commute(self):
        deq_nil = Action("q", "deq", (), (NIL,))
        deq_real = Action("q", "deq", (), ("a",))
        assert self.spec.commutes(deq_nil, deq_nil)
        assert not self.spec.commutes(deq_real, deq_real)
        assert not self.spec.commutes(deq_nil, deq_real)

    def test_peek_rows(self):
        enq = Action("q", "enq", ("x",), ())
        peek_other = Action("q", "peek", (), ("y",))
        peek_same = Action("q", "peek", (), ("x",))
        peek_nil = Action("q", "peek", (), (NIL,))
        assert self.spec.commutes(enq, peek_other)
        assert not self.spec.commutes(enq, peek_same)
        assert not self.spec.commutes(enq, peek_nil)
        assert self.spec.commutes(peek_same, peek_other)

    def test_size_rows(self):
        enq = Action("q", "enq", ("x",), ())
        deq_nil = Action("q", "deq", (), (NIL,))
        deq_real = Action("q", "deq", (), ("a",))
        size = Action("q", "size", (), (2,))
        assert not self.spec.commutes(enq, size)
        assert self.spec.commutes(deq_nil, size)
        assert not self.spec.commutes(deq_real, size)
        assert self.spec.commutes(size, size)

    def test_spec_is_complete_ecl(self):
        assert self.spec.is_complete()
        assert self.spec.is_ecl()


class TestSemantics:
    def setup_method(self):
        self.sem = QueueSemantics()

    def test_fifo_order(self):
        state = ()
        for element in ("a", "b", "c"):
            state, _ = self.sem.apply(state, "enq", (element,))
        state, first = self.sem.apply(state, "deq", ())
        state, second = self.sem.apply(state, "deq", ())
        assert (first, second) == (("a",), ("b",))

    def test_deq_on_empty_returns_nil(self):
        state, result = self.sem.apply((), "deq", ())
        assert result == (NIL,)
        assert state == ()

    def test_peek_does_not_consume(self):
        state, _ = self.sem.apply((), "enq", ("a",))
        after, result = self.sem.apply(state, "peek", ())
        assert result == ("a",)
        assert after == state

    def test_size(self):
        state, _ = self.sem.apply((), "enq", ("a",))
        _, size = self.sem.apply(state, "size", ())
        assert size == (1,)


class TestRepresentation:
    def test_translated_and_bounded(self):
        rep = queue_representation()
        assert rep.bounded
        assert rep.max_conflict_degree() <= 4


class TestMonitoredQueue:
    def test_operations(self):
        queue = MonitoredQueue(Monitor(record_trace=True))
        queue.enq("a")
        queue.enq("b")
        assert queue.peek() == "a"
        assert queue.size() == 2
        assert queue.deq() == "a"
        assert queue.deq() == "b"
        assert queue.deq() is NIL
        assert len(queue) == 0

    def test_actions_recorded(self):
        monitor = Monitor(record_trace=True)
        queue = MonitoredQueue(monitor, name="q")
        queue.enq("a")
        queue.deq()
        actions = [e.action for e in monitor.trace.actions("q")]
        assert [a.method for a in actions] == ["enq", "deq"]
        assert actions[1].returns == ("a",)

    def test_concurrent_enqueues_race(self):
        from repro.sched.explore import explore

        def program(monitor, scheduler):
            queue = MonitoredQueue(monitor, name="q")

            def producer(tag):
                queue.enq(tag)

            scheduler.join_all([scheduler.spawn(producer, "a"),
                                scheduler.spawn(producer, "b")])

        result = explore(program, seeds=range(3))
        assert result.race_frequency == 1.0

    def test_pipelined_producer_consumer_is_clean(self):
        """Producer enqueues, then (join-ordered) consumer drains: the
        FIFO handoff is race-free once ordered."""
        from repro.runtime.analyzers import Rd2Analyzer
        from repro.sched.scheduler import Scheduler
        rd2 = Rd2Analyzer()
        monitor = Monitor(analyzers=[rd2])
        scheduler = Scheduler(monitor, seed=0)

        def main():
            queue = MonitoredQueue(monitor, name="q")

            def producer():
                for element in ("a", "b"):
                    queue.enq(element)

            handle = scheduler.spawn(producer)
            scheduler.join(handle)
            while queue.deq() is not NIL:
                pass

        scheduler.run(main)
        assert rd2.races() == []
