"""Cross-cutting checks over every bundled object kind.

Each bundled kind ships a specification, a hand-written representation and
an executable semantics; this sweep pins down the contracts relating them:
completeness, ECL membership, soundness, and Definition 4.5 equivalence of
the hand-written representation with both the spec and the translation.
"""

import pytest

from repro.core.access_points import representations_equivalent
from repro.logic.translate import translate
from repro.specs import bundled_objects
from repro.verify import verifiable_objects, verify_pair

from tests.support import sample_actions

KINDS = sorted(bundled_objects())


def _bundled_pair_params():
    """Every (kind, m1, m2) of every bundled spec, exhaustively."""
    for kind in KINDS:
        for m1, m2, _ in sorted(bundled_objects()[kind].spec().pairs()):
            yield pytest.param(kind, m1, m2, id=f"{kind}:{m1}-{m2}")


@pytest.mark.parametrize("kind", KINDS)
def test_spec_complete(kind):
    assert bundled_objects()[kind].spec().is_complete()


@pytest.mark.parametrize("kind", KINDS)
def test_spec_in_ecl(kind):
    assert bundled_objects()[kind].spec().is_ecl()


@pytest.mark.parametrize("kind,m1,m2", list(_bundled_pair_params()))
def test_spec_sound_against_semantics(kind, m1, m2):
    """Exhaustive bounded verification of every spec method pair — the
    promotion of the old 150-sample randomized ``check_soundness``
    spot-check.  Soundness AND precision, over every reachable state and
    realizable action pair of the kind's bounded universe."""
    entry = verifiable_objects()[kind]
    verdict = verify_pair(entry.spec(), entry.semantics(), entry.domain(),
                          m1, m2,
                          waiver_reason=entry.waiver_map().get(
                              frozenset({m1, m2})))
    assert verdict.ok, f"{kind} {m1}/{m2}:\n{verdict.counterexample}"


@pytest.mark.parametrize("kind", KINDS)
def test_handwritten_representation_represents_spec(kind):
    bundled = bundled_objects()[kind]
    spec = bundled.spec()
    rep = bundled.representation()
    actions = sample_actions(kind, count=40)
    for a in actions:
        for b in actions:
            pa, pb = rep.points_of(a), rep.points_of(b)
            clash = any(rep.conflicts(x, y) for x in pa for y in pb)
            assert clash != spec.commutes(a, b), (kind, str(a), str(b))


@pytest.mark.parametrize("kind", KINDS)
def test_handwritten_equivalent_to_translated(kind):
    bundled = bundled_objects()[kind]
    translated = translate(bundled.spec())
    actions = sample_actions(kind, count=40)
    mismatch = representations_equivalent(bundled.representation(),
                                          translated, actions)
    assert mismatch is None, f"{kind}: {mismatch}"


@pytest.mark.parametrize("kind", KINDS)
def test_handwritten_representation_is_bounded(kind):
    assert bundled_objects()[kind].representation().bounded


@pytest.mark.parametrize("kind", KINDS)
def test_kind_labels_consistent(kind):
    bundled = bundled_objects()[kind]
    assert bundled.kind == kind
    assert bundled.spec().kind == kind
    assert bundled.semantics().kind == kind
