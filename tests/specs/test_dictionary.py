"""The paper's dictionary artifacts: Fig. 5 (semantics), Fig. 6 (spec),
Fig. 7 (representation), and the extended methods."""

import pytest

from repro.core.events import NIL, Action
from repro.specs.dictionary import (DictionarySemantics,
                                    dictionary_representation,
                                    dictionary_spec,
                                    extended_dictionary_spec)


class TestFig6Spec:
    def setup_method(self):
        self.spec = dictionary_spec()

    def test_method_signatures(self):
        assert self.spec.signature("put").value_names == ("k", "v", "p")
        assert self.spec.signature("get").value_names == ("k", "v")
        assert self.spec.signature("size").value_names == ("r",)

    def test_put_put_row(self):
        # ϕ_put_put := k1 ≠ k2 ∨ (v1 = p1 ∧ v2 = p2)
        fresh = Action("o", "put", ("k", 1), (NIL,))
        noop = Action("o", "put", ("k", 1), (1,))
        other = Action("o", "put", ("j", 2), (NIL,))
        assert not self.spec.commutes(fresh, fresh)
        assert self.spec.commutes(noop, noop)
        assert self.spec.commutes(fresh, other)

    def test_put_get_row(self):
        put = Action("o", "put", ("k", 1), (NIL,))
        noop = Action("o", "put", ("k", 1), (1,))
        get = Action("o", "get", ("k",), (1,))
        get_other = Action("o", "get", ("j",), (NIL,))
        assert not self.spec.commutes(put, get)
        assert self.spec.commutes(noop, get)
        assert self.spec.commutes(put, get_other)

    def test_put_size_row(self):
        insert = Action("o", "put", ("k", 1), (NIL,))
        delete = Action("o", "put", ("k", NIL), (1,))
        overwrite = Action("o", "put", ("k", 2), (1,))
        nil_noop = Action("o", "put", ("k", NIL), (NIL,))
        size = Action("o", "size", (), (3,))
        assert not self.spec.commutes(insert, size)
        assert not self.spec.commutes(delete, size)
        assert self.spec.commutes(overwrite, size)
        assert self.spec.commutes(nil_noop, size)

    def test_read_only_rows_are_true(self):
        get = Action("o", "get", ("k",), (NIL,))
        size = Action("o", "size", (), (0,))
        assert self.spec.commutes(get, get)
        assert self.spec.commutes(get, size)
        assert self.spec.commutes(size, size)

    def test_spec_is_complete_and_ecl(self):
        assert self.spec.is_complete()
        assert self.spec.is_ecl()


class TestFig7Representation:
    def setup_method(self):
        self.rep = dictionary_representation()

    def points(self, action):
        return self.rep.points_of(action)

    def test_inserting_put_touches_w_and_resize(self):
        points = self.points(Action("o", "put", ("k", 1), (NIL,)))
        schemas = sorted(str(pt.schema) for pt in points)
        assert "w" in schemas and "resize" in schemas

    def test_overwriting_put_touches_only_w(self):
        points = self.points(Action("o", "put", ("k", 2), (1,)))
        assert [pt.schema for pt in points] == ["w"]

    def test_noop_put_touches_r(self):
        points = self.points(Action("o", "put", ("k", 1), (1,)))
        assert [pt.schema for pt in points] == ["r"]

    def test_get_touches_r(self):
        points = self.points(Action("o", "get", ("k",), (1,)))
        assert [pt.schema for pt in points] == ["r"]
        assert points[0].value == "k"

    def test_size_touches_size(self):
        points = self.points(Action("o", "size", (), (0,)))
        assert [pt.schema for pt in points] == ["size"]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            self.points(Action("o", "mystery", (), ()))

    def test_bounded_with_degree_two_on_core_schemas(self):
        assert self.rep.bounded
        assert self.rep.schema_conflicts("w") == frozenset({"w", "r"})
        assert self.rep.schema_conflicts("size") == frozenset({"resize"})


class TestExtendedMethods:
    def setup_method(self):
        self.spec = extended_dictionary_spec()
        self.rep = dictionary_representation()

    def test_remove_behaves_as_nil_put(self):
        remove_real = Action("o", "remove", ("k",), (1,))
        remove_noop = Action("o", "remove", ("k",), (NIL,))
        size = Action("o", "size", (), (0,))
        get = Action("o", "get", ("k",), (1,))
        assert not self.spec.commutes(remove_real, size)
        assert self.spec.commutes(remove_noop, size)
        assert not self.spec.commutes(remove_real, get)
        assert self.spec.commutes(remove_noop, get)

    def test_contains_ignores_overwrites(self):
        overwrite = Action("o", "put", ("k", 2), (1,))
        insert = Action("o", "put", ("k", 2), (NIL,))
        contains = Action("o", "contains", ("k",), (True,))
        assert self.spec.commutes(contains, overwrite)
        assert not self.spec.commutes(contains, insert)

    def test_put_if_absent_noop_commutes_widely(self):
        pia_noop = Action("o", "putIfAbsent", ("k", 9), (1,))
        pia_insert = Action("o", "putIfAbsent", ("k", 9), (NIL,))
        get = Action("o", "get", ("k",), (1,))
        size = Action("o", "size", (), (1,))
        assert self.spec.commutes(pia_noop, get)
        assert self.spec.commutes(pia_noop, size)
        assert not self.spec.commutes(pia_insert, get)
        assert not self.spec.commutes(pia_insert, size)
        assert self.spec.commutes(pia_noop, pia_noop)
        assert not self.spec.commutes(pia_insert, pia_insert)

    def test_representation_represents_extended_spec(self):
        """Definition 4.5 over a structured sample of extended actions."""
        actions = []
        for p in (NIL, 1, 2):
            actions.append(Action("o", "remove", ("k",), (p,)))
            actions.append(Action("o", "putIfAbsent", ("k", 2), (p,)))
            for v in (NIL, 1, 2):
                actions.append(Action("o", "put", ("k", v), (p,)))
        actions += [Action("o", "contains", ("k",), (True,)),
                    Action("o", "contains", ("k",), (False,)),
                    Action("o", "get", ("k",), (1,)),
                    Action("o", "size", (), (1,))]
        for a in actions:
            for b in actions:
                pa, pb = self.rep.points_of(a), self.rep.points_of(b)
                clash = any(self.rep.conflicts(x, y)
                            for x in pa for y in pb)
                assert clash != self.spec.commutes(a, b), (str(a), str(b))


class TestSemanticsExtended:
    def setup_method(self):
        self.sem = DictionarySemantics()

    def test_remove(self):
        state, _ = self.sem.apply((), "put", ("a", 1))
        state, returns = self.sem.apply(state, "remove", ("a",))
        assert returns == (1,)
        assert state == ()

    def test_contains(self):
        state, _ = self.sem.apply((), "put", ("a", 1))
        _, yes = self.sem.apply(state, "contains", ("a",))
        _, no = self.sem.apply(state, "contains", ("b",))
        assert yes == (True,)
        assert no == (False,)

    def test_put_if_absent(self):
        state, first = self.sem.apply((), "putIfAbsent", ("a", 1))
        assert first == (NIL,)
        state, second = self.sem.apply(state, "putIfAbsent", ("a", 2))
        assert second == (1,)
        _, value = self.sem.apply(state, "get", ("a",))
        assert value == (1,)
