"""Per-kind behaviour of the non-dictionary bundled objects."""

import pytest

from repro.core.events import Action
from repro.specs.accumulator import AccumulatorSemantics, accumulator_spec
from repro.specs.counter import CounterSemantics, counter_spec
from repro.specs.list_spec import (MultisetLogSemantics, multiset_log_spec,
                                   sequence_log_spec)
from repro.specs.register import RegisterSemantics, register_spec
from repro.specs.set_spec import SetSemantics, set_spec


class TestSet:
    def setup_method(self):
        self.spec = set_spec()
        self.sem = SetSemantics()

    def test_effective_adds_conflict(self):
        add = Action("o", "add", ("x",), (1,))
        assert not self.spec.commutes(add, add)

    def test_ineffective_adds_commute(self):
        add = Action("o", "add", ("x",), (0,))
        assert self.spec.commutes(add, add)

    def test_different_elements_commute(self):
        a = Action("o", "add", ("x",), (1,))
        b = Action("o", "add", ("y",), (1,))
        assert self.spec.commutes(a, b)

    def test_effective_update_conflicts_with_size(self):
        add = Action("o", "add", ("x",), (1,))
        noop = Action("o", "add", ("x",), (0,))
        size = Action("o", "size", (), (3,))
        assert not self.spec.commutes(add, size)
        assert self.spec.commutes(noop, size)

    def test_contains_vs_updates(self):
        contains = Action("o", "contains", ("x",), (1,))
        add = Action("o", "add", ("x",), (1,))
        remove_noop = Action("o", "remove", ("x",), (0,))
        assert not self.spec.commutes(add, contains)
        assert self.spec.commutes(remove_noop, contains)

    def test_semantics_effectiveness(self):
        state, first = self.sem.apply(frozenset(), "add", ("x",))
        assert first == (1,)
        state, second = self.sem.apply(state, "add", ("x",))
        assert second == (0,)
        state, removed = self.sem.apply(state, "remove", ("x",))
        assert removed == (1,)
        assert state == frozenset()


class TestCounter:
    def setup_method(self):
        self.spec = counter_spec()
        self.sem = CounterSemantics()

    def test_adds_always_commute(self):
        a = Action("o", "add", (3,), ())
        b = Action("o", "add", (-5,), ())
        assert self.spec.commutes(a, b)

    def test_nonzero_add_conflicts_with_read(self):
        add = Action("o", "add", (3,), ())
        read = Action("o", "read", (), (0,))
        assert not self.spec.commutes(add, read)

    def test_zero_add_commutes_with_read(self):
        add = Action("o", "add", (0,), ())
        read = Action("o", "read", (), (0,))
        assert self.spec.commutes(add, read)

    def test_semantics(self):
        state, _ = self.sem.apply(0, "add", (5,))
        state, _ = self.sem.apply(state, "add", (-2,))
        _, value = self.sem.apply(state, "read", ())
        assert value == (3,)


class TestRegister:
    def setup_method(self):
        self.spec = register_spec()
        self.sem = RegisterSemantics()

    def test_real_writes_conflict(self):
        write = Action("o", "write", (1,), (0,))
        assert not self.spec.commutes(write, write)

    def test_silent_writes_commute(self):
        silent = Action("o", "write", (1,), (1,))
        read = Action("o", "read", (), (1,))
        assert self.spec.commutes(silent, silent)
        assert self.spec.commutes(silent, read)

    def test_write_read_conflict(self):
        write = Action("o", "write", (2,), (0,))
        read = Action("o", "read", (), (2,))
        assert not self.spec.commutes(write, read)

    def test_reads_commute(self):
        read = Action("o", "read", (), (5,))
        assert self.spec.commutes(read, read)

    def test_semantics(self):
        state, prev = self.sem.apply(0, "write", (7,))
        assert prev == (0,)
        _, value = self.sem.apply(state, "read", ())
        assert value == (7,)


class TestLogs:
    def test_sequence_appends_never_commute(self):
        spec = sequence_log_spec()
        append = Action("o", "append", ("x",), (0,))
        assert not spec.commutes(append, append)

    def test_multiset_logs_commute(self):
        spec = multiset_log_spec()
        log = Action("o", "log", ("x",), ())
        assert spec.commutes(log, log)

    def test_multiset_log_vs_snapshot(self):
        spec = multiset_log_spec()
        log = Action("o", "log", ("x",), ())
        snapshot = Action("o", "snapshot", (), (3,))
        assert not spec.commutes(log, snapshot)

    def test_multiset_log_vs_count(self):
        spec = multiset_log_spec()
        log = Action("o", "log", ("x",), ())
        count_same = Action("o", "count", ("x",), (1,))
        count_other = Action("o", "count", ("y",), (0,))
        assert not spec.commutes(log, count_same)
        assert spec.commutes(log, count_other)

    def test_multiset_semantics_is_order_insensitive(self):
        sem = MultisetLogSemantics()
        state1, _ = sem.apply((), "log", ("b",))
        state1, _ = sem.apply(state1, "log", ("a",))
        state2, _ = sem.apply((), "log", ("a",))
        state2, _ = sem.apply(state2, "log", ("b",))
        assert state1 == state2


class TestAccumulator:
    def setup_method(self):
        self.spec = accumulator_spec()
        self.sem = AccumulatorSemantics()

    def test_samples_commute(self):
        a = Action("o", "sample", (3,), ())
        b = Action("o", "sample", (5,), ())
        assert self.spec.commutes(a, b)

    def test_positive_sample_conflicts_with_reads(self):
        sample = Action("o", "sample", (3,), ())
        total = Action("o", "total", (), (0,))
        peak = Action("o", "peak", (), (0,))
        assert not self.spec.commutes(sample, total)
        assert not self.spec.commutes(sample, peak)

    def test_zero_sample_commutes_with_reads(self):
        sample = Action("o", "sample", (0,), ())
        total = Action("o", "total", (), (0,))
        peak = Action("o", "peak", (), (0,))
        assert self.spec.commutes(sample, total)
        assert self.spec.commutes(sample, peak)

    def test_semantics_tracks_total_and_peak(self):
        state = self.sem.initial_state()
        for d in (3, 1, 5, 2):
            state, _ = self.sem.apply(state, "sample", (d,))
        _, total = self.sem.apply(state, "total", ())
        _, peak = self.sem.apply(state, "peak", ())
        assert total == (11,)
        assert peak == (5,)
