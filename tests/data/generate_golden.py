#!/usr/bin/env python
"""(Re)generate the golden-trace regression corpus.

Each scenario below builds a small, fully deterministic trace whose action
return values are realized through the bundled executable semantics (so
the traces are consistent executions, not just syntax).  The script dumps
the trace as JSONL next to an expected-report snapshot produced by the
*sequential* detector — the reference implementation of Algorithm 1.

Run from the repository root after an intentional verdict-affecting
change, then review the diff of ``tests/data/expected/`` like any other
code change::

    PYTHONPATH=src:. python tests/data/generate_golden.py

``tests/core/test_golden_traces.py`` replays the corpus through the
sequential and sharded detectors and fails on any verdict drift.

Alongside each race snapshot the script freezes the ``--stats-json``
observability report (``expected/<name>.stats.json``) by invoking the
real CLI and scrubbing the non-deterministic timing fields — counters,
breakdown attribution, and the report's key structure are deterministic
because the CLI analyzes offline traces at ``sample_interval=1``.
``multi_object_mixed`` additionally gets a ``--workers 2`` variant so the
shard-merged attribution path is frozen too.
"""

import contextlib
import io
import json
import pathlib
import tempfile

from repro import cli
from repro.core.detector import CommutativityRaceDetector
from repro.core.serialize import dump_trace
from repro.core.trace import TraceBuilder
from repro.obs import scrub_timings
from repro.specs import bundled_objects

from tests.support import race_snapshot

DATA_DIR = pathlib.Path(__file__).resolve().parent
EXPECTED_DIR = DATA_DIR / "expected"


class Script:
    """A TraceBuilder that realizes returns via object semantics."""

    def __init__(self, bindings):
        self.builder = TraceBuilder(root=0)
        self.bindings = bindings
        registry = bundled_objects()
        self._semantics = {name: registry[kind].semantics()
                           for name, kind in bindings.items()}
        self._states = {name: sem.initial_state()
                        for name, sem in self._semantics.items()}

    def call(self, tid, obj, method, *args):
        sem = self._semantics[obj]
        self._states[obj], returns = sem.apply(self._states[obj],
                                               method, tuple(args))
        self.builder.invoke(tid, obj, method, *args, returns=returns)
        return self

    def __getattr__(self, name):
        # fork/join/acquire/release/... pass through to the builder.
        def forward(*args, **kw):
            getattr(self.builder, name)(*args, **kw)
            return self
        return forward

    def build(self):
        return self.builder.build(), self.bindings


def fig3_dictionary():
    """The paper's Fig. 3: racing puts, joinall-ordered size."""
    script = Script({"o": "dictionary"})
    script.fork(0, 1).fork(0, 2)
    script.call(2, "o", "put", "a", 1)
    script.call(1, "o", "put", "a", 2)
    script.join(0, 1).join(0, 2)
    script.call(0, "o", "size")
    return script.build()


def locked_dictionary():
    """The same shape fully lock-protected: zero races."""
    script = Script({"o": "dictionary"})
    script.fork(0, 1).fork(0, 2)
    for tid, key, value in ((2, "a", 1), (1, "a", 2), (1, "b", 3)):
        script.acquire(tid, "L")
        script.call(tid, "o", "put", key, value)
        script.release(tid, "L")
    script.join(0, 1).join(0, 2)
    script.call(0, "o", "size")
    return script.build()


def set_churn():
    """Two workers add/remove/query overlapping set elements."""
    script = Script({"s": "set"})
    script.fork(0, 1).fork(0, 2)
    script.call(1, "s", "add", 1)
    script.call(2, "s", "add", 1)      # duplicate add: commutes
    script.call(2, "s", "remove", 1)   # races with the first add
    script.call(1, "s", "contains", 2)
    script.call(2, "s", "add", 2)      # races with the contains
    script.join(0, 1).join(0, 2)
    script.call(0, "s", "size")
    return script.build()


def counter_mixed():
    """Commuting increments vs a racy concurrent read."""
    script = Script({"c": "counter"})
    script.fork(0, 1).fork(0, 2).fork(0, 3)
    script.call(1, "c", "add", 5)
    script.call(2, "c", "add", 3)      # add/add commute: no race
    script.call(3, "c", "read")        # races with both adds
    script.join_all(0, (1, 2, 3))
    script.call(0, "c", "read")        # ordered after joinall: no race
    return script.build()


def queue_pipeline():
    """A producer/consumer queue with partial ordering through a lock."""
    script = Script({"q": "queue"})
    script.fork(0, 1).fork(0, 2)
    script.call(1, "q", "enq", "x")
    script.acquire(1, "L").release(1, "L")
    script.acquire(2, "L")             # lock orders enq before this deq...
    script.call(2, "q", "deq")
    script.release(2, "L")
    script.call(2, "q", "enq", "y")    # ...but this enq races with t1's
    script.call(1, "q", "peek")
    script.join(0, 1).join(0, 2)
    script.call(0, "q", "size")
    return script.build()


def multi_object_mixed():
    """Three objects of different kinds in one trace (shard fodder)."""
    script = Script({"d": "dictionary", "r": "register", "a": "accumulator"})
    script.fork(0, 1).fork(0, 2)
    script.call(1, "d", "put", "k", 7)
    script.call(2, "d", "get", "k")    # races with the put
    script.call(1, "r", "write", 1)
    script.call(2, "r", "write", 2)    # write/write race
    script.call(1, "a", "sample", 4)
    script.call(2, "a", "sample", 9)   # samples commute: no race
    script.call(2, "a", "total")       # races with both samples
    script.join(0, 1).join(0, 2)
    script.call(0, "d", "size")
    return script.build()


SCENARIOS = (fig3_dictionary, locked_dictionary, set_churn, counter_mixed,
             queue_pipeline, multi_object_mixed)

#: frozen ``repro-verify-specs --json`` verdict document (all kinds,
#: default depths); regenerated alongside the race corpus so any change
#: to the specs, registry, or verdict schema shows up as a reviewable
#: golden diff.
VERIFY_GOLDEN = "verify_specs.json"


def verify_golden(out_path):
    from repro.verify.cli import run_verification

    document = run_verification([])
    with open(out_path, "w", encoding="utf-8") as out:
        json.dump(document, out, indent=2, sort_keys=True)
        out.write("\n")

#: scenarios that also freeze a shard-merged (--workers 2) stats report
SHARDED_STATS = ("multi_object_mixed",)


def stats_golden(trace_path, bindings, out_path, workers=1):
    """Freeze the CLI's ``--stats-json`` report for one scenario."""
    argv = [str(trace_path), "--workers", str(workers)]
    for obj, kind in bindings.items():
        argv += ["--object", f"{obj}={kind}"]
    with tempfile.NamedTemporaryFile("r", suffix=".json") as tmp:
        with contextlib.redirect_stdout(io.StringIO()):
            cli.main(argv + ["--stats-json", tmp.name])
        report = json.load(open(tmp.name, encoding="utf-8"))
    with open(out_path, "w", encoding="utf-8") as out:
        json.dump(scrub_timings(report), out, indent=2, sort_keys=True)
        out.write("\n")


def main():
    EXPECTED_DIR.mkdir(parents=True, exist_ok=True)
    registry = bundled_objects()
    for scenario in SCENARIOS:
        trace, bindings = scenario()
        name = scenario.__name__
        with open(DATA_DIR / f"{name}.jsonl", "w", encoding="utf-8") as out:
            dump_trace(trace, out)
        detector = CommutativityRaceDetector(root=trace.root)
        for obj, kind in bindings.items():
            detector.register_object(obj, registry[kind].representation())
        detector.run(trace)
        expected = {
            "trace": f"{name}.jsonl",
            "bindings": bindings,
            "races": [race_snapshot(race) for race in detector.races],
        }
        with open(EXPECTED_DIR / f"{name}.json", "w",
                  encoding="utf-8") as out:
            json.dump(expected, out, indent=2, sort_keys=True)
            out.write("\n")
        stats_golden(DATA_DIR / f"{name}.jsonl", bindings,
                     EXPECTED_DIR / f"{name}.stats.json")
        if name in SHARDED_STATS:
            stats_golden(DATA_DIR / f"{name}.jsonl", bindings,
                         EXPECTED_DIR / f"{name}.workers2.stats.json",
                         workers=2)
        print(f"{name}: {len(trace)} events, "
              f"{len(detector.races)} race(s)")
    verify_golden(EXPECTED_DIR / VERIFY_GOLDEN)
    print(f"{VERIFY_GOLDEN}: spec verification verdicts frozen")


if __name__ == "__main__":
    main()
