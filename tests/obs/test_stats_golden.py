"""Snapshot tests freezing the ``--stats-json`` report schema.

Each golden under ``tests/data/expected/*.stats.json`` was produced by
``tests/data/generate_golden.py`` running the real CLI at
``sample_interval=1`` and scrubbing the wall-clock timing fields.  The
tests replay the same invocation and compare the scrubbed reports, so
any drift in the report key structure, counter totals, or breakdown
attribution — intended or not — shows up as a reviewable diff against a
regenerated golden.
"""

import contextlib
import io
import json
import pathlib

import pytest

from repro import cli
from repro.obs import scrub_timings

DATA_DIR = pathlib.Path(__file__).resolve().parent.parent / "data"
EXPECTED_DIR = DATA_DIR / "expected"

SCENARIOS = sorted(path.name[:-len(".stats.json")]
                   for path in EXPECTED_DIR.glob("*.stats.json")
                   if ".workers" not in path.name)


def golden_bindings(name):
    """The object bindings frozen next to the race-report golden."""
    expected = json.loads((EXPECTED_DIR / f"{name}.json").read_text())
    return expected["bindings"]


def run_cli_stats(name, tmp_path, workers=1):
    out_path = tmp_path / "stats.json"
    argv = [str(DATA_DIR / f"{name}.jsonl"), "--workers", str(workers)]
    for obj, kind in golden_bindings(name).items():
        argv += ["--object", f"{obj}={kind}"]
    argv += ["--stats-json", str(out_path)]
    with contextlib.redirect_stdout(io.StringIO()):
        exit_code = cli.main(argv)
    return exit_code, json.loads(out_path.read_text())


def test_the_corpus_is_present():
    assert len(SCENARIOS) >= 6


@pytest.mark.parametrize("name", SCENARIOS)
def test_stats_report_matches_golden(name, tmp_path):
    exit_code, report = run_cli_stats(name, tmp_path)
    golden = json.loads((EXPECTED_DIR / f"{name}.stats.json").read_text())
    assert scrub_timings(report) == golden
    # racy scenarios exit 1, race-free ones 0 — frozen along with the rest
    races = golden["stats"]["counters"]["races"]
    assert exit_code == (1 if races else 0)


def test_sharded_stats_report_matches_golden(tmp_path):
    _, report = run_cli_stats("multi_object_mixed", tmp_path, workers=2)
    golden = json.loads(
        (EXPECTED_DIR / "multi_object_mixed.workers2.stats.json").read_text())
    assert scrub_timings(report) == golden


def test_sharded_and_sequential_goldens_agree_on_attribution(tmp_path):
    """workers=2 merges shard metrics back to the sequential totals."""
    seq = json.loads(
        (EXPECTED_DIR / "multi_object_mixed.stats.json").read_text())
    par = json.loads(
        (EXPECTED_DIR / "multi_object_mixed.workers2.stats.json").read_text())
    assert par["stats"]["breakdowns"] == seq["stats"]["breakdowns"]
    assert (par["stats"]["counters"]["races"]
            == seq["stats"]["counters"]["races"])
