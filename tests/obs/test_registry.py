"""Unit tests for the metrics registry, spans, and report sinks."""

import io
import json
import pickle

import pytest

from repro.obs import (DEFAULT_SAMPLE_INTERVAL, NULL_REGISTRY, Registry,
                       SpanStream, Timer, build_report, publish_detector_stats,
                       render_table, scrub_timings, write_report)
from repro.obs.report import REPORT_KEY, REPORT_VERSION


class TestTimer:
    def test_record_accumulates_weighted(self):
        timer = Timer()
        timer.record(100, weight=4)
        timer.record(300)
        assert timer.count == 5
        assert timer.samples == 2
        assert timer.total_ns == 100 * 4 + 300
        assert timer.min_ns == 100
        assert timer.max_ns == 300

    def test_buckets_are_log2_weighted(self):
        timer = Timer()
        timer.record(100, weight=2)   # bit_length 7
        timer.record(127)             # bit_length 7
        timer.record(128)             # bit_length 8
        assert timer.buckets == {7: 3, 8: 1}

    def test_absorb_sums_and_bounds(self):
        a, b = Timer(), Timer()
        a.record(100)
        b.record(50, weight=3)
        b.record(900)
        a.absorb(b)
        assert a.count == 5
        assert a.samples == 3
        assert a.total_ns == 100 + 150 + 900
        assert a.min_ns == 50
        assert a.max_ns == 900

    def test_absorb_empty_is_identity(self):
        a = Timer()
        a.record(10)
        before = a.snapshot()
        a.absorb(Timer())
        assert a.snapshot() == before

    def test_snapshot_stringifies_bucket_keys(self):
        timer = Timer()
        timer.record(5)
        snap = timer.snapshot()
        assert list(snap["buckets"]) == ["3"]
        json.dumps(snap)  # JSON-able


class TestRegistry:
    def test_counters_sum(self):
        reg = Registry()
        reg.add("events")
        reg.add("events", 4)
        assert reg.snapshot()["counters"] == {"events": 5}

    def test_gauges_keep_maximum(self):
        reg = Registry()
        reg.gauge("shards", 2)
        reg.gauge("shards", 7)
        reg.gauge("shards", 3)
        assert reg.snapshot()["gauges"] == {"shards": 7}

    def test_breakdown_is_the_live_dict(self):
        reg = Registry()
        table = reg.breakdown("by_object")
        table["o"] = 3
        reg.count_in("by_object", "o", 2)
        assert reg.snapshot()["breakdowns"]["by_object"] == {"o": 5}

    def test_tuple_breakdown_keys_join_on_snapshot(self):
        reg = Registry()
        reg.count_in("pairs", ("put", "get"))
        assert reg.snapshot()["breakdowns"]["pairs"] == {"put×get": 1}

    def test_span_records_exact_timer(self):
        reg = Registry()
        with reg.span("stamp"):
            pass
        snap = reg.snapshot()["timers"]["stamp"]
        assert snap["count"] == 1
        assert snap["samples"] == 1
        assert snap["total_ns"] >= 0

    def test_snapshot_is_deterministically_ordered(self):
        reg = Registry()
        reg.add("zebra")
        reg.add("apple")
        reg.count_in("b", "z")
        reg.count_in("a", "y")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["apple", "zebra"]
        assert list(snap["breakdowns"]) == ["a", "b"]

    def test_sample_interval_validated(self):
        with pytest.raises(ValueError):
            Registry(sample_interval=0)

    def test_default_sample_interval(self):
        assert Registry().sample_interval == DEFAULT_SAMPLE_INTERVAL

    def test_pickle_drops_stream(self):
        stream = SpanStream(io.StringIO())
        reg = Registry(stream=stream)
        reg.add("n")
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.stream is None
        assert clone.snapshot()["counters"] == {"n": 1}


class TestAbsorb:
    def test_absorb_sums_everything(self):
        a, b = Registry(), Registry()
        a.add("events", 2)
        b.add("events", 3)
        a.gauge("depth", 1)
        b.gauge("depth", 9)
        a.count_in("by_obj", "o", 1)
        b.count_in("by_obj", "o", 4)
        b.count_in("by_obj", "p", 1)
        b.timer("shard").record(100)
        a.absorb(b)
        snap = a.snapshot()
        assert snap["counters"] == {"events": 5}
        assert snap["gauges"] == {"depth": 9}
        assert snap["breakdowns"]["by_obj"] == {"o": 5, "p": 1}
        assert snap["timers"]["shard"]["count"] == 1

    def test_absorb_into_disabled_is_noop(self):
        disabled, src = Registry(enabled=False), Registry()
        src.add("n")
        disabled.absorb(src)
        assert disabled.snapshot() == {"enabled": False}

    def test_absorb_from_disabled_is_noop(self):
        reg = Registry()
        reg.add("n")
        before = reg.snapshot()
        reg.absorb(Registry(enabled=False))
        assert reg.snapshot() == before


class TestDisabled:
    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled

    def test_every_mutator_is_a_noop(self):
        reg = Registry(enabled=False)
        reg.add("n", 5)
        reg.gauge("g", 1)
        reg.count_in("b", "k")
        reg.breakdown("b2")["k"] = 9      # throwaway dict
        reg.timer("t").record(10)          # throwaway timer
        with reg.span("s"):
            pass
        assert reg.snapshot() == {"enabled": False}

    def test_disabled_span_is_shared_noop(self):
        reg = Registry(enabled=False)
        assert reg.span("a") is reg.span("b")


class TestSpanStream:
    def test_emits_jsonl_records(self):
        sink = io.StringIO()
        stream = SpanStream(sink)
        stream.emit("stamp", 1234)
        stream.emit("check", 5)
        lines = [json.loads(line) for line in
                 sink.getvalue().strip().splitlines()]
        assert [rec["name"] for rec in lines] == ["stamp", "check"]
        assert lines[0]["dur_ns"] == 1234
        assert all(rec["pid"] > 0 and rec["ts_ns"] > 0 for rec in lines)

    def test_path_sink_and_context_manager(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanStream(str(path)) as stream:
            stream.emit("load", 7)
        record = json.loads(path.read_text().strip())
        assert record["name"] == "load"

    def test_registry_span_feeds_the_stream(self):
        sink = io.StringIO()
        reg = Registry(stream=SpanStream(sink))
        with reg.span("merge"):
            pass
        assert json.loads(sink.getvalue())["name"] == "merge"


class TestReport:
    def _report(self):
        reg = Registry(sample_interval=1)
        reg.add("events", 3)
        with reg.span("stamp"):
            pass
        reg.count_in("checks_by_object", "o", 2)
        return build_report(reg, meta={"detector": "rd2", "workers": 1})

    def test_build_report_shape(self):
        report = self._report()
        assert report[REPORT_KEY] == REPORT_VERSION
        assert report["meta"] == {"detector": "rd2", "workers": 1}
        assert report["stats"]["counters"]["events"] == 3

    def test_write_report_round_trips(self):
        report = self._report()
        out = io.StringIO()
        write_report(report, out)
        assert json.loads(out.getvalue()) == report
        assert out.getvalue().endswith("\n")

    def test_scrub_timings_zeroes_but_keeps_schema(self):
        report = self._report()
        scrubbed = scrub_timings(report)
        stamp = scrubbed["stats"]["timers"]["stamp"]
        assert stamp["total_ns"] == 0
        assert stamp["min_ns"] == 0
        assert stamp["max_ns"] == 0
        assert stamp["buckets"] == {}
        assert stamp["count"] == 1          # deterministic fields survive
        assert stamp["samples"] == 1
        # the original is not mutated
        assert report["stats"]["timers"]["stamp"]["total_ns"] >= 0

    def test_publish_detector_stats(self):
        from repro.core.detector import DetectorStats
        reg = Registry()
        stats = DetectorStats(events=7, actions=3, conflict_checks=5)
        publish_detector_stats(reg, stats)
        counters = reg.snapshot()["counters"]
        assert counters["events"] == 7
        assert counters["actions"] == 3
        assert counters["conflict_checks"] == 5

    def test_render_table_lists_phases_and_breakdowns(self):
        text = render_table(self._report())
        assert "stamp" in text
        assert "events" in text
        assert "checks_by_object" in text
        assert "detector=rd2" in text
