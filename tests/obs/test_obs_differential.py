"""Differential guarantee: observability must never change verdicts.

Replays a randomized multi-object corpus with metrics disabled and with
the registry enabled (exact and sampled), serializing each run's race
reports to JSON and requiring the bytes to match.  Any divergence means
the instrumentation leaked into Algorithm 1's control flow.
"""

import json

import pytest

from repro.core.detector import CommutativityRaceDetector
from repro.core.parallel import ShardedDetector
from repro.obs import Registry

from tests.support import (build_multi_object_trace,
                           random_multi_object_program, race_snapshot,
                           register_bindings)

CORPUS = range(120)

#: seeds exercised through a real worker pool (slow: process spawn)
POOL_SEEDS = (3, 57)


def report_bytes(detector_factory, trace, bindings):
    detector = register_bindings(detector_factory(), bindings)
    races = detector.run(trace)
    return json.dumps([race_snapshot(race) for race in races],
                      sort_keys=True).encode()


@pytest.mark.parametrize("seed", CORPUS)
def test_sequential_reports_identical_with_obs(seed):
    trace, bindings = build_multi_object_trace(
        random_multi_object_program(seed))
    baseline = report_bytes(
        lambda: CommutativityRaceDetector(root=0), trace, bindings)
    exact = report_bytes(
        lambda: CommutativityRaceDetector(
            root=0, obs=Registry(sample_interval=1)), trace, bindings)
    sampled = report_bytes(
        lambda: CommutativityRaceDetector(
            root=0, obs=Registry(sample_interval=3)), trace, bindings)
    assert exact == baseline
    assert sampled == baseline


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_inline_sharded_reports_identical_with_obs(seed):
    trace, bindings = build_multi_object_trace(
        random_multi_object_program(seed))
    baseline = report_bytes(
        lambda: ShardedDetector(root=0, workers=1), trace, bindings)
    instrumented = report_bytes(
        lambda: ShardedDetector(root=0, workers=1,
                                obs=Registry(sample_interval=1)),
        trace, bindings)
    assert instrumented == baseline


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_sharded_reports_identical_with_obs(seed):
    trace, bindings = build_multi_object_trace(
        random_multi_object_program(seed))
    baseline = report_bytes(
        lambda: CommutativityRaceDetector(root=0), trace, bindings)
    pooled = report_bytes(
        lambda: ShardedDetector(root=0, workers=2,
                                obs=Registry(sample_interval=1)),
        trace, bindings)
    assert pooled == baseline
