"""Property tests: registry merging is a commutative monoid; disabled
registries are inert.

The sharded pipeline folds worker registries into the facade's in
whatever order the pool yields them, so ``absorb`` must be associative
and commutative (with the empty registry as identity) for the merged
report to be deterministic.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Registry

# One registry mutation: (kind, name, key, amount).
_NAMES = ("events", "checks", "races")
_KEYS = ("o1", "o2", ("put", "get"), ("del", "∅"))

_OPS = st.lists(
    st.tuples(st.sampled_from(("add", "gauge", "count_in", "timer")),
              st.sampled_from(_NAMES),
              st.sampled_from(_KEYS),
              st.integers(min_value=0, max_value=100)),
    max_size=30)


def apply_ops(registry, ops):
    for kind, name, key, amount in ops:
        if kind == "add":
            registry.add(name, amount)
        elif kind == "gauge":
            registry.gauge(name, amount)
        elif kind == "count_in":
            registry.count_in(name, key, amount)
        else:
            # Deterministic "durations": recorded, not measured.
            registry.timer(name).record(amount, weight=1 + amount % 3)
    return registry


def registry_from(ops):
    return apply_ops(Registry(), ops)


@given(_OPS, _OPS)
def test_absorb_is_commutative(ops_a, ops_b):
    ab = registry_from(ops_a)
    ab.absorb(registry_from(ops_b))
    ba = registry_from(ops_b)
    ba.absorb(registry_from(ops_a))
    assert ab.snapshot() == ba.snapshot()


@given(_OPS, _OPS, _OPS)
def test_absorb_is_associative(ops_a, ops_b, ops_c):
    left = registry_from(ops_a)
    left.absorb(registry_from(ops_b))
    left.absorb(registry_from(ops_c))

    bc = registry_from(ops_b)
    bc.absorb(registry_from(ops_c))
    right = registry_from(ops_a)
    right.absorb(bc)
    assert left.snapshot() == right.snapshot()


@given(_OPS)
def test_empty_registry_is_identity(ops):
    reg = registry_from(ops)
    expected = reg.snapshot()
    reg.absorb(Registry())
    assert reg.snapshot() == expected

    fresh = Registry()
    fresh.absorb(registry_from(ops))
    assert fresh.snapshot() == expected


@settings(max_examples=30)
@given(st.lists(_OPS, min_size=1, max_size=6),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_any_merge_order_yields_the_same_totals(shards, seed):
    """The pool's completion order must not leak into the merged report."""
    reference = Registry()
    for ops in shards:
        reference.absorb(registry_from(ops))

    shuffled = list(shards)
    random.Random(seed).shuffle(shuffled)
    merged = Registry()
    for ops in shuffled:
        merged.absorb(registry_from(ops))
    assert merged.snapshot() == reference.snapshot()


@given(_OPS)
def test_disabled_registry_emits_nothing(ops):
    reg = apply_ops(Registry(enabled=False), ops)
    with reg.span("phase"):
        pass
    assert reg.snapshot() == {"enabled": False}


@given(_OPS, _OPS)
def test_disabled_registry_neither_absorbs_nor_contributes(ops_a, ops_b):
    disabled = apply_ops(Registry(enabled=False), ops_a)
    disabled.absorb(registry_from(ops_b))
    assert disabled.snapshot() == {"enabled": False}

    enabled = registry_from(ops_b)
    expected = enabled.snapshot()
    enabled.absorb(disabled)
    assert enabled.snapshot() == expected
