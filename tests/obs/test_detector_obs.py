"""Observability instrumentation of the analyzers themselves.

At ``sample_interval=1`` every event is sampled, so the detector's
breakdown attribution is exact and can be checked against hand-built
traces; larger intervals are statistical and only their bookkeeping
(weights, the ∅ sentinel) is asserted here.
"""

from repro.baselines.djit import Djit
from repro.baselines.eraser import Eraser
from repro.baselines.fasttrack import FastTrack
from repro.core.detector import UNTOUCHED, CommutativityRaceDetector
from repro.core.events import NIL, EventKind
from repro.core.parallel import ShardedDetector
from repro.core.trace import TraceBuilder
from repro.logic.spec import CommutativitySpec
from repro.obs import Registry
from repro.runtime.instrument import intercept
from repro.runtime.monitor import Monitor
from repro.specs.dictionary import dictionary_representation

from tests.support import (build_multi_object_trace,
                           random_multi_object_program, register_bindings)


def race_trace():
    """Fig. 3's shape: two unordered same-key puts, a joined size."""
    return (TraceBuilder(root=0)
            .fork(0, 1).fork(0, 2)
            .invoke(1, "o", "put", "a.com", "c1", returns=NIL)
            .invoke(2, "o", "put", "a.com", "c2", returns="c1")
            .join_all(0, [1, 2])
            .invoke(0, "o", "size", returns=1)
            .build())


def exact_detector(**kwargs):
    obs = Registry(sample_interval=1)
    det = CommutativityRaceDetector(root=0, obs=obs, **kwargs)
    det.register_object("o", dictionary_representation())
    return det, obs


class TestExactAttribution:
    """sample_interval=1: breakdowns must match DetectorStats exactly."""

    def test_checks_by_object_matches_stats(self):
        det, obs = exact_detector()
        det.run(race_trace())
        breakdowns = obs.snapshot()["breakdowns"]
        assert breakdowns["checks_by_object"] == {
            "o": det.stats.conflict_checks}

    def test_races_by_object_matches_stats(self):
        det, obs = exact_detector()
        races = det.run(race_trace())
        assert len(races) == det.stats.races == 1
        breakdowns = obs.snapshot()["breakdowns"]
        assert breakdowns["races_by_object"] == {"o": 1}

    def test_race_attributed_to_the_put_put_pair(self):
        det, obs = exact_detector()
        det.run(race_trace())
        breakdowns = obs.snapshot()["breakdowns"]
        assert breakdowns["races_by_pair"] == {"put×put": 1}

    def test_check_pairs_sum_to_conflict_checks(self):
        det, obs = exact_detector()
        det.run(race_trace())
        pairs = obs.snapshot()["breakdowns"]["checks_by_pair"]
        assert sum(pairs.values()) == det.stats.conflict_checks
        # The conflicting probe hit the first put's recorded point; the
        # probes that found no active point attribute to the ∅ sentinel.
        assert pairs["put×put"] == 1
        assert pairs[f"put×{UNTOUCHED}"] > 0

    def test_race_free_trace_attributes_no_races(self):
        det, obs = exact_detector()
        trace = (TraceBuilder(root=0)
                 .fork(0, 1)
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .join(0, 1)
                 .invoke(0, "o", "get", "k", returns=1)
                 .build())
        assert det.run(trace) == []
        snap = obs.snapshot()["breakdowns"]
        assert snap["races_by_object"] == {}
        assert snap["races_by_pair"] == {}
        assert snap["checks_by_object"] == {"o": det.stats.conflict_checks}

    def test_stamp_timer_counts_every_event(self):
        det, obs = exact_detector()
        trace = race_trace()
        det.run(trace)
        timers = obs.snapshot()["timers"]
        assert timers["stamp"]["count"] == len(trace)
        assert timers["check"]["count"] == det.stats.actions

    def test_pruning_is_attributed(self):
        det, obs = exact_detector(prune_interval=1)
        trace = (TraceBuilder(root=0)
                 .fork(0, 1)
                 .invoke(1, "o", "put", "k", 1, returns=NIL)
                 .join(0, 1)
                 .invoke(0, "o", "put", "k2", 2, returns=NIL)
                 .invoke(0, "o", "put", "k3", 3, returns=NIL)
                 .build())
        det.run(trace)
        assert det.stats.points_pruned > 0
        pruned = obs.snapshot()["breakdowns"]["pruned_by_object"]
        assert pruned == {"o": det.stats.points_pruned}

    def test_disabled_registry_records_nothing(self):
        obs = Registry(enabled=False)
        det = CommutativityRaceDetector(root=0, obs=obs)
        det.register_object("o", dictionary_representation())
        races = det.run(race_trace())
        assert len(races) == 1
        assert obs.snapshot() == {"enabled": False}


class TestSampledAttribution:
    """interval > 1: counts are weight-scaled, unsampled writers show ∅."""

    def test_weights_scale_by_the_interval(self):
        obs = Registry(sample_interval=2)
        det = CommutativityRaceDetector(root=0, obs=obs)
        det.register_object("o", dictionary_representation())
        det.run(race_trace())
        snap = obs.snapshot()
        # Sampled events: 1st, 3rd, 5th, ... — check tallies are scaled
        # by the interval, so every count is a multiple of it.
        for table in ("checks_by_object", "checks_by_pair", "races_by_pair"):
            assert all(count % 2 == 0
                       for count in snap["breakdowns"][table].values())
        assert snap["timers"]["stamp"]["count"] % 2 == 0
        # Race totals per object stay exact regardless of sampling.
        assert snap["breakdowns"]["races_by_object"] == {"o": 1}

    def test_unsampled_writers_attribute_as_untouched(self):
        obs = Registry(sample_interval=2)
        det = CommutativityRaceDetector(root=0, obs=obs)
        det.register_object("o", dictionary_representation())
        # Events: fork[S] fork[N] put[S] put[N] size[S].  The second put's
        # points were never labeled, so the sampled size probe can only
        # attribute them to the ∅ sentinel.
        trace = (TraceBuilder(root=0)
                 .fork(0, 1).fork(0, 2)
                 .invoke(1, "o", "put", "a", 1, returns=NIL)
                 .invoke(2, "o", "put", "a", 2, returns=1)
                 .invoke(0, "o", "size", returns=1)
                 .build())
        det.run(trace)
        pairs = obs.snapshot()["breakdowns"]["checks_by_pair"]
        assert any(key.endswith(f"×{UNTOUCHED}") for key in pairs)


class TestShardedObs:
    def _trace(self, seed=7):
        program = random_multi_object_program(seed)
        return build_multi_object_trace(program)

    def test_phase_spans_and_shard_gauges(self):
        trace, bindings = self._trace()
        obs = Registry(sample_interval=1)
        det = register_bindings(
            ShardedDetector(root=0, workers=1, obs=obs), bindings)
        det.run(trace)
        snap = obs.snapshot()
        for phase in ("stamp", "fanout", "merge", "shard"):
            assert snap["timers"][phase]["count"] >= 1
        assert snap["gauges"]["shards"] >= 1
        assert snap["gauges"]["hb_threads"] >= 1

    def test_inline_shards_match_sequential_attribution(self):
        trace, bindings = self._trace()
        seq_obs = Registry(sample_interval=1)
        seq = register_bindings(
            CommutativityRaceDetector(root=0, obs=seq_obs), bindings)
        seq.run(trace)

        shard_obs = Registry(sample_interval=1)
        sharded = register_bindings(
            ShardedDetector(root=0, workers=1, obs=shard_obs), bindings)
        sharded.run(trace)

        seq_b = seq_obs.snapshot()["breakdowns"]
        shard_b = shard_obs.snapshot()["breakdowns"]
        for table in ("checks_by_object", "checks_by_pair",
                      "races_by_object", "races_by_pair"):
            assert shard_b.get(table) == seq_b.get(table), table

    def test_pool_workers_merge_the_same_attribution(self):
        trace, bindings = self._trace(seed=11)
        seq_obs = Registry(sample_interval=1)
        seq = register_bindings(
            CommutativityRaceDetector(root=0, obs=seq_obs), bindings)
        seq.run(trace)

        pool_obs = Registry(sample_interval=1)
        pooled = register_bindings(
            ShardedDetector(root=0, workers=2, obs=pool_obs), bindings)
        pooled.run(trace)

        assert (pool_obs.snapshot()["breakdowns"].get("checks_by_object")
                == seq_obs.snapshot()["breakdowns"].get("checks_by_object"))


class TestMonitorObs:
    def test_dispatch_tallies_events_by_kind(self):
        obs = Registry()
        monitor = Monitor(record_trace=True, obs=obs)
        child = monitor.fresh_tid()
        monitor.on_fork(child)
        monitor.on_action("o", "put", ("k", 1), (NIL,))
        monitor.on_action("o", "get", ("k",), (1,))
        monitor.on_read("x")
        by_kind = obs.snapshot()["breakdowns"]["events_by_kind"]
        assert by_kind[EventKind.FORK.value] == 1
        assert by_kind[EventKind.ACTION.value] == 2
        assert sum(by_kind.values()) == monitor.events_emitted

    def test_disabled_registry_is_dropped(self):
        monitor = Monitor(record_trace=True, obs=Registry(enabled=False))
        assert monitor.obs is None


class _Counter:
    def __init__(self):
        self.value = 0

    def add(self, amount):
        self.value += amount
        return self.value

    def read(self):
        return self.value


def _counter_spec():
    spec = CommutativitySpec("ctr")
    spec.method("add", params=("amount",), returns=("value",))
    spec.method("read", params=(), returns=("value",))
    spec.default_true()
    return spec


class TestInterceptObs:
    def test_calls_attributed_per_site(self):
        obs = Registry()
        monitor = Monitor(record_trace=True, obs=obs)
        counter = intercept(monitor, _Counter(), _counter_spec(), name="c")
        counter.add(2)
        counter.add(3)
        counter.read()
        sites = obs.snapshot()["breakdowns"]["calls_by_site"]
        assert sites == {"c×add": 2, "c×read": 1}


def memory_trace():
    return (TraceBuilder(root=0)
            .fork(0, 1)
            .write(0, "x")
            .write(1, "x")      # unordered write/write race
            .read(1, "y")
            .build(stamp=False))


class TestBaselineObs:
    def test_fasttrack_counters_and_span(self):
        obs = Registry()
        detector = FastTrack(root=0, obs=obs)
        detector.run(memory_trace())
        snap = obs.snapshot()
        assert snap["counters"]["events"] == 4
        assert snap["counters"]["races"] == detector.race_count >= 1
        assert snap["counters"]["conflict_checks"] == detector.checks
        assert snap["gauges"]["locations"] == 2
        assert snap["timers"]["check"]["count"] == 1

    def test_eraser_warnings(self):
        obs = Registry()
        detector = Eraser(root=0, obs=obs)
        detector.run(memory_trace())
        snap = obs.snapshot()
        assert snap["counters"]["warnings"] == detector.warning_count
        assert snap["gauges"]["locations"] == 2

    def test_djit_races(self):
        obs = Registry()
        detector = Djit(root=0, obs=obs)
        detector.run(memory_trace())
        snap = obs.snapshot()
        assert snap["counters"]["races"] == detector.race_count >= 1
        assert snap["timers"]["check"]["count"] == 1
