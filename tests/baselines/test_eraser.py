"""The Eraser lockset baseline."""

from repro.baselines.eraser import Eraser, LocationState
from repro.core.trace import TraceBuilder


def run(builder):
    detector = Eraser(root=0)
    for event in builder.build(stamp=False):
        detector.process(event)
    return detector


class TestStateMachine:
    def test_single_thread_never_warns(self):
        detector = run(TraceBuilder(root=0)
                       .write(0, "x").read(0, "x").write(0, "x"))
        assert detector.warning_count == 0

    def test_unprotected_shared_write_warns(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .write(1, "x").write(2, "x"))
        assert detector.warning_count == 1

    def test_read_sharing_is_benign(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .read(1, "x").read(2, "x"))
        assert detector.warning_count == 0

    def test_read_then_write_escalates(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .read(1, "x").write(2, "x"))
        assert detector.warning_count == 1

    def test_consistent_lock_discipline_clean(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .acquire(1, "L").write(1, "x").release(1, "L")
                       .acquire(2, "L").write(2, "x").release(2, "L"))
        assert detector.warning_count == 0

    def test_inconsistent_locks_warn(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .acquire(1, "L1").write(1, "x").release(1, "L1")
                       .acquire(2, "L2").write(2, "x").release(2, "L2"))
        assert detector.warning_count == 1

    def test_one_of_several_locks_suffices(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .acquire(1, "A").acquire(1, "B")
                       .write(1, "x")
                       .release(1, "B").release(1, "A")
                       .acquire(2, "B").write(2, "x").release(2, "B"))
        assert detector.warning_count == 0


class TestDifferenceFromHappensBefore:
    def test_fork_join_ordering_does_not_exonerate(self):
        """Eraser checks discipline, not ordering — unlike FastTrack, a
        perfectly ordered unprotected location still warns once shared."""
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1)
                       .write(1, "x")
                       .join(0, 1)
                       .write(0, "x"))
        assert detector.warning_count == 1


class TestReporting:
    def test_one_warning_per_location(self):
        builder = TraceBuilder(root=0).fork(0, 1).fork(0, 2)
        for _ in range(4):
            builder.write(1, "x").write(2, "x")
        detector = run(builder)
        assert detector.warning_count == 1

    def test_distinct_locations_warn_separately(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .write(1, "x").write(2, "x")
                       .write(1, "y").write(2, "y"))
        assert detector.warning_count == 2

    def test_keep_reports_false(self):
        detector = Eraser(root=0, keep_reports=False)
        for event in (TraceBuilder(root=0).fork(0, 1).fork(0, 2)
                      .write(1, "x").write(2, "x").build(stamp=False)):
            detector.process(event)
        assert detector.warning_count == 1
        assert detector.warnings == []

    def test_location_states_enum(self):
        assert LocationState.VIRGIN.value == "virgin"
        assert LocationState.SHARED_MODIFIED.value == "shared-modified"
