"""DJIT+ and its agreement with FastTrack.

FastTrack's guarantee (PLDI'09) is that the epoch optimization reports the
*same first race per variable* as the full vector-clock analysis (verdicts
after a variable has already raced may differ, since the two keep different
summaries of racy history).  We check exactly that on randomized traces.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.djit import Djit
from repro.baselines.fasttrack import FastTrack
from repro.core.trace import Trace, TraceBuilder


def memory_program(seed, threads, ops, lock_rate):
    """A consistent random read/write/lock trace."""
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    tids = list(range(1, threads + 1))
    for tid in tids:
        builder.fork(0, tid)
    locations = [f"x{i}" for i in range(3)]
    locks = ["L1", "L2"]
    held = {tid: None for tid in tids}
    for _ in range(ops):
        tid = rng.choice(tids)
        roll = rng.random()
        if roll < lock_rate and held[tid] is None:
            lock = rng.choice(locks)
            builder.acquire(tid, lock)
            held[tid] = lock
        elif roll < 2 * lock_rate and held[tid] is not None:
            builder.release(tid, held[tid])
            held[tid] = None
        elif roll < 0.6:
            builder.read(tid, rng.choice(locations))
        else:
            builder.write(tid, rng.choice(locations))
    for tid in tids:
        if held[tid] is not None:
            builder.release(tid, held[tid])
    if rng.random() < 0.5:
        builder.join_all(0, tids)
        builder.write(0, rng.choice(locations))
    return builder.build(stamp=False)


def first_races(detector, trace):
    """location -> index of the first event flagged on it."""
    first = {}
    for index, event in enumerate(trace):
        race = detector.process(event)
        if race is not None and race.location not in first:
            first[race.location] = index
    return first


programs = st.tuples(
    st.integers(0, 2 ** 32 - 1),          # seed
    st.integers(min_value=1, max_value=4),  # threads
    st.integers(min_value=0, max_value=60),  # ops
    st.sampled_from((0.0, 0.15, 0.3)),    # lock rate
)


@given(programs)
@settings(max_examples=120, deadline=None)
def test_fasttrack_matches_djit_first_race_per_variable(program):
    trace = memory_program(*program)
    ft_first = first_races(FastTrack(root=0), trace)
    djit_first = first_races(Djit(root=0), trace)
    assert ft_first == djit_first


class TestDjitDirect:
    def test_basic_write_write_race(self):
        trace = (TraceBuilder(root=0).fork(0, 1).fork(0, 2)
                 .write(1, "x").write(2, "x").build(stamp=False))
        detector = Djit(root=0)
        detector.run(trace)
        assert detector.race_count == 1

    def test_lock_protection(self):
        trace = (TraceBuilder(root=0).fork(0, 1).fork(0, 2)
                 .acquire(1, "L").write(1, "x").release(1, "L")
                 .acquire(2, "L").write(2, "x").release(2, "L")
                 .build(stamp=False))
        detector = Djit(root=0)
        detector.run(trace)
        assert detector.race_count == 0

    def test_shared_reads_then_unordered_write(self):
        trace = (TraceBuilder(root=0).fork(0, 1).fork(0, 2).fork(0, 3)
                 .read(1, "x").read(2, "x").write(3, "x")
                 .build(stamp=False))
        detector = Djit(root=0)
        detector.run(trace)
        assert detector.race_count >= 1

    def test_protocol_errors(self):
        from repro.core.errors import MonitorError
        detector = Djit(root=0)
        with pytest.raises(MonitorError):
            detector.process(TraceBuilder(root=0).write(9, "x")
                             .build(stamp=False)[0])

    def test_keep_reports_false(self):
        trace = (TraceBuilder(root=0).fork(0, 1).fork(0, 2)
                 .write(1, "x").write(2, "x").build(stamp=False))
        detector = Djit(root=0, keep_reports=False)
        detector.run(trace)
        assert detector.race_count == 1
        assert detector.races == []
