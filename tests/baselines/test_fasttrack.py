"""The FastTrack baseline: classic scenarios and the epoch machinery."""

import pytest

from repro.baselines.fasttrack import Epoch, FastTrack
from repro.core.errors import MonitorError
from repro.core.trace import TraceBuilder
from repro.core.vector_clock import MutableVectorClock


def run(builder):
    detector = FastTrack(root=0)
    for event in builder.build(stamp=False):
        detector.process(event)
    return detector


class TestEpoch:
    def test_leq(self):
        clock = MutableVectorClock({1: 3})
        assert Epoch(3, 1).leq(clock)
        assert not Epoch(4, 1).leq(clock)

    def test_str(self):
        assert str(Epoch(5, 2)) == "5@2"


class TestWriteWrite:
    def test_unordered_writes_race(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .write(1, "x").write(2, "x"))
        assert detector.race_count == 1
        race = detector.races[0]
        assert race.access == "write"
        assert race.conflicting == "write"

    def test_program_ordered_writes_fine(self):
        detector = run(TraceBuilder(root=0).write(0, "x").write(0, "x"))
        assert detector.race_count == 0

    def test_fork_ordered_writes_fine(self):
        detector = run(TraceBuilder(root=0)
                       .write(0, "x")
                       .fork(0, 1)
                       .write(1, "x"))
        assert detector.race_count == 0

    def test_join_ordered_writes_fine(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1)
                       .write(1, "x")
                       .join(0, 1)
                       .write(0, "x"))
        assert detector.race_count == 0


class TestReadWrite:
    def test_read_after_unordered_write_races(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .write(1, "x").read(2, "x"))
        assert detector.race_count == 1
        assert detector.races[0].access == "read"

    def test_write_after_unordered_read_races(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .read(1, "x").write(2, "x"))
        assert detector.race_count == 1
        assert detector.races[0].conflicting == "read"

    def test_concurrent_reads_benign(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .read(1, "x").read(2, "x"))
        assert detector.race_count == 0

    def test_write_after_shared_reads_races(self):
        # Promoted read vector clock: both readers must be checked.
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2).fork(0, 3)
                       .read(1, "x").read(2, "x")
                       .write(3, "x"))
        assert detector.race_count == 1

    def test_write_after_joined_shared_reads_fine(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .read(1, "x").read(2, "x")
                       .join(0, 1).join(0, 2)
                       .write(0, "x"))
        assert detector.race_count == 0


class TestLocks:
    def test_lock_protected_accesses_fine(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .acquire(1, "L").write(1, "x").release(1, "L")
                       .acquire(2, "L").write(2, "x").release(2, "L"))
        assert detector.race_count == 0

    def test_distinct_locks_do_not_protect(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .acquire(1, "L1").write(1, "x").release(1, "L1")
                       .acquire(2, "L2").write(2, "x").release(2, "L2"))
        assert detector.race_count == 1

    def test_post_release_access_races_with_protected(self):
        detector = run(TraceBuilder(root=0)
                       .fork(0, 1).fork(0, 2)
                       .acquire(1, "L").write(1, "x").release(1, "L")
                       .write(2, "x"))
        assert detector.race_count == 1


class TestRedundancy:
    def test_races_accumulate_per_access(self):
        """The Table 2 redundancy: many reports, one location."""
        builder = TraceBuilder(root=0).fork(0, 1).fork(0, 2)
        for _ in range(5):
            builder.write(1, "x")
            builder.write(2, "x")
        detector = run(builder)
        assert detector.race_count >= 5
        assert len({race.location for race in detector.races}) == 1

    def test_same_epoch_fast_path_skips_checks(self):
        detector = FastTrack(root=0)
        trace = (TraceBuilder(root=0)
                 .read(0, "x").read(0, "x").read(0, "x")
                 .build(stamp=False))
        for event in trace:
            detector.process(event)
        # First read pays a write-check; repeats hit the same-epoch path.
        assert detector.checks == 1


class TestProtocol:
    def test_unknown_thread_rejected(self):
        detector = FastTrack(root=0)
        with pytest.raises(MonitorError):
            detector.process(
                TraceBuilder(root=0).write(7, "x").build(stamp=False)[0])

    def test_double_fork_rejected(self):
        builder = TraceBuilder(root=0).fork(0, 1).fork(0, 1)
        with pytest.raises(MonitorError):
            run(builder)

    def test_keep_reports_false(self):
        detector = FastTrack(root=0, keep_reports=False)
        for event in (TraceBuilder(root=0).fork(0, 1).fork(0, 2)
                      .write(1, "x").write(2, "x").build(stamp=False)):
            detector.process(event)
        assert detector.race_count == 1
        assert detector.races == []

    def test_actions_are_ignored(self):
        from repro.core.events import NIL
        detector = FastTrack(root=0)
        trace = (TraceBuilder(root=0)
                 .invoke(0, "o", "put", "k", 1, returns=NIL)
                 .build(stamp=False))
        for event in trace:
            detector.process(event)
        assert detector.race_count == 0
