"""repro — a reproduction of "Commutativity Race Detection" (PLDI 2014).

Public API highlights:

* :mod:`repro.core` — vector clocks, traces, access points, and the
  commutativity race detector (Algorithm 1).
* :mod:`repro.logic` — ECL formulas, specifications, and the translation to
  access point representations.
* :mod:`repro.specs` — bundled specifications (dictionary of Fig. 6, sets,
  counters, registers, logs, accumulators).
* :mod:`repro.runtime` — the dynamic method-interception runtime (monitored
  collections, shared variables, locks) and pluggable analyzers.
* :mod:`repro.sched` — the deterministic cooperative scheduler.
* :mod:`repro.baselines` — FastTrack and Eraser read/write detectors.
* :mod:`repro.apps` — the evaluation applications (MVStore/PolePosition,
  DynamicEndpointSnitch).
* :mod:`repro.atomicity` — Velodrome-style atomicity checking generalized
  to access-point conflicts (the paper's Section 8 extension).
* :mod:`repro.bench` — the Table 2 / figure harnesses and ablations.
"""

__version__ = "1.0.0"

from .core import (NIL, Action, CommutativityRace, CommutativityRaceDetector,
                   DataRace, Strategy, Trace, TraceBuilder, VectorClock,
                   group_races, tally)
from .logic import CommutativitySpec, parse_formula, translate
from .specs import bundled_objects

__all__ = [
    "NIL", "Action", "CommutativityRace", "CommutativityRaceDetector",
    "DataRace", "Strategy", "Trace", "TraceBuilder", "VectorClock",
    "group_races", "tally",
    "CommutativitySpec", "parse_formula", "translate",
    "bundled_objects",
    "__version__",
]
