"""The ``repro-analyze`` command: offline analysis of saved traces.

Record a trace in a monitored run (``Monitor(record_trace=True)``), park it
with :func:`repro.core.serialize.dump_trace`, then analyze it later::

    repro-analyze trace.jsonl --object o=dictionary --object s=set
    repro-analyze trace.jsonl --object o=dictionary --workers 4
    repro-analyze trace.jsonl --object o=dictionary --detector direct
    repro-analyze trace.jsonl --detector fasttrack
    repro-analyze trace.jsonl --object o=dictionary --atomicity
    repro-analyze trace.jsonl --spec-report dictionary

``--object NAME=KIND`` binds a shared object in the trace to a bundled
specification kind; the commutativity detectors need at least one binding,
the read/write detectors none.

Observability sinks (see :mod:`repro.obs`):

* ``--stats`` prints the per-phase/per-object/per-method-pair table to
  **stderr** (stdout keeps carrying only the race report, so scripted
  comparisons of the analysis output are unaffected),
* ``--stats-json PATH`` writes the frozen JSON report schema,
* ``--spans PATH`` appends coarse spans (load/stamp/fanout/merge/report)
  as JSONL for offline flamegraph-style analysis.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

from .core.errors import ReproError
from .core.races import group_races, tally
from .core.serialize import load_trace
from .obs import (NULL_REGISTRY, Registry, SpanStream, build_report,
                  publish_detector_stats, render_table, write_report)
from .specs import bundled_objects

__all__ = ["main"]


def _parse_bindings(pairs: Sequence[str]) -> List[Tuple[str, str]]:
    registry = bundled_objects()
    bindings = []
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"--object expects NAME=KIND, got {pair!r}")
        name, kind = pair.split("=", 1)
        if kind not in registry:
            raise SystemExit(
                f"unknown object kind {kind!r}; available: "
                f"{sorted(registry)}")
        bindings.append((name, kind))
    return bindings


def _load_trace_file(path: str):
    """Load a JSONL trace, turning format problems into clean exits.

    A malformed line (invalid JSON) or an unknown event kind is a user
    input problem, not a bug — report which file failed and why instead
    of letting the traceback escape.
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return load_trace(stream)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {path!r}: {exc}") from exc
    except (ReproError, ValueError) as exc:
        # ValueError covers json.JSONDecodeError on malformed lines;
        # ReproError covers unknown event kinds, bad sentinels, and
        # truncated traces.
        raise SystemExit(f"invalid trace file {path!r}: {exc}") from exc


def _analyze_commutativity(trace, bindings, detector_kind: str,
                           workers: int = 1, obs=NULL_REGISTRY) -> int:
    registry = bundled_objects()
    if not bindings:
        raise SystemExit(
            "commutativity analysis needs at least one --object NAME=KIND")
    if detector_kind == "rd2":
        if workers > 1:
            from .core.parallel import ShardedDetector
            detector = ShardedDetector(root=trace.root, workers=workers,
                                       obs=obs)
        else:
            from .core.detector import CommutativityRaceDetector
            detector = CommutativityRaceDetector(root=trace.root, obs=obs)
    else:
        if workers > 1:
            raise SystemExit(
                f"--workers applies only to the rd2 detector "
                f"(got --detector {detector_kind})")
        from .core.direct import DirectDetector
        detector = DirectDetector(root=trace.root)
    for name, kind in bindings:
        if detector_kind == "rd2":
            detector.register_object(name, registry[kind].representation())
        else:
            detector.register_object(name, registry[kind].spec().commutes)
    detector.run(trace)
    publish_detector_stats(obs, detector.stats)
    hb = getattr(detector, "happens_before", None)
    if hb is not None:
        obs.gauge("hb_threads", len(hb.known_threads()))
        obs.gauge("hb_locks", len(hb.known_locks()))
    races = detector.races
    suffix = f" [{workers} workers]" if workers > 1 else ""
    with obs.span("report"):
        print(f"{detector_kind}{suffix}: {tally(races)} "
              f"commutativity race report(s)")
        for group in group_races(races):
            print(f"  {group}")
    return 1 if races else 0


def _analyze_memory(trace, detector_kind: str, obs=NULL_REGISTRY) -> int:
    if detector_kind == "fasttrack":
        from .baselines.fasttrack import FastTrack
        detector = FastTrack(root=trace.root, obs=obs)
        detector.run(trace)
        reports = detector.races
    else:
        from .baselines.eraser import Eraser
        detector = Eraser(root=trace.root, obs=obs)
        detector.run(trace)
        reports = detector.warnings
    with obs.span("report"):
        print(f"{detector_kind}: {tally(reports)} report(s)")
        for group in group_races(reports):
            print(f"  {group}")
    return 1 if reports else 0


def _analyze_atomicity(trace, bindings, obs=NULL_REGISTRY) -> int:
    from .atomicity import AtomicityChecker, ConflictMode
    registry = bundled_objects()
    checker = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    for name, kind in bindings:
        checker.register_object(name, registry[kind].representation())
    with obs.span("check"):
        report = checker.analyze(trace)
    obs.add("transactions", len(report.transactions))
    obs.add("conflict_edges", report.conflict_edges)
    obs.add("violations", len(report.violations))
    with obs.span("report"):
        print(f"atomicity: {len(report.transactions)} transactions, "
              f"{report.conflict_edges} conflict edges, "
              f"{len(report.violations)} violation(s)")
        for violation in report.violations:
            print(f"  {violation}")
    return 1 if report.violations else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Analyze a saved trace (JSONL) for commutativity "
                    "races, read/write races, or atomicity violations.")
    parser.add_argument("trace", nargs="?",
                        help="path to a trace written by dump_trace()")
    parser.add_argument("--object", action="append", default=[],
                        metavar="NAME=KIND", dest="objects",
                        help="bind a shared object to a bundled spec kind")
    parser.add_argument("--detector", default="rd2",
                        choices=("rd2", "direct", "fasttrack", "eraser"),
                        help="which analysis to run (default rd2)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fan the rd2 per-object race checks out to N "
                             "worker processes (two-phase sharded pipeline; "
                             "default 1 = sequential)")
    parser.add_argument("--atomicity", action="store_true",
                        help="run the atomicity checker instead")
    parser.add_argument("--spec-report", metavar="KIND",
                        help="print the Fig. 6/7-style report of a bundled "
                             "spec and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print the observability table (per-phase "
                             "timings, per-object and per-method-pair "
                             "attribution) to stderr")
    parser.add_argument("--stats-json", metavar="PATH",
                        help="write the structured observability report "
                             "as JSON")
    parser.add_argument("--spans", metavar="PATH",
                        help="append coarse pipeline spans to PATH as JSONL "
                             "(flamegraph-style offline analysis)")
    args = parser.parse_args(argv)

    if args.spec_report:
        registry = bundled_objects()
        if args.spec_report not in registry:
            raise SystemExit(f"unknown kind {args.spec_report!r}; "
                             f"available: {sorted(registry)}")
        from .logic.pretty import spec_report
        print(spec_report(registry[args.spec_report].spec()))
        return 0

    if not args.trace:
        parser.error("a trace file is required (or use --spec-report)")

    want_obs = args.stats or args.stats_json or args.spans
    stream = SpanStream(args.spans) if args.spans else None
    # Offline analysis can afford exact attribution (sample every event);
    # the sampled default only matters for live runtime monitoring.
    obs = (Registry(sample_interval=1, stream=stream) if want_obs
           else NULL_REGISTRY)

    with obs.span("load"):
        trace = _load_trace_file(args.trace)
    print(f"loaded {len(trace)} events "
          f"({len(trace.actions())} actions, "
          f"{len(trace.threads())} threads)")

    bindings = _parse_bindings(args.objects)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.workers > 1 and (args.detector != "rd2" or args.atomicity):
        parser.error("--workers applies only to the rd2 detector")
    try:
        if args.atomicity:
            code = _analyze_atomicity(trace, bindings, obs=obs)
        elif args.detector in ("rd2", "direct"):
            code = _analyze_commutativity(trace, bindings, args.detector,
                                          workers=args.workers, obs=obs)
        else:
            code = _analyze_memory(trace, args.detector, obs=obs)
    finally:
        if stream is not None:
            stream.close()

    if want_obs:
        mode = "atomicity" if args.atomicity else args.detector
        report = build_report(obs, meta={
            "detector": mode,
            "workers": args.workers,
            "trace": os.path.basename(args.trace),
            "events": len(trace),
        })
        if args.stats_json:
            with open(args.stats_json, "w", encoding="utf-8") as out:
                write_report(report, out)
        if args.stats:
            print(render_table(report), file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
