"""The ``repro-analyze`` command: offline analysis of saved traces.

Record a trace in a monitored run (``Monitor(record_trace=True)``), park it
with :func:`repro.core.serialize.dump_trace`, then analyze it later::

    repro-analyze trace.jsonl --object o=dictionary --object s=set
    repro-analyze trace.jsonl --object o=dictionary --workers 4
    repro-analyze trace.jsonl --object o=dictionary --detector direct
    repro-analyze trace.jsonl --detector fasttrack
    repro-analyze trace.jsonl --object o=dictionary --atomicity
    repro-analyze trace.jsonl --spec-report dictionary
    repro-analyze --verify-specs dictionary

``--object NAME=KIND`` binds a shared object in the trace to a bundled
specification kind; the commutativity detectors need at least one binding,
the read/write detectors none.

Observability sinks (see :mod:`repro.obs`):

* ``--stats`` prints the per-phase/per-object/per-method-pair table to
  **stderr** (stdout keeps carrying only the race report, so scripted
  comparisons of the analysis output are unaffected),
* ``--stats-json PATH`` writes the frozen JSON report schema,
* ``--spans PATH`` appends coarse spans (load/stamp/fanout/merge/report)
  as JSONL for offline flamegraph-style analysis.

Fault tolerance (see ``docs/robustness.md``): multi-worker rd2 runs are
supervised (``--shard-timeout``, ``--shard-retries``), long phase-A passes
can checkpoint (``--checkpoint``, ``--checkpoint-interval``) and a killed
run resumes with ``--resume-from``.  Tolerated faults are summarized on
stderr and recorded under ``"faults"`` in the ``--stats-json`` report.

Exit codes are part of the scripting interface (see ``EXIT_*``): 0 clean,
1 reports found, 2 usage error, 3 unreadable/invalid input, 130
interrupted.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .core.errors import ReproError
from .core.races import group_races, tally
from .core.serialize import load_trace
from .obs import (NULL_REGISTRY, Registry, SpanStream, build_report,
                  publish_detector_stats, render_table, write_report)
from .specs import bundled_objects

__all__ = ["main", "EXIT_CLEAN", "EXIT_REPORTS", "EXIT_USAGE", "EXIT_DATA",
           "EXIT_INTERRUPT"]

#: No reports found, analysis completed.
EXIT_CLEAN = 0
#: Analysis completed and found race/atomicity reports.
EXIT_REPORTS = 1
#: Bad invocation: unknown flags or invalid option values.
EXIT_USAGE = 2
#: Input problem: unreadable or malformed trace file.
EXIT_DATA = 3
#: Interrupted by the user (128 + SIGINT, the shell convention).
EXIT_INTERRUPT = 130

_EXIT_CODE_HELP = """\
exit codes:
  0   analysis completed, no reports
  1   analysis completed, race/atomicity reports found
  2   usage error (bad flag or option value)
  3   input error (unreadable or invalid trace file)
  130 interrupted (SIGINT)
"""


def _fail(message: str, code: int) -> "SystemExit":
    """Exit with a clean one-line diagnostic on stderr (no traceback)."""
    print(f"repro-analyze: error: {message}", file=sys.stderr)
    raise SystemExit(code)


def _parse_bindings(pairs: Sequence[str]) -> List[Tuple[str, str]]:
    registry = bundled_objects()
    bindings = []
    for pair in pairs:
        if "=" not in pair:
            _fail(f"--object expects NAME=KIND, got {pair!r}", EXIT_USAGE)
        name, kind = pair.split("=", 1)
        if kind not in registry:
            _fail(f"unknown object kind {kind!r}; available: "
                  f"{sorted(registry)}", EXIT_USAGE)
        bindings.append((name, kind))
    return bindings


def _parse_workers(raw: str) -> int:
    """Validate ``--workers`` (kept a string so non-integers get our
    one-line diagnostic instead of argparse's usage dump)."""
    try:
        workers = int(raw)
    except ValueError:
        _fail(f"--workers expects a positive integer, got {raw!r}",
              EXIT_USAGE)
    if workers < 1:
        _fail(f"--workers must be >= 1, got {workers}", EXIT_USAGE)
    return workers


def _parse_prune_interval(args) -> int:
    """Validate ``--prune-interval`` (0 = pruning off, the default)."""
    if args.prune_interval is None:
        return 0
    try:
        interval = int(args.prune_interval)
    except ValueError:
        _fail(f"--prune-interval expects a positive integer, got "
              f"{args.prune_interval!r}", EXIT_USAGE)
    if interval < 1:
        _fail(f"--prune-interval must be >= 1, got {interval}", EXIT_USAGE)
    return interval


def _parse_batch_window(args) -> int:
    """Validate ``--batch-window`` (0 = per-event checking, the default)."""
    if args.batch_window is None:
        return 0
    try:
        window = int(args.batch_window)
    except ValueError:
        _fail(f"--batch-window expects a positive integer, got "
              f"{args.batch_window!r}", EXIT_USAGE)
    if window < 1:
        _fail(f"--batch-window must be >= 1, got {window}", EXIT_USAGE)
    return window


def _parse_predict(args) -> int:
    """Validate ``--predict[=WINDOW]`` (0 = prediction off, the default)."""
    if args.predict is None:
        return 0
    try:
        window = int(args.predict)
    except ValueError:
        _fail(f"--predict expects a positive integer window, got "
              f"{args.predict!r}", EXIT_USAGE)
    if window < 1:
        _fail(f"--predict window must be >= 1, got {window}", EXIT_USAGE)
    return window


def _parse_follow_window(args) -> Optional[int]:
    """Validate ``--window`` (None when the flag was not given)."""
    if args.window is None:
        return None
    try:
        window = int(args.window)
    except ValueError:
        _fail(f"--window expects a positive integer, got {args.window!r}",
              EXIT_USAGE)
    if window < 1:
        _fail(f"--window must be >= 1, got {window}", EXIT_USAGE)
    return window


def _parse_follow_timeout(args) -> Optional[float]:
    """Validate ``--follow-timeout`` (None when the flag was not given)."""
    if args.follow_timeout is None:
        return None
    try:
        timeout = float(args.follow_timeout)
    except ValueError:
        _fail(f"--follow-timeout expects a number of seconds, got "
              f"{args.follow_timeout!r}", EXIT_USAGE)
    if timeout <= 0:
        _fail(f"--follow-timeout must be > 0, got {timeout:g}", EXIT_USAGE)
    return timeout


def _load_trace_file(path: str):
    """Load a JSONL trace, turning format problems into clean exits.

    A malformed line (invalid JSON) or an unknown event kind is a user
    input problem, not a bug — report which file failed and why instead
    of letting the traceback escape.
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return load_trace(stream)
    except OSError as exc:
        _fail(f"cannot read trace {path!r}: {exc}", EXIT_DATA)
    except (ReproError, ValueError) as exc:
        # ValueError covers json.JSONDecodeError on malformed lines;
        # ReproError covers unknown event kinds, bad sentinels, and
        # truncated traces.
        _fail(f"invalid trace file {path!r}: {exc}", EXIT_DATA)


def _analyze_commutativity(trace, bindings, detector_kind: str,
                           workers: int = 1, obs=NULL_REGISTRY,
                           supervisor=None, checkpoint=None,
                           resume_from: Optional[str] = None,
                           adaptive: bool = True,
                           prune_interval: int = 0,
                           batch_window: int = 0,
                           backend: str = "pickle",
                           predict_window: int = 0,
                           ) -> Tuple[int, Optional[Dict[str, Any]],
                                      Optional[List[Any]]]:
    registry = bundled_objects()
    if not bindings:
        _fail("commutativity analysis needs at least one --object NAME=KIND",
              EXIT_USAGE)
    sharded = (workers > 1 or supervisor is not None
               or checkpoint is not None or resume_from is not None)
    if detector_kind == "rd2" and sharded:
        from .core.parallel import ShardedDetector
        detector = ShardedDetector(root=trace.root, workers=workers,
                                   adaptive=adaptive,
                                   prune_interval=prune_interval,
                                   batch_window=batch_window,
                                   obs=obs, supervisor=supervisor,
                                   checkpoint=checkpoint,
                                   resume_from=resume_from,
                                   backend=backend,
                                   predict_window=predict_window)
        if detector.backend.reason is not None:
            print(f"backend: {detector.backend.requested} -> "
                  f"{detector.backend.describe()}", file=sys.stderr)
    elif detector_kind == "rd2":
        from .core.detector import CommutativityRaceDetector
        detector = CommutativityRaceDetector(root=trace.root,
                                             adaptive=adaptive,
                                             prune_interval=prune_interval,
                                             batch_window=batch_window,
                                             obs=obs,
                                             predict_window=predict_window)
    else:
        from .core.direct import DirectDetector
        detector = DirectDetector(root=trace.root)
    for name, kind in bindings:
        if detector_kind == "rd2":
            detector.register_object(name, registry[kind].representation())
        else:
            detector.register_object(name, registry[kind].spec().commutes)
    detector.run(trace)
    publish_detector_stats(obs, detector.stats)
    hb = getattr(detector, "happens_before", None)
    if hb is not None:
        obs.gauge("hb_threads", len(hb.known_threads()))
        obs.gauge("hb_locks", len(hb.known_locks()))
    if hasattr(detector, "interned_point_count"):
        # Sequential rd2 only: the sharded detector's per-object state
        # lives (and dies) in its workers.
        obs.gauge("active_points", detector.active_point_count())
        obs.gauge("interned_points", detector.interned_point_count())
    races = detector.races
    predicted = (list(detector.predicted) if predict_window else None)
    suffix = f" [{workers} workers]" if workers > 1 else ""
    with obs.span("report"):
        print(f"{detector_kind}{suffix}: {tally(races)} "
              f"commutativity race report(s)")
        for group in group_races(races):
            print(f"  {group}")
        if predicted is not None:
            print(f"{detector_kind}{suffix}: {len(predicted)} predicted "
                  f"race(s) in sound reorderings")
            for prediction in predicted:
                print(f"  {prediction}")
    fault_log = getattr(detector, "faults", None)
    faults = fault_log.snapshot() if fault_log else None
    code = EXIT_REPORTS if (races or predicted) else EXIT_CLEAN
    return code, faults, predicted


def _analyze_follow(path: str, bindings, obs=NULL_REGISTRY,
                    adaptive: bool = True, prune_interval: int = 0,
                    batch_window: int = 0,
                    window: int = 1024, idle_timeout: float = 10.0,
                    stats_json: Optional[str] = None,
                    meta_base: Optional[Dict[str, Any]] = None,
                    poll_interval: float = 0.05,
                    predict_window: int = 0,
                    ) -> Tuple[int, int, Optional[List[Any]]]:
    """Stream a trace that may still be growing; returns (code, events).

    Races print the moment phase 1 reports them (the whole point of
    following a live trace), and every maintenance window rewrites the
    ``--stats-json`` snapshot so an operator can watch the memory gauges
    of a run that never ends.  The snapshot is built from a throwaway
    merged registry — publishing cumulative detector counters into ``obs``
    every window would double-count them.
    """
    from .core.serialize import TailReader
    from .core.stream import StreamAnalyzer, follow_analyze
    registry = bundled_objects()
    if not bindings:
        _fail("commutativity analysis needs at least one --object NAME=KIND",
              EXIT_USAGE)

    def on_race(race) -> None:
        print(f"race: {race}", flush=True)

    def snapshot(analyzer: "StreamAnalyzer") -> None:
        if not stats_json:
            return
        merged = Registry(sample_interval=1)
        merged.absorb(obs)
        publish_detector_stats(merged, analyzer.stats)
        meta = dict(meta_base or {})
        meta["events"] = analyzer.events_processed
        meta["windows"] = analyzer.windows_completed
        report = build_report(merged, meta=meta)
        if predict_window:
            report["predicted"] = [prediction.snapshot()
                                   for prediction in analyzer.predicted]
        # Write-then-rename so a reader polling the snapshot never sees a
        # half-written report.
        tmp = f"{stats_json}.tmp"
        with open(tmp, "w", encoding="utf-8") as out:
            write_report(report, out)
        os.replace(tmp, stats_json)

    def build(root) -> "StreamAnalyzer":
        analyzer = StreamAnalyzer(root=root, on_race=on_race,
                                  prune_interval=prune_interval,
                                  window=window, adaptive=adaptive,
                                  batch_window=batch_window,
                                  obs=obs, on_window=snapshot,
                                  predict_window=predict_window)
        for name, kind in bindings:
            analyzer.register_object(name, registry[kind].representation())
        return analyzer

    try:
        # The reader carries the obs handle so frame-cap violations are
        # counted (stream_frame_errors) before the error surfaces.
        reader = TailReader(path, obs=obs)
        analyzer, status = follow_analyze(path, build,
                                          poll_interval=poll_interval,
                                          idle_timeout=idle_timeout,
                                          reader=reader)
    except (ReproError, ValueError) as exc:
        _fail(f"invalid trace file {path!r}: {exc}", EXIT_DATA)
    if analyzer is None:
        _fail(f"cannot read trace {path!r}: no complete header after "
              f"{idle_timeout:g}s", EXIT_DATA)
    if not status.complete:
        declared = ("?" if status.declared_events is None
                    else status.declared_events)
        print(f"repro-analyze: follow: no new events for {idle_timeout:g}s; "
              f"trace incomplete ({status.events_read} of {declared} events, "
              f"resume offset {status.resume_offset})", file=sys.stderr)
    if meta_base is not None:
        # Keep the final report on the follow-mode snapshot schema: the
        # periodic snapshots carry a "windows" count, and so must the
        # closing rewrite (an idle timeout inside a maintenance window
        # still flushed that window via finish()).
        meta_base["windows"] = analyzer.windows_completed
    publish_detector_stats(obs, analyzer.stats)
    hb = analyzer.detector.happens_before
    obs.gauge("hb_threads", len(hb.known_threads()))
    obs.gauge("hb_locks", len(hb.known_locks()))
    races = analyzer.races
    predicted = (list(analyzer.predicted) if predict_window else None)
    with obs.span("report"):
        print(f"rd2 [follow]: {tally(races)} commutativity race report(s)")
        for group in group_races(races):
            print(f"  {group}")
        if predicted is not None:
            print(f"rd2 [follow]: {len(predicted)} predicted race(s) in "
                  f"sound reorderings")
            for prediction in predicted:
                print(f"  {prediction}")
    code = EXIT_REPORTS if (races or predicted) else EXIT_CLEAN
    return code, status.events_read, predicted


def _analyze_memory(trace, detector_kind: str, obs=NULL_REGISTRY,
                    ) -> Tuple[int, Optional[Dict[str, Any]]]:
    if detector_kind == "fasttrack":
        from .baselines.fasttrack import FastTrack
        detector = FastTrack(root=trace.root, obs=obs)
        detector.run(trace)
        reports = detector.races
    else:
        from .baselines.eraser import Eraser
        detector = Eraser(root=trace.root, obs=obs)
        detector.run(trace)
        reports = detector.warnings
    with obs.span("report"):
        print(f"{detector_kind}: {tally(reports)} report(s)")
        for group in group_races(reports):
            print(f"  {group}")
    return (EXIT_REPORTS if reports else EXIT_CLEAN), None


def _analyze_atomicity(trace, bindings, obs=NULL_REGISTRY,
                       ) -> Tuple[int, Optional[Dict[str, Any]]]:
    from .atomicity import AtomicityChecker, ConflictMode
    registry = bundled_objects()
    checker = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    for name, kind in bindings:
        checker.register_object(name, registry[kind].representation())
    with obs.span("check"):
        report = checker.analyze(trace)
    obs.add("transactions", len(report.transactions))
    obs.add("conflict_edges", report.conflict_edges)
    obs.add("violations", len(report.violations))
    with obs.span("report"):
        print(f"atomicity: {len(report.transactions)} transactions, "
              f"{report.conflict_edges} conflict edges, "
              f"{len(report.violations)} violation(s)")
        for violation in report.violations:
            print(f"  {violation}")
    return (EXIT_REPORTS if report.violations else EXIT_CLEAN), None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Analyze a saved trace (JSONL) for commutativity "
                    "races, read/write races, or atomicity violations.",
        epilog=_EXIT_CODE_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", nargs="?",
                        help="path to a trace written by dump_trace()")
    parser.add_argument("--object", action="append", default=[],
                        metavar="NAME=KIND", dest="objects",
                        help="bind a shared object to a bundled spec kind")
    parser.add_argument("--detector", default="rd2",
                        choices=("rd2", "direct", "fasttrack", "eraser"),
                        help="which analysis to run (default rd2)")
    parser.add_argument("--workers", default="1", metavar="N",
                        help="fan the rd2 per-object race checks out to N "
                             "worker processes (two-phase sharded pipeline; "
                             "default 1 = sequential)")
    parser.add_argument("--backend", default="pickle",
                        choices=["auto", "pickle", "shm", "thread",
                                 "subinterp"],
                        help="shard fan-out transport for --workers > 1: "
                             "pickle pool (default), shared-memory record "
                             "rings (shm), in-process threads, "
                             "subinterpreters, or auto; a request the "
                             "runtime cannot honor falls back with a "
                             "reason logged to stderr")
    parser.add_argument("--shard-timeout", default=None, metavar="SECONDS",
                        help="per-shard supervision timeout for --workers "
                             "runs (default 120)")
    parser.add_argument("--shard-retries", default=None, metavar="N",
                        help="pool retries per failed shard before falling "
                             "back to in-process replay (default 2)")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="periodically checkpoint phase-A stamping "
                             "state to PATH (rd2 only)")
    parser.add_argument("--checkpoint-interval", default="10000", metavar="N",
                        help="events between checkpoints (default 10000)")
    parser.add_argument("--resume-from", metavar="PATH", dest="resume_from",
                        help="resume phase-A stamping from a checkpoint "
                             "written by a previous run on the same trace "
                             "(a rejected checkpoint degrades to a full "
                             "restamp)")
    parser.add_argument("--adaptive", action="store_true",
                        help="epoch-adaptive point clocks for rd2 (now the "
                             "default; kept for compatibility): keep an "
                             "O(1) epoch per access point until genuine "
                             "cross-thread contention inflates it to a "
                             "full vector clock (report-preserving)")
    parser.add_argument("--no-epochs", action="store_true", dest="no_epochs",
                        help="rd2 debug switch: disable epoch-adaptive "
                             "point clocks and store a full vector clock "
                             "per access point from the first touch")
    parser.add_argument("--batch-window", default=None, metavar="N",
                        dest="batch_window",
                        help="rd2: buffer N stamped actions into columnar "
                             "struct-of-arrays and run Algorithm 1 one "
                             "window at a time instead of per event "
                             "(report-preserving; default 0 = per-event)")
    parser.add_argument("--prune-interval", default=None, metavar="N",
                        dest="prune_interval",
                        help="rd2: every N actions, reclaim active points "
                             "(and their interned entries) ordered before "
                             "every live thread — bounds memory by the "
                             "concurrent footprint (verdict-preserving; "
                             "works sequentially and with --workers)")
    parser.add_argument("--predict", nargs="?", const="256", default=None,
                        metavar="WINDOW",
                        help="rd2: additionally report *predicted* "
                             "commutativity races — conflicting pairs at "
                             "most WINDOW same-object actions apart "
                             "(default 256) that some sound reordering of "
                             "the trace makes concurrent; each prediction "
                             "ships with a concrete witness reordering, "
                             "validated by replay through the standard "
                             "detector (strictly more races, never "
                             "different ones)")
    parser.add_argument("--follow", action="store_true",
                        help="stream the trace as it is being written: "
                             "analyze incrementally, print races as they "
                             "are found, tolerate a partially written "
                             "tail, stop when the declared event count is "
                             "reached or no data arrives for "
                             "--follow-timeout seconds (rd2, sequential)")
    parser.add_argument("--window", default=None, metavar="N",
                        help="events per --follow maintenance cycle: dead "
                             "threads retire, memory gauges sample and "
                             "--stats-json rewrites (default 1024)")
    parser.add_argument("--follow-timeout", default=None, metavar="SECONDS",
                        dest="follow_timeout",
                        help="give up on --follow after this long without "
                             "a new complete event — a writer killed "
                             "mid-record cannot wedge the reader "
                             "(default 10)")
    parser.add_argument("--atomicity", action="store_true",
                        help="run the atomicity checker instead")
    parser.add_argument("--spec-report", metavar="KIND",
                        help="print the Fig. 6/7-style report of a bundled "
                             "spec and exit")
    parser.add_argument("--verify-specs", nargs="?", const="all",
                        metavar="KIND", dest="verify_specs",
                        help="exhaustively verify a bundled spec (or all "
                             "of them) against its executable semantics "
                             "and exit; see repro-verify-specs for the "
                             "full interface")
    parser.add_argument("--stats", action="store_true",
                        help="print the observability table (per-phase "
                             "timings, per-object and per-method-pair "
                             "attribution) to stderr")
    parser.add_argument("--stats-json", metavar="PATH",
                        help="write the structured observability report "
                             "as JSON")
    parser.add_argument("--spans", metavar="PATH",
                        help="append coarse pipeline spans to PATH as JSONL "
                             "(flamegraph-style offline analysis)")
    args = parser.parse_args(argv)

    if args.spec_report:
        registry = bundled_objects()
        if args.spec_report not in registry:
            _fail(f"unknown kind {args.spec_report!r}; "
                  f"available: {sorted(registry)}", EXIT_USAGE)
        from .logic.pretty import spec_report
        print(spec_report(registry[args.spec_report].spec()))
        return EXIT_CLEAN

    if args.verify_specs:
        from .verify.cli import main as verify_main
        kinds = [] if args.verify_specs == "all" else [args.verify_specs]
        return verify_main(kinds)

    if not args.trace:
        _fail("a trace file is required (or use --spec-report)", EXIT_USAGE)

    workers = _parse_workers(args.workers)
    supervisor = _parse_supervisor(args)
    checkpoint = _parse_checkpoint(args)
    rd2_only = (workers > 1 or supervisor is not None
                or checkpoint is not None or args.resume_from)
    if rd2_only and (args.detector != "rd2" or args.atomicity):
        _fail("--workers, --shard-*, --checkpoint and --resume-from apply "
              "only to the rd2 detector", EXIT_USAGE)
    if args.adaptive and (args.detector != "rd2" or args.atomicity):
        _fail("--adaptive applies only to the rd2 detector", EXIT_USAGE)
    if args.no_epochs and (args.detector != "rd2" or args.atomicity):
        _fail("--no-epochs applies only to the rd2 detector", EXIT_USAGE)
    if args.no_epochs and args.adaptive:
        _fail("--no-epochs contradicts --adaptive", EXIT_USAGE)
    # Epoch adaptivity is report-preserving and the default; --adaptive
    # survives as an explicit opt-in no-op, --no-epochs is the debug out.
    adaptive = not args.no_epochs
    batch_window = _parse_batch_window(args)
    if batch_window and (args.detector != "rd2" or args.atomicity):
        _fail("--batch-window applies only to the rd2 detector", EXIT_USAGE)
    prune_interval = _parse_prune_interval(args)
    if prune_interval and (args.detector != "rd2" or args.atomicity):
        _fail("--prune-interval applies only to the rd2 detector", EXIT_USAGE)
    if args.backend != "pickle":
        if args.detector != "rd2" or args.atomicity:
            _fail("--backend applies only to the rd2 detector", EXIT_USAGE)
        if workers <= 1:
            _fail("--backend selects the shard fan-out transport; it "
                  "requires --workers > 1", EXIT_USAGE)
    if prune_interval and (checkpoint is not None or args.resume_from):
        # Phase-A prune-boundary snapshots are not part of the checkpoint
        # format; a resumed run would skip worker-side pruning and diverge
        # from the original's stats.
        _fail("--prune-interval cannot be combined with --checkpoint or "
              "--resume-from", EXIT_USAGE)
    predict_window = _parse_predict(args)
    if predict_window and (args.detector != "rd2" or args.atomicity):
        _fail("--predict applies only to the rd2 detector", EXIT_USAGE)
    if predict_window and (checkpoint is not None or args.resume_from):
        # Prediction replays the full stamped event log, which is not
        # part of the checkpoint format.
        _fail("--predict cannot be combined with --checkpoint or "
              "--resume-from", EXIT_USAGE)
    window = _parse_follow_window(args)
    follow_timeout = _parse_follow_timeout(args)
    if args.follow:
        if args.detector != "rd2" or args.atomicity:
            _fail("--follow applies only to the rd2 detector", EXIT_USAGE)
        if rd2_only:
            _fail("--follow is a sequential streaming mode; it cannot be "
                  "combined with --workers, --shard-*, --checkpoint or "
                  "--resume-from", EXIT_USAGE)
    elif window is not None or follow_timeout is not None:
        _fail("--window and --follow-timeout require --follow", EXIT_USAGE)

    want_obs = args.stats or args.stats_json or args.spans
    stream = SpanStream(args.spans) if args.spans else None
    # Offline analysis can afford exact attribution (sample every event);
    # the sampled default only matters for live runtime monitoring.
    obs = (Registry(sample_interval=1, stream=stream) if want_obs
           else NULL_REGISTRY)

    mode = "atomicity" if args.atomicity else args.detector
    meta_base = {"detector": mode, "workers": workers,
                 "trace": os.path.basename(args.trace)}
    if predict_window:
        # Conditional, like "faults": witnessed-mode reports stay on the
        # frozen schema byte for byte when --predict is off.
        meta_base["predict_window"] = predict_window
    faults: Optional[Dict[str, Any]] = None
    predicted: Optional[List[Any]] = None
    try:
        bindings = _parse_bindings(args.objects)
        if args.follow:
            code, events_total, predicted = _analyze_follow(
                args.trace, bindings, obs=obs, adaptive=adaptive,
                prune_interval=prune_interval, batch_window=batch_window,
                window=window if window is not None else 1024,
                idle_timeout=(follow_timeout if follow_timeout is not None
                              else 10.0),
                stats_json=args.stats_json, meta_base=meta_base,
                predict_window=predict_window)
        else:
            with obs.span("load"):
                trace = _load_trace_file(args.trace)
            events_total = len(trace)
            print(f"loaded {len(trace)} events "
                  f"({len(trace.actions())} actions, "
                  f"{len(trace.threads())} threads)")

            if args.atomicity:
                code, faults = _analyze_atomicity(trace, bindings, obs=obs)
            elif args.detector in ("rd2", "direct"):
                code, faults, predicted = _analyze_commutativity(
                    trace, bindings, args.detector, workers=workers, obs=obs,
                    supervisor=supervisor, checkpoint=checkpoint,
                    resume_from=args.resume_from, adaptive=adaptive,
                    prune_interval=prune_interval,
                    batch_window=batch_window, backend=args.backend,
                    predict_window=predict_window)
            else:
                code, faults = _analyze_memory(trace, args.detector, obs=obs)
    except KeyboardInterrupt:
        # The supervisor already tore its pool down on the way out (no
        # orphan workers); the span stream is closed by the finally, so
        # partial --spans output stays valid JSONL.
        print("repro-analyze: interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    finally:
        if stream is not None:
            stream.close()

    if faults and faults.get("counts"):
        total = sum(faults["counts"].values())
        summary = ", ".join(f"{kind}×{count}" for kind, count
                            in sorted(faults["counts"].items()))
        print(f"repro-analyze: tolerated {total} fault(s): {summary}",
              file=sys.stderr)

    if want_obs:
        report = build_report(obs, meta=dict(meta_base, events=events_total),
                              faults=faults)
        if predicted is not None:
            # Frozen-schema extension, conditional like "faults": present
            # only when --predict ran.
            report["predicted"] = [prediction.snapshot()
                                   for prediction in predicted]
        if args.stats_json:
            # Write-then-rename, like the periodic --follow snapshots: a
            # reader polling the report must never observe a half-written
            # file, least of all from the final rewrite on exit.
            tmp = f"{args.stats_json}.tmp"
            with open(tmp, "w", encoding="utf-8") as out:
                write_report(report, out)
            os.replace(tmp, args.stats_json)
        if args.stats:
            print(render_table(report), file=sys.stderr)
    return code


def _parse_supervisor(args):
    """Build a SupervisorConfig iff a supervision flag was given."""
    if args.shard_timeout is None and args.shard_retries is None:
        return None
    from .core.supervise import SupervisorConfig
    kwargs: Dict[str, Any] = {}
    if args.shard_timeout is not None:
        try:
            timeout = float(args.shard_timeout)
        except ValueError:
            _fail(f"--shard-timeout expects a number of seconds, got "
                  f"{args.shard_timeout!r}", EXIT_USAGE)
        if timeout <= 0:
            _fail(f"--shard-timeout must be > 0, got {timeout:g}", EXIT_USAGE)
        kwargs["shard_timeout"] = timeout
    if args.shard_retries is not None:
        try:
            retries = int(args.shard_retries)
        except ValueError:
            _fail(f"--shard-retries expects a non-negative integer, got "
                  f"{args.shard_retries!r}", EXIT_USAGE)
        if retries < 0:
            _fail(f"--shard-retries must be >= 0, got {retries}", EXIT_USAGE)
        kwargs["max_retries"] = retries
    return SupervisorConfig(**kwargs)


def _parse_checkpoint(args):
    """Build a CheckpointConfig iff --checkpoint was given.

    Wires in the fault harness's kill hook (``REPRO_CHECKPOINT_KILL_AFTER``)
    so resume tests can SIGKILL a real CLI run at an exact write.
    """
    try:
        interval = int(args.checkpoint_interval)
    except ValueError:
        interval = 0
    if interval < 1:
        _fail(f"--checkpoint-interval must be a positive integer, got "
              f"{args.checkpoint_interval!r}", EXIT_USAGE)
    if not args.checkpoint:
        return None
    from .core.checkpoint import CheckpointConfig
    from .testing.faults import checkpoint_kill_hook
    return CheckpointConfig(path=args.checkpoint, interval=interval,
                            after_write=checkpoint_kill_hook())


if __name__ == "__main__":
    raise SystemExit(main())
