"""The ``repro-analyze`` command: offline analysis of saved traces.

Record a trace in a monitored run (``Monitor(record_trace=True)``), park it
with :func:`repro.core.serialize.dump_trace`, then analyze it later::

    repro-analyze trace.jsonl --object o=dictionary --object s=set
    repro-analyze trace.jsonl --object o=dictionary --workers 4
    repro-analyze trace.jsonl --object o=dictionary --detector direct
    repro-analyze trace.jsonl --detector fasttrack
    repro-analyze trace.jsonl --object o=dictionary --atomicity
    repro-analyze trace.jsonl --spec-report dictionary

``--object NAME=KIND`` binds a shared object in the trace to a bundled
specification kind; the commutativity detectors need at least one binding,
the read/write detectors none.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from .core.races import group_races, tally
from .core.serialize import load_trace
from .specs import bundled_objects

__all__ = ["main"]


def _parse_bindings(pairs: Sequence[str]) -> List[Tuple[str, str]]:
    registry = bundled_objects()
    bindings = []
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"--object expects NAME=KIND, got {pair!r}")
        name, kind = pair.split("=", 1)
        if kind not in registry:
            raise SystemExit(
                f"unknown object kind {kind!r}; available: "
                f"{sorted(registry)}")
        bindings.append((name, kind))
    return bindings


def _analyze_commutativity(trace, bindings, detector_kind: str,
                           workers: int = 1) -> int:
    registry = bundled_objects()
    if not bindings:
        raise SystemExit(
            "commutativity analysis needs at least one --object NAME=KIND")
    if detector_kind == "rd2":
        if workers > 1:
            from .core.parallel import ShardedDetector
            detector = ShardedDetector(root=trace.root, workers=workers)
        else:
            from .core.detector import CommutativityRaceDetector
            detector = CommutativityRaceDetector(root=trace.root)
        for name, kind in bindings:
            detector.register_object(name,
                                     registry[kind].representation())
    else:
        if workers > 1:
            raise SystemExit(
                f"--workers applies only to the rd2 detector "
                f"(got --detector {detector_kind})")
        from .core.direct import DirectDetector
        detector = DirectDetector(root=trace.root)
        for name, kind in bindings:
            detector.register_object(name, registry[kind].spec().commutes)
    detector.run(trace)
    races = detector.races
    suffix = f" [{workers} workers]" if workers > 1 else ""
    print(f"{detector_kind}{suffix}: {tally(races)} "
          f"commutativity race report(s)")
    for group in group_races(races):
        print(f"  {group}")
    return 1 if races else 0


def _analyze_memory(trace, detector_kind: str) -> int:
    if detector_kind == "fasttrack":
        from .baselines.fasttrack import FastTrack
        detector = FastTrack(root=trace.root)
        detector.run(trace)
        reports = detector.races
    else:
        from .baselines.eraser import Eraser
        detector = Eraser(root=trace.root)
        detector.run(trace)
        reports = detector.warnings
    print(f"{detector_kind}: {tally(reports)} report(s)")
    for group in group_races(reports):
        print(f"  {group}")
    return 1 if reports else 0


def _analyze_atomicity(trace, bindings) -> int:
    from .atomicity import AtomicityChecker, ConflictMode
    registry = bundled_objects()
    checker = AtomicityChecker(ConflictMode.COMMUTATIVITY)
    for name, kind in bindings:
        checker.register_object(name, registry[kind].representation())
    report = checker.analyze(trace)
    print(f"atomicity: {len(report.transactions)} transactions, "
          f"{report.conflict_edges} conflict edges, "
          f"{len(report.violations)} violation(s)")
    for violation in report.violations:
        print(f"  {violation}")
    return 1 if report.violations else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Analyze a saved trace (JSONL) for commutativity "
                    "races, read/write races, or atomicity violations.")
    parser.add_argument("trace", nargs="?",
                        help="path to a trace written by dump_trace()")
    parser.add_argument("--object", action="append", default=[],
                        metavar="NAME=KIND", dest="objects",
                        help="bind a shared object to a bundled spec kind")
    parser.add_argument("--detector", default="rd2",
                        choices=("rd2", "direct", "fasttrack", "eraser"),
                        help="which analysis to run (default rd2)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fan the rd2 per-object race checks out to N "
                             "worker processes (two-phase sharded pipeline; "
                             "default 1 = sequential)")
    parser.add_argument("--atomicity", action="store_true",
                        help="run the atomicity checker instead")
    parser.add_argument("--spec-report", metavar="KIND",
                        help="print the Fig. 6/7-style report of a bundled "
                             "spec and exit")
    args = parser.parse_args(argv)

    if args.spec_report:
        registry = bundled_objects()
        if args.spec_report not in registry:
            raise SystemExit(f"unknown kind {args.spec_report!r}; "
                             f"available: {sorted(registry)}")
        from .logic.pretty import spec_report
        print(spec_report(registry[args.spec_report].spec()))
        return 0

    if not args.trace:
        parser.error("a trace file is required (or use --spec-report)")
    with open(args.trace, "r", encoding="utf-8") as stream:
        trace = load_trace(stream)
    print(f"loaded {len(trace)} events "
          f"({len(trace.actions())} actions, "
          f"{len(trace.threads())} threads)")

    bindings = _parse_bindings(args.objects)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.workers > 1 and (args.detector != "rd2" or args.atomicity):
        parser.error("--workers applies only to the rd2 detector")
    if args.atomicity:
        return _analyze_atomicity(trace, bindings)
    if args.detector in ("rd2", "direct"):
        return _analyze_commutativity(trace, bindings, args.detector,
                                      workers=args.workers)
    return _analyze_memory(trace, args.detector)


if __name__ == "__main__":
    raise SystemExit(main())
