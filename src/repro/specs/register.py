"""A read/write register: classic data races as a commutativity instance.

With the register specification, commutativity race detection *specializes
to* traditional read-write race detection — the generalization claim of the
paper's introduction, witnessed executably.  The test-suite runs the
FastTrack baseline and the commutativity detector (with this spec) over the
same traces and checks they agree on racy locations.

Methods:

* ``write(v)/p`` — store ``v``, returning the previous value;
* ``read()/v`` — load the current value.

A write commutes with a same-register write only if both are no-ops
(``v = p`` for each), and with a read only if it is a no-op.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from ..core.access_points import SchemaRepresentation
from ..core.events import Action
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

__all__ = ["register_spec", "register_representation", "RegisterSemantics"]


def register_spec() -> CommutativitySpec:
    spec = CommutativitySpec("register")
    spec.method("write", params=("v",), returns=("p",))
    spec.method("read", returns=("v",))
    spec.pair("write", "write", "(v1 == p1) & (v2 == p2)")
    spec.pair("write", "read", "v1 == p1")
    spec.pair("read", "read", "true")
    return spec


_R, _W = "r", "w"


def _register_touches(action: Action):
    if action.method == "write":
        if action.args[0] == action.returns[0]:
            yield (_R, None)   # silent write: observationally a read
        else:
            yield (_W, None)
    elif action.method == "read":
        yield (_R, None)
    else:
        raise ValueError(f"register has no method {action.method!r}")


def register_representation() -> SchemaRepresentation:
    return SchemaRepresentation(
        kind="register",
        value_schemas=(),
        plain_schemas=(_R, _W),
        conflict_pairs=((_W, _W), (_W, _R)),
        touches=_register_touches,
    )


class RegisterSemantics(ObjectSemantics):
    """Executable register semantics; the state is the stored value."""

    kind = "register"

    VALUES: Tuple[Any, ...] = (0, 1, 2)

    def initial_state(self) -> Any:
        return 0

    def apply(self, state: Any, method: str,
              args: Tuple[Any, ...]) -> Tuple[Any, Tuple[Any, ...]]:
        if method == "write":
            return args[0], (state,)
        if method == "read":
            return state, (state,)
        raise ValueError(f"register has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        if rng.random() < 0.5:
            return "write", (rng.choice(self.VALUES),)
        return "read", ()
