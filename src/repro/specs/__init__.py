"""Bundled commutativity specifications, hand-written access point
representations and executable semantics for common shared objects.

:func:`bundled_objects` returns the registry the property-test suite sweeps:
every entry carries a specification, a hand-written representation claimed
equivalent to it, and an executable semantics against which the spec's
soundness is (randomly) validated.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.access_points import SchemaRepresentation
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

from .accumulator import (AccumulatorSemantics, accumulator_representation,
                          accumulator_spec)
from .counter import CounterSemantics, counter_representation, counter_spec
from .dictionary import (DictionarySemantics, dictionary_representation,
                         dictionary_spec, extended_dictionary_spec)
from .list_spec import (MultisetLogSemantics, SequenceLogSemantics,
                        multiset_log_representation, multiset_log_spec,
                        sequence_log_spec)
from .queue_spec import QueueSemantics, queue_representation, queue_spec
from .register import (RegisterSemantics, register_representation,
                       register_spec)
from .set_spec import SetSemantics, set_representation, set_spec

__all__ = [
    "BundledObject", "bundled_objects",
    "AccumulatorSemantics", "accumulator_representation", "accumulator_spec",
    "CounterSemantics", "counter_representation", "counter_spec",
    "DictionarySemantics", "dictionary_representation", "dictionary_spec",
    "extended_dictionary_spec",
    "MultisetLogSemantics", "multiset_log_representation",
    "multiset_log_spec", "sequence_log_spec", "SequenceLogSemantics",
    "QueueSemantics", "queue_representation", "queue_spec",
    "RegisterSemantics", "register_representation", "register_spec",
    "SetSemantics", "set_representation", "set_spec",
]


@dataclass(frozen=True)
class BundledObject:
    """One shared-object kind with all its artifacts."""

    kind: str
    spec: Callable[[], CommutativitySpec]
    representation: Callable[[], SchemaRepresentation]
    semantics: Optional[Callable[[], ObjectSemantics]]


def bundled_objects() -> Dict[str, BundledObject]:
    """All bundled object kinds, keyed by name."""
    bundle = [
        BundledObject("dictionary", dictionary_spec,
                      dictionary_representation, DictionarySemantics),
        BundledObject("set", set_spec, set_representation, SetSemantics),
        BundledObject("counter", counter_spec, counter_representation,
                      CounterSemantics),
        BundledObject("register", register_spec, register_representation,
                      RegisterSemantics),
        BundledObject("msetlog", multiset_log_spec,
                      multiset_log_representation, MultisetLogSemantics),
        BundledObject("accumulator", accumulator_spec,
                      accumulator_representation, AccumulatorSemantics),
        BundledObject("queue", queue_spec, queue_representation,
                      QueueSemantics),
    ]
    return {obj.kind: obj for obj in bundle}
