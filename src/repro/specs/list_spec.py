"""An append-only log (list) object.

Workloads like event logging append concurrently and occasionally read.
Appends do *not* commute with each other under a sequence semantics (the
resulting orders differ), but they do commute under the common *multiset*
(unordered log) semantics — both flavours are provided, and the contrast is
used by tests to show how the choice of abstract state changes the races
reported.

Methods:

* ``append(x)/i`` — add an element; returns its index (sequence flavour)
  or the new length (multiset flavour — still a size observation!);
* ``snapshot()/n`` — observe the log length;
* ``get(i)/x`` — read the element at an index.

For the multiset flavour, ``append`` returning the new length still
observes the size, so same-object appends conflict; the *blind* variant
``log(x)/()`` returns nothing and genuinely commutes with other logs.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from ..core.access_points import SchemaRepresentation
from ..core.events import NIL, Action
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

__all__ = [
    "sequence_log_spec",
    "SequenceLogSemantics",
    "multiset_log_spec",
    "multiset_log_representation",
    "MultisetLogSemantics",
]


def sequence_log_spec() -> CommutativitySpec:
    """Appends to an order-sensitive log never commute with each other.

    ``append``/``get`` commute exactly when the read index differs from
    the appended slot.  (An earlier revision declared them unconditionally
    commuting — "appended slots are fresh" — which the exhaustive bounded
    checker in :mod:`repro.verify` refutes: ``append(x)/i`` followed by
    ``get(i)/x`` is realizable on a log of length ``i``, while the reverse
    order reads ``nil`` there, so the two orders are distinguishable.)
    """
    spec = CommutativitySpec("seqlog")
    spec.method("append", params=("x",), returns=("i",))
    spec.method("snapshot", returns=("n",))
    spec.method("get", params=("i",), returns=("x",))
    spec.pair("append", "append", "false")
    spec.pair("append", "snapshot", "false")
    spec.pair("append", "get", "i1 != i2")   # conflicts only on the new slot
    spec.default_true()
    return spec


def multiset_log_spec() -> CommutativitySpec:
    """Blind logs commute; length observations conflict with logs."""
    spec = CommutativitySpec("msetlog")
    spec.method("log", params=("x",))
    spec.method("snapshot", returns=("n",))
    spec.method("count", params=("x",), returns=("c",))
    spec.pair("log", "log", "true")
    spec.pair("log", "snapshot", "false")
    spec.pair("log", "count", "x1 != x2")
    spec.default_true()
    return spec


class SequenceLogSemantics(ObjectSemantics):
    """Executable order-sensitive log; states are tuples in append order.

    ``get`` of an out-of-range index returns ``nil`` (a total method, like
    the dictionary's ``get`` of an absent key), which is what makes the
    ``append``/``get`` same-slot conflict realizable: before the append the
    slot reads ``nil``, after it reads the appended element.
    """

    kind = "seqlog"

    ELEMENTS: Tuple[Any, ...] = ("x", "y")

    def initial_state(self) -> Tuple[Any, ...]:
        return ()

    def apply(self, state: Tuple[Any, ...], method: str,
              args: Tuple[Any, ...]) -> Tuple[Tuple[Any, ...],
                                              Tuple[Any, ...]]:
        if method == "append":
            return state + (args[0],), (len(state),)
        if method == "snapshot":
            return state, (len(state),)
        if method == "get":
            index = args[0]
            if 0 <= index < len(state):
                return state, (state[index],)
            return state, (NIL,)
        raise ValueError(f"seqlog has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        roll = rng.random()
        if roll < 0.5:
            return "append", (rng.choice(self.ELEMENTS),)
        if roll < 0.8:
            return "get", (rng.randrange(0, 4),)
        return "snapshot", ()


_LOG, _SNAP, _CW, _CR = "log", "snap", "cw", "cr"


def _multiset_touches(action: Action):
    if action.method == "log":
        yield (_LOG, None)
        yield (_CW, action.args[0])
    elif action.method == "snapshot":
        yield (_SNAP, None)
    elif action.method == "count":
        yield (_CR, action.args[0])
    else:
        raise ValueError(f"msetlog has no method {action.method!r}")


def multiset_log_representation() -> SchemaRepresentation:
    return SchemaRepresentation(
        kind="msetlog",
        value_schemas=(_CW, _CR),
        plain_schemas=(_LOG, _SNAP),
        conflict_pairs=((_LOG, _SNAP), (_CW, _CR)),
        touches=_multiset_touches,
    )


class MultisetLogSemantics(ObjectSemantics):
    """Executable multiset-log semantics; states are sorted tuples."""

    kind = "msetlog"

    ELEMENTS: Tuple[Any, ...] = ("x", "y", "z")

    def initial_state(self) -> Tuple[Any, ...]:
        return ()

    def apply(self, state: Tuple[Any, ...], method: str,
              args: Tuple[Any, ...]) -> Tuple[Tuple[Any, ...], Tuple[Any, ...]]:
        if method == "log":
            return tuple(sorted(state + (args[0],))), ()
        if method == "snapshot":
            return state, (len(state),)
        if method == "count":
            return state, (state.count(args[0]),)
        raise ValueError(f"msetlog has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        roll = rng.random()
        if roll < 0.5:
            return "log", (rng.choice(self.ELEMENTS),)
        if roll < 0.75:
            return "count", (rng.choice(self.ELEMENTS),)
        return "snapshot", ()
