"""A FIFO queue — the classic object of the commutativity literature.

Weihl's commutativity-based concurrency control and the paper's Section 8
lineage (Schwarz & Spector, Korth) all use queues as the motivating
abstract type.  FIFO order makes the commutativity conditions delicate,
and *shadow returns* (the paper's Section 4.1 remark: "exposing hidden
state as shadow return values may allow obtaining more precise
specification") do real work here:

* ``enq(x)/()`` — append; never commutes with another enq (order shows up
  in later deqs) nor with ``size``;
* ``deq()/y`` — remove and return the head (``nil`` on empty);
* ``peek()/p`` — observe the head;
* ``size()/n``.

The subtle rows, each *provably sound* (validated against the executable
semantics by the randomized checker):

* ``enq(x)`` vs ``deq()/y`` commute iff ``y ≠ nil ∧ x ≠ y``: a successful
  deq of something other than the enqueued element means the queue was
  non-empty in both orders and the head is unaffected by the append.  The
  ``x ≠ y`` guard matters — ``enq(x); deq()/x`` on an empty queue is
  realizable while the reverse order is not.
* ``enq(x)`` vs ``peek()/p`` commute iff ``p ≠ nil ∧ p ≠ x`` (same shape).
* two no-op deqs (both ``nil``) commute; any effective deq commutes with
  nothing that observes order or contents.

Everything is ECL (the guards are one-sided LB atoms plus cross-side
disequalities), so the spec translates to a bounded access point
representation; the bundled representation *is* the translation — a nice
demonstration that hand-writing Fig. 7-style tables is optional.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from ..core.access_points import SchemaRepresentation
from ..core.events import NIL
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

__all__ = ["queue_spec", "queue_representation", "QueueSemantics"]


def queue_spec() -> CommutativitySpec:
    spec = CommutativitySpec("queue")
    spec.method("enq", params=("x",))
    spec.method("deq", returns=("y",))
    spec.method("peek", returns=("p",))
    spec.method("size", returns=("n",))

    spec.pair("enq", "enq", "false")            # order is observable
    spec.pair("enq", "deq", "y2 != nil & x1 != y2")
    spec.pair("enq", "peek", "p2 != nil & p2 != x1")
    spec.pair("enq", "size", "false")           # size always changes
    spec.pair("deq", "deq", "y1 == nil & y2 == nil")
    spec.pair("deq", "peek", "y1 == nil")
    spec.pair("deq", "size", "y1 == nil")
    spec.pair("peek", "peek", "true")
    spec.pair("peek", "size", "true")
    spec.pair("size", "size", "true")
    return spec


def queue_representation() -> SchemaRepresentation:
    """The queue's access point representation, by translation.

    No hand-written Fig. 7 analogue is provided on purpose: the pipeline's
    promise is that the translation *is* the representation (Theorem 6.5),
    and the queue exercises it with a spec whose conflicts mix plain
    points (enq/enq, enq/size) and value conflicts (the ``x ≠ y`` guards).
    """
    from ..logic.translate import translate
    return translate(queue_spec())


class QueueSemantics(ObjectSemantics):
    """Executable FIFO semantics; the state is a tuple (head first)."""

    kind = "queue"

    ELEMENTS: Tuple[Any, ...] = ("a", "b", "c")

    def initial_state(self) -> Tuple[Any, ...]:
        return ()

    def apply(self, state: Tuple[Any, ...], method: str,
              args: Tuple[Any, ...]) -> Tuple[Tuple[Any, ...],
                                              Tuple[Any, ...]]:
        if method == "enq":
            return state + (args[0],), ()
        if method == "deq":
            if not state:
                return state, (NIL,)
            return state[1:], (state[0],)
        if method == "peek":
            return state, (state[0] if state else NIL,)
        if method == "size":
            return state, (len(state),)
        raise ValueError(f"queue has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        roll = rng.random()
        if roll < 0.45:
            return "enq", (rng.choice(self.ELEMENTS),)
        if roll < 0.75:
            return "deq", ()
        if roll < 0.9:
            return "peek", ()
        return "size", ()
