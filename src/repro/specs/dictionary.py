"""The paper's dictionary object: specification (Fig. 6), hand-written
access point representation (Fig. 7) and abstract semantics (Fig. 5).

A dictionary maps every key to a value or ``nil``; methods:

* ``put(k, v)/p`` — set ``k`` to ``v``, returning the previous value ``p``;
* ``get(k)/v`` — read the value of ``k``;
* ``size()/r`` — the number of keys with a non-nil value;

plus three extensions exercised by the applications and kept in a separate
*extended* spec so the paper-exact artifacts stay pristine:

* ``remove(k)/p`` — shorthand for ``put(k, nil)/p``;
* ``contains(k)/c`` — whether ``k`` maps to a non-nil value;
* ``putIfAbsent(k, v)/p`` — Java's CHM idiom: store only if currently nil.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from ..core.access_points import SchemaRepresentation
from ..core.events import NIL, Action
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

__all__ = [
    "dictionary_spec",
    "extended_dictionary_spec",
    "dictionary_representation",
    "DictionarySemantics",
]

#: the formulas of Fig. 6, verbatim
PUT_PUT = "k1 != k2 | (v1 == p1 & v2 == p2)"
PUT_GET = "k1 != k2 | v1 == p1"
PUT_SIZE = "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)"


def dictionary_spec() -> CommutativitySpec:
    """The Fig. 6 commutativity specification of a dictionary."""
    spec = CommutativitySpec("dictionary")
    spec.method("put", params=("k", "v"), returns=("p",))
    spec.method("get", params=("k",), returns=("v",))
    spec.method("size", returns=("r",))
    spec.pair("put", "put", PUT_PUT)
    spec.pair("put", "get", PUT_GET)
    spec.pair("put", "size", PUT_SIZE)
    # ϕ_get_get, ϕ_get_size, ϕ_size_size := true
    spec.default_true()
    return spec


def extended_dictionary_spec() -> CommutativitySpec:
    """Fig. 6 plus remove/contains/putIfAbsent (used by the applications).

    The extra formulas follow the same recipe:

    * ``remove(k)/p`` behaves as ``put(k, nil)/p``;
    * ``contains(k)/c`` reads ``k``, so it conflicts with same-key writes
      exactly when the written value changes presence;
    * ``putIfAbsent(k, v)/p`` writes only when ``p = nil``.
    """
    spec = CommutativitySpec("dictionary")
    spec.method("put", params=("k", "v"), returns=("p",))
    spec.method("get", params=("k",), returns=("v",))
    spec.method("size", returns=("r",))
    spec.method("remove", params=("k",), returns=("p",))
    spec.method("contains", params=("k",), returns=("c",))
    spec.method("putIfAbsent", params=("k", "v"), returns=("p",))

    spec.pair("put", "put", PUT_PUT)
    spec.pair("put", "get", PUT_GET)
    spec.pair("put", "size", PUT_SIZE)

    # remove ≡ put with v = nil.
    spec.pair("remove", "remove", "k1 != k2 | (p1 == nil & p2 == nil)")
    spec.pair("remove", "put", "k1 != k2 | (p1 == nil & v2 == p2)")
    spec.pair("remove", "get", "k1 != k2 | p1 == nil")
    spec.pair("remove", "size", "p1 == nil")

    # contains reads presence of k: a same-key write commutes iff it does
    # not change presence (v and p both nil or both non-nil).
    spec.pair("contains", "put",
              "k2 != k1 | (v2 == nil & p2 == nil) | (v2 != nil & p2 != nil)")
    spec.pair("contains", "remove", "k2 != k1 | p2 == nil")
    spec.pair("contains", "putIfAbsent", "k2 != k1 | p2 != nil")

    # putIfAbsent writes iff p = nil (in which case it inserts v).
    spec.pair("putIfAbsent", "putIfAbsent",
              "k1 != k2 | (p1 != nil & p2 != nil)")
    spec.pair("putIfAbsent", "put",
              "k1 != k2 | (p1 != nil & v2 == p2)")
    spec.pair("putIfAbsent", "remove", "k1 != k2 | (p1 != nil & p2 == nil)")
    spec.pair("putIfAbsent", "get", "k1 != k2 | p1 != nil")
    spec.pair("putIfAbsent", "size", "p1 != nil")

    # get/contains/size are read-only: they all commute with one another.
    spec.default_true()
    return spec


# -- hand-written representation (Fig. 7) -----------------------------------------
#
# Fig. 7's schemas: r/w carry the key; size/resize are plain; conflicts are
# w×w and w×r on equal keys plus size×resize.  Representing the *extended*
# spec needs two more key-carrying schemas, because ``contains`` observes
# only the *presence* of a key: an overwrite (non-nil → non-nil) conflicts
# with a same-key ``get`` but commutes with a same-key ``contains``.  A
# presence-changing write therefore additionally touches ``pw:k``, and
# ``contains`` touches ``pr:k``, with the extra conflict pw×pr.

_R, _W, _PR, _PW, _SIZE, _RESIZE = "r", "w", "pr", "pw", "size", "resize"


def _dictionary_touches(action: Action):
    """ηo of Fig. 7b, extended to the additional methods."""
    method = action.method
    if method in ("put", "remove", "putIfAbsent"):
        if method == "put":
            key, value = action.args
        elif method == "remove":
            key, value = action.args[0], NIL
        else:  # putIfAbsent writes v only when the key was absent
            key = action.args[0]
            value = action.args[1] if action.returns[0] is NIL else action.returns[0]
        prev = action.returns[0]
        if value == prev:
            yield (_R, key)          # no-op write: observationally a read
        elif (value is NIL) != (prev is NIL):
            yield (_W, key)          # presence changed: also resizes
            yield (_PW, key)
            yield (_RESIZE, None)
        else:
            yield (_W, key)          # overwrite: size and presence unchanged
    elif method == "get":
        yield (_R, action.args[0])
    elif method == "contains":
        yield (_PR, action.args[0])
    elif method == "size":
        yield (_SIZE, None)
    else:
        raise ValueError(f"dictionary has no method {method!r}")


def dictionary_representation() -> SchemaRepresentation:
    """The Fig. 7 access point representation, hand-written.

    The translator applied to :func:`dictionary_spec` produces an equivalent
    representation (Definition 4.5) — the test-suite checks the two agree on
    randomized action pairs.  The ``pr``/``pw`` schemas only matter for the
    extended methods; on put/get/size actions this is exactly Fig. 7.
    """
    return SchemaRepresentation(
        kind="dictionary",
        value_schemas=(_R, _W, _PR, _PW),
        plain_schemas=(_SIZE, _RESIZE),
        conflict_pairs=(
            (_W, _W),        # two writes of the same key
            (_W, _R),        # write vs read of the same key
            (_PW, _PR),      # presence change vs presence observation
            (_SIZE, _RESIZE),
        ),
        touches=_dictionary_touches,
    )


class DictionarySemantics(ObjectSemantics):
    """Fig. 5's method effects, executable.

    The abstract state is the key-value mapping with nil entries elided,
    frozen as a sorted tuple of pairs so states are hashable values.
    """

    kind = "dictionary"

    #: small domains keep random exploration collision-rich
    KEYS: Tuple[Any, ...] = ("a", "b", "c")
    VALUES: Tuple[Any, ...] = (NIL, 1, 2)

    def initial_state(self) -> Tuple:
        return ()

    @staticmethod
    def _lookup(state: Tuple, key: Any) -> Any:
        for entry_key, entry_value in state:
            if entry_key == key:
                return entry_value
        return NIL

    @staticmethod
    def _store(state: Tuple, key: Any, value: Any) -> Tuple:
        rest = tuple(kv for kv in state if kv[0] != key)
        if value is NIL:
            return tuple(sorted(rest, key=lambda kv: repr(kv[0])))
        return tuple(sorted(rest + ((key, value),),
                            key=lambda kv: repr(kv[0])))

    def apply(self, state: Tuple, method: str,
              args: Tuple[Any, ...]) -> Tuple[Tuple, Tuple[Any, ...]]:
        if method == "put":
            key, value = args
            prev = self._lookup(state, key)
            return self._store(state, key, value), (prev,)
        if method == "get":
            return state, (self._lookup(state, args[0]),)
        if method == "size":
            return state, (len(state),)
        if method == "remove":
            key = args[0]
            prev = self._lookup(state, key)
            return self._store(state, key, NIL), (prev,)
        if method == "contains":
            return state, (self._lookup(state, args[0]) is not NIL,)
        if method == "putIfAbsent":
            key, value = args
            prev = self._lookup(state, key)
            if prev is NIL:
                return self._store(state, key, value), (NIL,)
            return state, (prev,)
        raise ValueError(f"dictionary has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        method = rng.choice(("put", "put", "get", "size"))
        if method == "put":
            return "put", (rng.choice(self.KEYS), rng.choice(self.VALUES))
        if method == "get":
            return "get", (rng.choice(self.KEYS),)
        return "size", ()
