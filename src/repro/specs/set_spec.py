"""A mathematical set object — the motivating example ECL captures but
SIMPLE cannot (Section 6 / Related work).

Methods (returns expose the hidden state as "shadow returns", as the paper
suggests for precision):

* ``add(x)/b`` — insert ``x``; ``b`` is true iff the set changed;
* ``remove(x)/b`` — delete ``x``; ``b`` is true iff the set changed;
* ``contains(x)/b`` — membership test;
* ``size()/r`` — cardinality.

Commutativity conditions hinge on whether an add/remove was *effective*
(changed the set): two adds of the same element commute unless exactly one
was effective (they both return the same post-state membership... they both
cannot be effective on the same element in either order — if both claim
``b = true`` neither order realizes both returns, and non-realizable pairs
may be declared either way; we declare them non-commuting, which is sound).
"""

from __future__ import annotations

import random
from typing import Any, FrozenSet, Tuple

from ..core.access_points import SchemaRepresentation
from ..core.events import Action
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

__all__ = ["set_spec", "set_representation", "SetSemantics"]


def set_spec() -> CommutativitySpec:
    """Commutativity specification of a set with effectiveness returns."""
    spec = CommutativitySpec("set")
    spec.method("add", params=("x",), returns=("b",))
    spec.method("remove", params=("x",), returns=("b",))
    spec.method("contains", params=("x",), returns=("b",))
    spec.method("size", returns=("r",))

    false, true = "== 0", "== 1"  # effectiveness flags are stored as 0/1

    # Same-element adds commute iff neither is effective (both no-ops).
    spec.pair("add", "add", f"x1 != x2 | (b1 {false} & b2 {false})")
    spec.pair("remove", "remove", f"x1 != x2 | (b1 {false} & b2 {false})")
    # An effective add and any same-element remove interfere, and vice versa.
    spec.pair("add", "remove", f"x1 != x2 | (b1 {false} & b2 {false})")
    # Membership observation conflicts with an effective same-element update.
    spec.pair("add", "contains", f"x1 != x2 | b1 {false}")
    spec.pair("remove", "contains", f"x1 != x2 | b1 {false}")
    # Size observation conflicts with any effective update.
    spec.pair("add", "size", f"b1 {false}")
    spec.pair("remove", "size", f"b1 {false}")
    spec.default_true()
    return spec


_R, _W, _SIZE, _RESIZE = "r", "w", "size", "resize"


def _set_touches(action: Action):
    method = action.method
    if method in ("add", "remove"):
        effective = bool(action.returns[0])
        if effective:
            yield (_W, action.args[0])
            yield (_RESIZE, None)
        else:
            yield (_R, action.args[0])
    elif method == "contains":
        yield (_R, action.args[0])
    elif method == "size":
        yield (_SIZE, None)
    else:
        raise ValueError(f"set has no method {method!r}")


def set_representation() -> SchemaRepresentation:
    """Hand-written representation mirroring Fig. 7's structure.

    Effective updates write the element and resize; ineffective updates and
    ``contains`` read the element; ``size`` observes the cardinality.
    """
    return SchemaRepresentation(
        kind="set",
        value_schemas=(_R, _W),
        plain_schemas=(_SIZE, _RESIZE),
        conflict_pairs=((_W, _W), (_W, _R), (_SIZE, _RESIZE)),
        touches=_set_touches,
    )


class SetSemantics(ObjectSemantics):
    """Executable set semantics; states are frozensets."""

    kind = "set"

    ELEMENTS: Tuple[Any, ...] = ("a", "b", "c")

    def initial_state(self) -> FrozenSet[Any]:
        return frozenset()

    def apply(self, state: FrozenSet[Any], method: str,
              args: Tuple[Any, ...]) -> Tuple[FrozenSet[Any], Tuple[Any, ...]]:
        if method == "add":
            element = args[0]
            changed = element not in state
            return state | {element}, (1 if changed else 0,)
        if method == "remove":
            element = args[0]
            changed = element in state
            return state - {element}, (1 if changed else 0,)
        if method == "contains":
            return state, (1 if args[0] in state else 0,)
        if method == "size":
            return state, (len(state),)
        raise ValueError(f"set has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        method = rng.choice(("add", "add", "remove", "contains", "size"))
        if method == "size":
            return "size", ()
        return method, (rng.choice(self.ELEMENTS),)
