"""A min/max/sum accumulator (statistics cell).

Models objects like latency trackers: threads fold samples in, a reporter
reads aggregates.  All folds commute with each other (min, max and + are
associative-commutative); folds conflict with reads — except that folding a
value that provably cannot change the aggregate (e.g. a sample equal to the
identity) commutes with reads of that aggregate.  The spec illustrates
ECL's one-sided order atoms (``d1 < 0`` style), which SIMPLE cannot express.

Methods:

* ``sample(d)/()`` — fold in a non-negative measurement ``d``;
* ``total()/t`` — read the running sum;
* ``peak()/m`` — read the running maximum.

``sample(0)`` leaves the total unchanged only if 0 is the additive
identity — it is — and never raises the peak below itself, so ``sample(d)``
commutes with ``peak`` whenever ``d <= 0``-clamped samples are no-ops; with
a non-negative domain that means ``d == 0`` for ``total`` and ``d <= m`` is
*not* expressible (it crosses sides), so peak reads conservatively conflict
with any positive sample.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from ..core.access_points import SchemaRepresentation
from ..core.events import Action
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

__all__ = ["accumulator_spec", "accumulator_representation",
           "AccumulatorSemantics"]


def accumulator_spec() -> CommutativitySpec:
    spec = CommutativitySpec("accumulator")
    spec.method("sample", params=("d",))
    spec.method("total", returns=("t",))
    spec.method("peak", returns=("m",))
    spec.pair("sample", "sample", "true")
    spec.pair("sample", "total", "d1 == 0")
    spec.pair("sample", "peak", "d1 <= 0")
    spec.default_true()
    return spec


_FOLD, _TOTAL, _PEAK = "fold", "total", "peak"


def _accumulator_touches(action: Action):
    if action.method == "sample":
        if action.args[0] > 0:
            yield (_FOLD, None)
    elif action.method == "total":
        yield (_TOTAL, None)
    elif action.method == "peak":
        yield (_PEAK, None)
    else:
        raise ValueError(f"accumulator has no method {action.method!r}")


def accumulator_representation() -> SchemaRepresentation:
    """Positive samples conflict with both aggregate reads.

    This collapses the spec's distinction between ``d == 0`` (commutes with
    ``total``) and ``d <= 0`` (commutes with ``peak``) because the sample
    domain is non-negative, making the two conditions coincide; the
    equivalence tests sample from that domain.
    """
    return SchemaRepresentation(
        kind="accumulator",
        value_schemas=(),
        plain_schemas=(_FOLD, _TOTAL, _PEAK),
        conflict_pairs=((_FOLD, _TOTAL), (_FOLD, _PEAK)),
        touches=_accumulator_touches,
    )


class AccumulatorSemantics(ObjectSemantics):
    """Executable accumulator; the state is ``(total, peak)``."""

    kind = "accumulator"

    SAMPLES: Tuple[int, ...] = (0, 1, 2, 5)

    def initial_state(self) -> Tuple[int, int]:
        return (0, 0)

    def apply(self, state: Tuple[int, int], method: str,
              args: Tuple[Any, ...]) -> Tuple[Tuple[int, int], Tuple[Any, ...]]:
        total, peak = state
        if method == "sample":
            d = args[0]
            return (total + d, max(peak, d)), ()
        if method == "total":
            return state, (total,)
        if method == "peak":
            return state, (peak,)
        raise ValueError(f"accumulator has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        roll = rng.random()
        if roll < 0.6:
            return "sample", (rng.choice(self.SAMPLES),)
        if roll < 0.8:
            return "total", ()
        return "peak", ()
