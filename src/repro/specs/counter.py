"""A shared counter with commutative increments.

The classic motivating object for commutativity-aware analyses: increments
commute with each other (addition is commutative) even though every
increment is a low-level read-modify-write — a read/write race detector
flags concurrent increments, a commutativity race detector does not.

Methods:

* ``add(d)/()`` — blind increment by ``d`` (no return: it observes nothing);
* ``read()/v`` — observe the current value.

``add`` commutes with ``add`` unconditionally; ``add`` conflicts with
``read`` unless the increment is zero.
"""

from __future__ import annotations

import random
from typing import Any, Tuple

from ..core.access_points import SchemaRepresentation
from ..core.events import Action
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec

__all__ = ["counter_spec", "counter_representation", "CounterSemantics"]


def counter_spec() -> CommutativitySpec:
    spec = CommutativitySpec("counter")
    spec.method("add", params=("d",))
    spec.method("read", returns=("v",))
    spec.pair("add", "add", "true")
    spec.pair("add", "read", "d1 == 0")
    spec.pair("read", "read", "true")
    return spec


_ADD, _READ = "add", "read"


def _counter_touches(action: Action):
    if action.method == "add":
        if action.args[0] != 0:
            yield (_ADD, None)
    elif action.method == "read":
        yield (_READ, None)
    else:
        raise ValueError(f"counter has no method {action.method!r}")


def counter_representation() -> SchemaRepresentation:
    """Two plain schemas: nonzero increments conflict with reads only."""
    return SchemaRepresentation(
        kind="counter",
        value_schemas=(),
        plain_schemas=(_ADD, _READ),
        conflict_pairs=((_ADD, _READ),),
        touches=_counter_touches,
    )


class CounterSemantics(ObjectSemantics):
    """Executable counter semantics; the state is the integer value."""

    kind = "counter"

    DELTAS: Tuple[int, ...] = (-2, -1, 0, 1, 2)

    def initial_state(self) -> int:
        return 0

    def apply(self, state: int, method: str,
              args: Tuple[Any, ...]) -> Tuple[int, Tuple[Any, ...]]:
        if method == "add":
            return state + args[0], ()
        if method == "read":
            return state, (state,)
        raise ValueError(f"counter has no method {method!r}")

    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        if rng.random() < 0.6:
            return "add", (rng.choice(self.DELTAS),)
        return "read", ()
