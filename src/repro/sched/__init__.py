"""Deterministic cooperative scheduling and synthetic workload generation
(the JVM-threads substitute)."""

from .explore import ExplorationResult, SeedOutcome, explore
from .primitives import Barrier, Semaphore
from .scheduler import Scheduler, TaskHandle, TaskState
from .workload import GeneratedWorkload, WorkloadConfig, generate_trace

__all__ = ["ExplorationResult", "SeedOutcome", "explore",
           "Barrier", "Semaphore",
           "Scheduler", "TaskHandle", "TaskState",
           "GeneratedWorkload", "WorkloadConfig", "generate_trace"]
