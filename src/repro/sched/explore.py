"""Schedule exploration: hunt for races across seeded interleavings.

A single cooperative run observes one interleaving; a commutativity race
only manifests when its two invocations are actually unordered in the
observed trace.  Exploration re-runs a program under many seeds and
aggregates the verdicts — the dynamic-analysis analogue of a stress test,
but deterministic and replayable (every finding names the seed that
produced it).

Usage::

    def program(monitor, scheduler):
        shared = MonitoredDict(monitor, name="o")
        ...

    result = explore(program, seeds=range(32))
    result.racy_seeds          # which interleavings raced
    result.all_groups()        # deduplicated findings across seeds

The program callable receives a fresh monitor and scheduler per seed and
must create all shared state inside (state leaking across runs would make
seeds non-independent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.races import RaceGroup, RaceReport, group_races, tally
from ..runtime.analyzers import Analyzer, Rd2Analyzer
from ..runtime.monitor import Monitor
from .scheduler import Scheduler

__all__ = ["SeedOutcome", "ExplorationResult", "explore"]

Program = Callable[[Monitor, Scheduler], object]


@dataclass
class SeedOutcome:
    """One seeded run: its reports and whatever the program returned."""

    seed: int
    reports: Tuple[RaceReport, ...]
    result: object = None

    @property
    def raced(self) -> bool:
        return bool(self.reports)


@dataclass
class ExplorationResult:
    """Aggregated outcomes across every explored seed."""

    outcomes: List[SeedOutcome] = field(default_factory=list)

    @property
    def seeds(self) -> List[int]:
        return [outcome.seed for outcome in self.outcomes]

    @property
    def racy_seeds(self) -> List[int]:
        return [outcome.seed for outcome in self.outcomes if outcome.raced]

    @property
    def race_frequency(self) -> float:
        """Fraction of explored interleavings that raced."""
        if not self.outcomes:
            return 0.0
        return len(self.racy_seeds) / len(self.outcomes)

    def all_reports(self) -> List[RaceReport]:
        out: List[RaceReport] = []
        for outcome in self.outcomes:
            out.extend(outcome.reports)
        return out

    def all_groups(self) -> Tuple[RaceGroup, ...]:
        """Findings deduplicated across seeds (by object + schema pair)."""
        return group_races(self.all_reports())

    #: ``summary()`` shows at most this many racy seeds; a large sweep
    #: where most interleavings race would otherwise dump thousands of
    #: seed numbers into one log line.  ``race_frequency`` and the
    #: "N raced" count stay exact regardless.
    SUMMARY_SEED_CAP = 12

    def summary(self) -> str:
        racy = self.racy_seeds
        shown = racy[:self.SUMMARY_SEED_CAP]
        elided = len(racy) - len(shown)
        listing = ", ".join(str(seed) for seed in shown)
        if elided > 0:
            listing += f", … +{elided} more"
        lines = [f"explored {len(self.outcomes)} interleavings: "
                 f"{len(racy)} raced "
                 f"({self.race_frequency:.0%}); "
                 f"racy seeds: [{listing}]"]
        for group in self.all_groups():
            lines.append(f"  {group}")
        return "\n".join(lines)


def explore(program: Program,
            seeds: Iterable[int] = range(16),
            analyzer_factory: Callable[[], Analyzer] = Rd2Analyzer,
            switch_probability: float = 1.0,
            stop_at_first: bool = False) -> ExplorationResult:
    """Run ``program`` under each seed; aggregate race reports.

    ``analyzer_factory`` builds the detector for each run (default RD2;
    pass e.g. ``FastTrackAnalyzer`` to explore for low-level races
    instead).  With ``stop_at_first`` exploration returns as soon as one
    racy interleaving is found — handy in CI where any race fails the
    build and the witness seed is all that matters.
    """
    exploration = ExplorationResult()
    for seed in seeds:
        analyzer = analyzer_factory()
        monitor = Monitor(analyzers=[analyzer])
        scheduler = Scheduler(monitor, seed=seed,
                              switch_probability=switch_probability)
        result = scheduler.run(program, monitor, scheduler)
        outcome = SeedOutcome(seed=seed,
                              reports=tuple(analyzer.races()),
                              result=result)
        exploration.outcomes.append(outcome)
        if stop_at_first and outcome.raced:
            break
    return exploration
