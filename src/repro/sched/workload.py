"""Synthetic trace generation.

The detector benchmarks and many integration tests need traces that are

* **consistent** — return values realizable by some linearization (the
  generator simulates execution against the executable semantics, so every
  action's returns are the truth at its linearization point);
* **structured** — fork/join and optional lock regions giving a genuine
  happens-before partial order, not just a flat shuffle;
* **reproducible** — entirely determined by a :class:`WorkloadConfig`.

:func:`generate_trace` interleaves per-thread scripts by seeded choice,
which is exactly the class of traces the cooperative scheduler produces for
real programs — minus the program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.events import Action, ObjectId
from ..core.trace import Trace, TraceBuilder
from ..logic.semantics import ObjectSemantics
from ..specs import BundledObject, bundled_objects

__all__ = ["WorkloadConfig", "GeneratedWorkload", "generate_trace"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic workload.

    ``objects`` maps a bundled object kind to how many instances to create;
    operations are spread uniformly across instances.  With
    ``lock_probability > 0`` a per-object lock guards that fraction of
    operations, carving ordered regions into the trace (this is what makes
    race/no-race mixes interesting).
    """

    threads: int = 4
    ops_per_thread: int = 50
    objects: Tuple[Tuple[str, int], ...] = (("dictionary", 1),)
    seed: int = 0
    lock_probability: float = 0.0
    join_at_end: bool = True

    def object_ids(self) -> List[Tuple[str, ObjectId]]:
        out = []
        for kind, count in self.objects:
            for index in range(count):
                out.append((kind, f"{kind}/{index}"))
        return out


@dataclass
class GeneratedWorkload:
    """A generated trace plus everything needed to analyze it."""

    trace: Trace
    config: WorkloadConfig
    #: object id -> bundled kind entry (spec/representation/semantics)
    objects: Dict[ObjectId, BundledObject]
    #: final abstract state per object (for determinism experiments)
    final_states: Dict[ObjectId, object] = field(default_factory=dict)

    def register_all(self, register) -> None:
        """Call ``register(obj_id, bundled)`` for every object."""
        for obj_id, bundled in self.objects.items():
            register(obj_id, bundled)


def generate_trace(config: WorkloadConfig) -> GeneratedWorkload:
    """Simulate a fork/join program and record its trace.

    The root thread forks ``config.threads`` workers, each executing
    ``ops_per_thread`` random invocations against the shared objects; the
    interleaving is a seeded shuffle honoring program order.  Returns are
    computed by running each invocation against the object's semantics at
    its linearization point, so the trace is consistent.
    """
    registry = bundled_objects()
    rng = random.Random(config.seed)
    builder = TraceBuilder(root=0)

    objects: Dict[ObjectId, BundledObject] = {}
    semantics: Dict[ObjectId, ObjectSemantics] = {}
    states: Dict[ObjectId, object] = {}
    for kind, obj_id in config.object_ids():
        bundled = registry[kind]
        if bundled.semantics is None:
            raise ValueError(f"object kind {kind!r} has no semantics")
        objects[obj_id] = bundled
        semantics[obj_id] = bundled.semantics()
        states[obj_id] = semantics[obj_id].initial_state()
    object_list = list(objects)

    worker_tids = list(range(1, config.threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)

    remaining = {tid: config.ops_per_thread for tid in worker_tids}
    # One private lock name per object; a thread holds at most one lock.
    lock_of = {obj_id: f"lock:{obj_id}" for obj_id in object_list}

    def run_op(tid: int) -> None:
        obj_id = rng.choice(object_list)
        sem = semantics[obj_id]
        method, args = sem.sample_invocation(rng)
        locked = (config.lock_probability > 0
                  and rng.random() < config.lock_probability)
        if locked:
            builder.acquire(tid, lock_of[obj_id])
        new_state, returns = sem.apply(states[obj_id], method, args)
        states[obj_id] = new_state
        builder.action(tid, Action(obj_id, method, args, returns))
        if locked:
            builder.release(tid, lock_of[obj_id])

    while any(remaining.values()):
        candidates = [tid for tid, left in remaining.items() if left]
        tid = rng.choice(candidates)
        run_op(tid)
        remaining[tid] -= 1

    if config.join_at_end:
        builder.join_all(0, worker_tids)
        # The paper's running example: observe sizes after joinall.
        for obj_id in object_list:
            sem = semantics[obj_id]
            try:
                new_state, returns = sem.apply(states[obj_id], "size", ())
            except ValueError:
                continue
            states[obj_id] = new_state
            builder.action(0, Action(obj_id, "size", (), returns))

    return GeneratedWorkload(trace=builder.build(), config=config,
                             objects=objects, final_states=dict(states))
