"""Deterministic cooperative scheduler (the JVM-threads substitute).

Python's GIL makes real preemptive interleaving both slow and
irreproducible, so the applications in this repository run under a
*cooperative, seeded* scheduler:

* every task is a real ``threading.Thread``, but exactly one holds the
  *turn* at any moment — a token passed through per-task events;
* the running task offers the scheduler a context switch at every monitored
  operation (collections and shared variables call ``monitor.preempt()``,
  which the scheduler binds to :meth:`Scheduler.preempt`);
* the next task is chosen by a seeded RNG, so a given ``(program, seed)``
  pair always produces the same trace — experiments are reproducible and
  different seeds explore different interleavings.

The scheduler is also the source of thread identity and synchronization
events: :meth:`spawn` reports ``fork``, :meth:`join` reports ``join`` (after
the target finished — the correct happens-before timing), and
:class:`~repro.runtime.shared.MonitoredLock` delegates blocking to
:meth:`lock_acquire`/:meth:`lock_release`.

Because only one task runs at a time, invocations of monitored collections
are naturally linearizable, matching the paper's atomic-transition execution
model, while check-then-act sequences *across* invocations genuinely
interleave — exactly the granularity at which commutativity races live.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Set

from ..core.errors import SchedulerError
from ..core.vector_clock import Tid
from ..runtime.monitor import Monitor

__all__ = ["TaskState", "TaskHandle", "Scheduler"]


class TaskState(enum.Enum):
    READY = "ready"          # runnable, waiting for the turn
    RUNNING = "running"      # holds the turn
    BLOCKED = "blocked"      # waiting for a lock
    PARKED = "parked"        # waiting on a condition key (park/unpark)
    JOINING = "joining"      # waiting for another task to finish
    DONE = "done"


@dataclass
class TaskHandle:
    """Identity of a spawned task; pass to :meth:`Scheduler.join`."""

    tid: Tid

    def __hash__(self) -> int:
        return hash(self.tid)


@dataclass
class _Task:
    tid: Tid
    fn: Optional[Callable[..., Any]]
    args: tuple
    state: TaskState = TaskState.READY
    turn: threading.Event = field(default_factory=threading.Event)
    thread: Optional[threading.Thread] = None
    joining: Optional[Tid] = None
    waiting_lock: Optional[Hashable] = None
    result: Any = None
    error: Optional[BaseException] = None


class Scheduler:
    """Seeded cooperative round-robin/random scheduler over real threads.

    Parameters
    ----------
    monitor:
        The monitor to report fork/join events to and to serve thread
        identity for; its ``preempt`` hook is bound to this scheduler.
    seed:
        RNG seed; fixes the interleaving completely for deterministic
        programs.
    switch_probability:
        Chance of actually switching at a preemption point (1.0 = consider
        a switch at every monitored operation).  Lower values yield longer
        thread bursts — coarser interleavings, faster runs.
    """

    def __init__(self, monitor: Monitor, seed: int = 0,
                 switch_probability: float = 1.0):
        self._monitor = monitor
        self._rng = random.Random(seed)
        self._switch_probability = switch_probability
        self._tasks: Dict[Tid, _Task] = {}
        self._by_ident: Dict[int, Tid] = {}
        self._mutex = threading.Lock()
        self._next_tid = 0
        self._finished = threading.Event()
        self._failure: Optional[BaseException] = None
        self._lock_owner: Dict[Hashable, Optional[Tid]] = {}
        self.context_switches = 0
        monitor.bind_tid_provider(self.current_tid)
        monitor.bind_preempt(self.preempt)

    # -- identity ----------------------------------------------------------

    def current_tid(self) -> Tid:
        tid = self._by_ident.get(threading.get_ident())
        if tid is None:
            raise SchedulerError(
                "current OS thread is not a scheduler task")
        return tid

    def _current(self) -> _Task:
        return self._tasks[self.current_tid()]

    # -- lifecycle ----------------------------------------------------------------

    def run(self, main: Callable[..., Any], *args) -> Any:
        """Run ``main`` as the root task until every task completes.

        Raises the first task failure (scheduling errors included) and
        returns ``main``'s result otherwise.
        """
        if self._tasks:
            raise SchedulerError("scheduler already ran; create a fresh one")
        root = self._create_task(main, args)          # tid 0
        root.turn.set()
        root.thread.start()
        self._finished.wait()
        # On clean completion every thread has retired; on deadlock some
        # task threads are parked on their turn events forever — they are
        # daemons, so only completed tasks are joined and the failure is
        # reported.
        for task in list(self._tasks.values()):
            if task.thread is not None and task.state is TaskState.DONE:
                task.thread.join(timeout=5.0)
        # The root task's own failure wins (it may have wrapped a child's
        # failure via join); otherwise surface the first recorded one.
        failure = root.error if root.error is not None else self._failure
        if failure is not None:
            raise failure
        return root.result

    def _create_task(self, fn: Callable[..., Any], args: tuple) -> _Task:
        with self._mutex:
            tid = self._next_tid
            self._next_tid += 1
        task = _Task(tid=tid, fn=fn, args=args)
        task.thread = threading.Thread(
            target=self._task_main, args=(task,),
            name=f"sched-task-{tid}", daemon=True)
        self._tasks[tid] = task
        return task

    def _task_main(self, task: _Task) -> None:
        task.turn.wait()
        task.turn.clear()
        task.state = TaskState.RUNNING
        self._by_ident[threading.get_ident()] = task.tid
        try:
            task.result = task.fn(*task.args)
        except BaseException as exc:  # noqa: BLE001 — reported to run()
            task.error = exc
            if self._failure is None:
                self._failure = exc
        finally:
            self._retire(task)

    def _retire(self, task: _Task) -> None:
        task.state = TaskState.DONE
        # Wake tasks joining on us.
        for other in self._tasks.values():
            if other.state is TaskState.JOINING and other.joining == task.tid:
                other.state = TaskState.READY
                other.joining = None
        next_task = self._pick_next()
        if next_task is None:
            if self._alive_count() == 0:
                self._finished.set()
            else:
                self._fail_all(SchedulerError(
                    "deadlock: no runnable task but "
                    f"{self._alive_count()} task(s) still blocked"))
        else:
            self._grant(next_task)

    def _alive_count(self) -> int:
        return sum(1 for t in self._tasks.values()
                   if t.state is not TaskState.DONE)

    def _fail_all(self, error: BaseException) -> None:
        if self._failure is None:
            self._failure = error
        self._finished.set()

    # -- task API (called from inside tasks) ----------------------------------------

    def spawn(self, fn: Callable[..., Any], *args) -> TaskHandle:
        """Fork a new task; reports the fork edge to the monitor."""
        parent_tid = self.current_tid()
        task = self._create_task(fn, args)
        self._monitor.on_fork(task.tid, parent=parent_tid)
        task.thread.start()
        return TaskHandle(task.tid)

    def join(self, handle: TaskHandle) -> Any:
        """Wait for a task; reports the join edge once it has finished."""
        target = self._tasks.get(handle.tid)
        if target is None:
            raise SchedulerError(f"join of unknown task {handle.tid}")
        current = self._current()
        if target.state is not TaskState.DONE:
            current.state = TaskState.JOINING
            current.joining = target.tid
            self._switch(current)
        self._monitor.on_join(target.tid, waiter=current.tid)
        if target.error is not None:
            raise SchedulerError(
                f"joined task {target.tid} failed: {target.error!r}"
            ) from target.error
        return target.result

    def join_all(self, handles) -> List[Any]:
        """The paper's ``joinall``."""
        return [self.join(handle) for handle in handles]

    def preempt(self) -> None:
        """A monitored operation is about to run; maybe switch tasks."""
        current = self._tasks.get(self._by_ident.get(threading.get_ident(), -1))
        if current is None or current.state is not TaskState.RUNNING:
            return
        if self._switch_probability < 1.0:
            if self._rng.random() >= self._switch_probability:
                return
        current.state = TaskState.READY
        self._switch(current)

    # -- locks (used by MonitoredLock) ---------------------------------------------

    def lock_acquire(self, lock_id: Hashable) -> None:
        current = self._current()
        while True:
            owner = self._lock_owner.get(lock_id)
            if owner is None:
                self._lock_owner[lock_id] = current.tid
                return
            current.state = TaskState.BLOCKED
            current.waiting_lock = lock_id
            self._switch(current)

    def lock_release(self, lock_id: Hashable) -> None:
        current = self._current()
        if self._lock_owner.get(lock_id) != current.tid:
            raise SchedulerError(
                f"task {current.tid} released lock {lock_id!r} it does "
                f"not hold")
        self._lock_owner[lock_id] = None
        for task in self._tasks.values():
            if (task.state is TaskState.BLOCKED
                    and task.waiting_lock == lock_id):
                task.state = TaskState.READY
                task.waiting_lock = None

    # -- condition parking (used by Barrier/Semaphore) ------------------------------

    def park(self, key: Hashable) -> None:
        """Block the current task until :meth:`unpark_all` on ``key``.

        The caller must re-check its condition after waking (standard
        condition-variable discipline — wakeups are collective).
        """
        current = self._current()
        current.state = TaskState.PARKED
        current.waiting_lock = key
        self._switch(current)

    def unpark_all(self, key: Hashable) -> int:
        """Make every task parked on ``key`` runnable; returns how many."""
        woken = 0
        for task in self._tasks.values():
            if task.state is TaskState.PARKED and task.waiting_lock == key:
                task.state = TaskState.READY
                task.waiting_lock = None
                woken += 1
        return woken

    # -- the turn machinery ------------------------------------------------------------

    def _runnable(self, exclude: Optional[Tid] = None) -> List[_Task]:
        return [task for task in self._tasks.values()
                if task.state is TaskState.READY and task.tid != exclude]

    def _pick_next(self) -> Optional[_Task]:
        candidates = self._runnable()
        if not candidates:
            return None
        candidates.sort(key=lambda t: t.tid)  # determinism across dict order
        return self._rng.choice(candidates)

    def _grant(self, task: _Task) -> None:
        task.state = TaskState.RUNNING
        task.turn.set()

    def _switch(self, current: _Task) -> None:
        """Give up the turn; block until granted again.

        ``current.state`` must already reflect why we stopped (READY,
        BLOCKED or JOINING).
        """
        next_task = self._pick_next()
        if next_task is None:
            if current.state is TaskState.READY:
                # Nobody else to run: keep going.
                current.state = TaskState.RUNNING
                return
            failure = SchedulerError(
                f"deadlock: task {current.tid} is {current.state.value} "
                f"and no other task is runnable")
            self._fail_all(failure)
            raise failure
        if next_task.tid == current.tid:
            current.state = TaskState.RUNNING
            return
        self.context_switches += 1
        self._grant(next_task)
        current.turn.wait()
        current.turn.clear()
        current.state = TaskState.RUNNING
