"""Higher-level coordination primitives: barriers and semaphores.

Beyond fork/join and locks (Table 1), real workloads coordinate through
barriers and semaphores.  These primitives do two jobs at once:

1. *scheduling* — blocking is routed through the cooperative scheduler's
   park/unpark facility, so waiting tasks yield deterministically;
2. *happens-before* — each primitive emits acquire/release events that
   encode its ordering guarantees in Table 1's vocabulary, so the race
   detectors see the synchronization without any new event kinds.

Happens-before encodings
------------------------

**Barrier**: every pre-barrier event of every participant must order before
every post-barrier event of every participant.  Arrival ``i`` performs
``acq(B); rel(B)``: the acquire joins the accumulated lock clock (all
earlier arrivals), the release stores the join back — so ``L(B)`` grows
into the join of all arrivals.  After the last arrival, each released
waiter performs one more ``acq(B)``, picking up the complete join.  The
result is exactly the all-to-all ordering (and matches how ``joinall`` is
treated in the paper's examples).

**Semaphore**: precise semaphore causality orders an acquire after only
the releases it "consumed".  Like other dynamic detectors, we encode the
conservative over-approximation — semaphore-as-lock, with releases
accumulating (``acq;rel``) — which can only *order more*, i.e. suppress
races, never fabricate them.  This is the standard sound treatment.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Optional

from ..core.errors import SchedulerError
from ..runtime.monitor import Monitor
from .scheduler import Scheduler

__all__ = ["Barrier", "Semaphore"]

_barrier_serial = itertools.count()
_semaphore_serial = itertools.count()


class Barrier:
    """A cyclic barrier for ``parties`` tasks.

    ``wait()`` blocks until all parties arrive, then everyone proceeds;
    the barrier then resets for the next generation (like
    ``threading.Barrier``).
    """

    def __init__(self, monitor: Monitor, scheduler: Scheduler,
                 parties: int, name: Optional[str] = None):
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self._monitor = monitor
        self._scheduler = scheduler
        self.parties = parties
        self.barrier_id = (name if name is not None
                           else f"barrier#{next(_barrier_serial)}")
        self._arrived = 0
        self._generation = 0

    def _lock_id(self, generation: int) -> Hashable:
        return (self.barrier_id, generation)

    def wait(self) -> int:
        """Arrive; block until all parties have; returns the arrival index."""
        monitor = self._monitor
        generation = self._generation
        lock_id = self._lock_id(generation)

        # Arrival: fold this task's clock into the barrier's clock.
        monitor.on_acquire(lock_id)
        monitor.on_release(lock_id)
        self._arrived += 1
        index = self._arrived

        if self._arrived == self.parties:
            # Last arrival: open the next generation and release everyone.
            self._arrived = 0
            self._generation += 1
            self._scheduler.unpark_all(("barrier", self.barrier_id,
                                        generation))
        else:
            while self._generation == generation:
                self._scheduler.park(("barrier", self.barrier_id,
                                      generation))
            # Woken: pick up the complete all-arrivals clock.
            monitor.on_acquire(lock_id)
        return index

    def __repr__(self) -> str:
        return f"Barrier({self.barrier_id}, parties={self.parties})"


class Semaphore:
    """A counting semaphore with conservative happens-before.

    ``acquire()`` blocks while no permits are available; ``release()``
    returns one (and may exceed the initial count, as with
    ``threading.Semaphore``).
    """

    def __init__(self, monitor: Monitor, scheduler: Scheduler,
                 permits: int = 1, name: Optional[str] = None):
        if permits < 0:
            raise ValueError("initial permits must be non-negative")
        self._monitor = monitor
        self._scheduler = scheduler
        self._permits = permits
        self.semaphore_id = (name if name is not None
                             else f"sem#{next(_semaphore_serial)}")

    @property
    def permits(self) -> int:
        return self._permits

    def acquire(self) -> None:
        while self._permits == 0:
            self._scheduler.park(("sem", self.semaphore_id))
        self._permits -= 1
        # Order after all accumulated releases.
        self._monitor.on_acquire(self.semaphore_id)

    def release(self) -> None:
        # Accumulate (join-then-store) so no release edge is ever lost.
        self._monitor.on_acquire(self.semaphore_id)
        self._monitor.on_release(self.semaphore_id)
        self._permits += 1
        self._scheduler.unpark_all(("sem", self.semaphore_id))

    def __enter__(self) -> "Semaphore":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"Semaphore({self.semaphore_id}, permits={self._permits})"
