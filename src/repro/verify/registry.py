"""The registry of verifiable objects: spec + semantics + bounded domain.

Extends the bundled registry (:func:`repro.specs.bundled_objects`) with
everything the verifier needs per kind:

* an explicit **invocation domain** — the ``(method, args)`` grid the
  bounded enumeration is built from.  Unlike the randomized
  ``sample_invocation`` samplers, these cover *every* method of the spec
  (the dictionary sampler, for instance, never draws the extended
  methods);
* the default **reachability depth** for the state closure;
* the pair **waivers** documenting imprecision that ECL (Definition 6.3)
  provably cannot avoid.  Every waiver must be *exercised* — the checker
  reports unused waivers as failures, and ``tests/verify`` asserts each
  one forgives at least one realizable indistinguishable pair.

Two kinds are verified beyond the bundled seven: ``dictionary-ext`` (the
extended Fig. 6 spec the applications use) and ``seqlog`` (whose
``append``/``get`` formula the checker corrected — see
:func:`repro.specs.list_spec.sequence_log_spec`).

Domain notes:

* ``putIfAbsent`` never takes ``nil`` as its value argument.  Java's
  ``ConcurrentHashMap`` (the method's origin) prohibits null values, and
  ``putIfAbsent(k, nil)`` on an absent key would be a state-preserving
  write that the spec's presence-based formulas cannot classify.
* Counter deltas include ``0`` and negatives — ``add(0)``'s
  read-commutativity is part of the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.events import NIL
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec
from ..specs import (AccumulatorSemantics, CounterSemantics,
                     DictionarySemantics, MultisetLogSemantics,
                     QueueSemantics, RegisterSemantics,
                     SequenceLogSemantics, SetSemantics, accumulator_spec,
                     counter_spec, dictionary_spec, extended_dictionary_spec,
                     multiset_log_spec, queue_spec, register_spec,
                     sequence_log_spec, set_spec)
from .domains import BoundedDomain, Invocation, build_domain

__all__ = ["Waiver", "VerifiedObject", "verifiable_objects"]

#: why a pair may legitimately stay imprecise: the exact commutativity
#: condition needs an atom relating values of *both* sides beyond a
#: disequality, which Definition 6.3 excludes from ECL.
_OUTSIDE_ECL = ("exact condition needs a cross-side atom outside ECL "
                "(Definition 6.3): {condition}")


def _ecl_waiver(condition: str) -> str:
    return _OUTSIDE_ECL.format(condition=condition)


@dataclass(frozen=True)
class Waiver:
    """A documented, audited imprecision for one method pair."""

    m1: str
    m2: str
    reason: str

    @property
    def key(self) -> frozenset:
        return frozenset({self.m1, self.m2})


@dataclass(frozen=True)
class VerifiedObject:
    """One object kind with everything exhaustive verification needs."""

    kind: str
    spec: Callable[[], CommutativitySpec]
    semantics: Callable[[], ObjectSemantics]
    invocations: Tuple[Invocation, ...]
    depth: int = 3
    waivers: Tuple[Waiver, ...] = ()
    #: whether :mod:`repro.verify.smt` can encode this kind's theory
    smt_supported: bool = False

    def domain(self, depth: Optional[int] = None) -> BoundedDomain:
        return build_domain(self.kind, self.semantics(), self.invocations,
                            depth if depth is not None else self.depth)

    def waiver_map(self) -> Dict[frozenset, str]:
        return {w.key: w.reason for w in self.waivers}


def _dictionary_invocations(keys=("a", "b"), values=(NIL, 1, 2),
                            extended=False) -> Tuple[Invocation, ...]:
    out = []
    for key in keys:
        for value in values:
            out.append(("put", (key, value)))
        out.append(("get", (key,)))
    out.append(("size", ()))
    if extended:
        for key in keys:
            out.append(("remove", (key,)))
            out.append(("contains", (key,)))
            for value in values:
                if value is not NIL:   # CHM prohibits null values
                    out.append(("putIfAbsent", (key, value)))
    return tuple(out)


def _set_invocations(elements=("a", "b", "c")) -> Tuple[Invocation, ...]:
    out = []
    for element in elements:
        out.append(("add", (element,)))
        out.append(("remove", (element,)))
        out.append(("contains", (element,)))
    out.append(("size", ()))
    return tuple(out)


def _counter_invocations(deltas=(-2, -1, 0, 1, 2)) -> Tuple[Invocation, ...]:
    return tuple(("add", (d,)) for d in deltas) + (("read", ()),)


def _register_invocations(values=(0, 1, 2)) -> Tuple[Invocation, ...]:
    return tuple(("write", (v,)) for v in values) + (("read", ()),)


def _accumulator_invocations(samples=(0, 1, 2)) -> Tuple[Invocation, ...]:
    return (tuple(("sample", (d,)) for d in samples)
            + (("total", ()), ("peak", ())))


def _msetlog_invocations(elements=("x", "y")) -> Tuple[Invocation, ...]:
    return (tuple(("log", (e,)) for e in elements)
            + tuple(("count", (e,)) for e in elements)
            + (("snapshot", ()),))


def _queue_invocations(elements=("a", "b")) -> Tuple[Invocation, ...]:
    return (tuple(("enq", (e,)) for e in elements)
            + (("deq", ()), ("peek", ()), ("size", ())))


def _seqlog_invocations(elements=("x", "y"),
                        indices=(0, 1, 2, 3)) -> Tuple[Invocation, ...]:
    return (tuple(("append", (e,)) for e in elements)
            + tuple(("get", (i,)) for i in indices)
            + (("snapshot", ()),))


def verifiable_objects() -> Dict[str, VerifiedObject]:
    """All verifiable kinds, keyed by name (superset of the bundle)."""
    entries = [
        VerifiedObject(
            "dictionary", dictionary_spec, DictionarySemantics,
            _dictionary_invocations(), smt_supported=True),
        VerifiedObject(
            "dictionary-ext", extended_dictionary_spec, DictionarySemantics,
            _dictionary_invocations(extended=True), smt_supported=True),
        VerifiedObject(
            "set", set_spec, SetSemantics, _set_invocations(),
            smt_supported=True),
        VerifiedObject(
            "counter", counter_spec, CounterSemantics,
            _counter_invocations(), smt_supported=True),
        VerifiedObject(
            "register", register_spec, RegisterSemantics,
            _register_invocations(), smt_supported=True),
        VerifiedObject(
            "accumulator", accumulator_spec, AccumulatorSemantics,
            _accumulator_invocations(), smt_supported=True,
            waivers=(
                Waiver("sample", "peak",
                       _ecl_waiver("a positive sample below the running "
                                   "maximum leaves every peak() read "
                                   "unchanged, i.e. commute iff d1 <= m2")),
            )),
        VerifiedObject(
            "msetlog", multiset_log_spec, MultisetLogSemantics,
            _msetlog_invocations()),
        VerifiedObject(
            "queue", queue_spec, QueueSemantics, _queue_invocations(),
            waivers=(
                Waiver("enq", "enq",
                       _ecl_waiver("two enqueues of the same element "
                                   "commute, i.e. commute iff x1 = x2")),
                Waiver("deq", "deq",
                       _ecl_waiver("two successful dequeues of the same "
                                   "element commute (the head repeats), "
                                   "i.e. commute iff y1 = y2")),
            )),
        VerifiedObject(
            "seqlog", sequence_log_spec, SequenceLogSemantics,
            _seqlog_invocations()),
    ]
    return {entry.kind: entry for entry in entries}
