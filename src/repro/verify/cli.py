"""The ``repro-verify-specs`` command: verify bundled specs, from a shell.

::

    repro-verify-specs                       # verify every kind
    repro-verify-specs set queue             # just these kinds
    repro-verify-specs --depth 4             # deeper bounded universes
    repro-verify-specs --json verdicts.json  # frozen verdict schema
    repro-verify-specs --smt                 # add the Z3 soundness leg
    repro-verify-specs --synthesize          # re-derive conditions per pair
    repro-verify-specs --list                # available kinds

The JSON schema (``repro-verify/v1``) is frozen and golden-file tested::

    {"schema": "repro-verify/v1",
     "verified": bool,                 -- conjunction over kinds
     "depth": int | null,              -- the --depth override, if any
     "kinds": [{"kind": ..., "verified": ..., "bound": {...},
                "pairs": [...], "unused_waivers": [...],
                "smt": [...],          -- only with --smt
                "synthesis": [...]}]}  -- only with --synthesize

Exit codes follow :mod:`repro.cli`'s scripting interface: 0 every spec
verified, 1 some verification failed (counterexample or unused waiver), 2
usage error (e.g. an unknown kind).  The ``--smt`` leg degrades to status
``"unavailable"`` without ``z3-solver`` and never affects the exit code
on its own unless it finds a counterexample.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..obs import NULL_REGISTRY, Registry, build_report, write_report
from .registry import VerifiedObject, verifiable_objects

__all__ = ["main", "run_verification", "SCHEMA"]

SCHEMA = "repro-verify/v1"

EXIT_CLEAN = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2

_EXIT_CODE_HELP = """\
exit codes:
  0   every requested spec verified (sound and precise modulo waivers)
  1   a counterexample, unused waiver, or SMT refutation was found
  2   usage error (unknown kind or bad option value)
"""


def _fail(message: str, code: int) -> "SystemExit":
    print(f"repro-verify-specs: error: {message}", file=sys.stderr)
    raise SystemExit(code)


def _verify_kind(entry: VerifiedObject, depth: Optional[int],
                 smt: bool, synthesize: bool,
                 obs=NULL_REGISTRY) -> Dict[str, Any]:
    """One kind's full verdict (checker [+ smt] [+ synthesis]), as JSON."""
    from .checker import verify_spec
    domain = entry.domain(depth)
    spec = entry.spec()
    semantics = entry.semantics()
    verdict = verify_spec(spec, semantics, domain, entry.waiver_map(),
                          obs=obs)
    payload = verdict.to_json()

    if smt:
        from .smt import verify_spec_smt
        results = verify_spec_smt(entry.kind, spec)
        payload["smt"] = [r.to_json() for r in results]
        if any(r.status == "counterexample" for r in results):
            payload["verified"] = False

    if synthesize:
        from .synthesis import synthesize_condition
        synth = []
        for m1, m2, _ in sorted(spec.pairs(), key=lambda p: (p[0], p[1])):
            result = synthesize_condition(spec, semantics, domain, m1, m2,
                                          obs=obs)
            synth.append(result.to_json())
        payload["synthesis"] = synth
    return payload


def _render_kind(payload: Dict[str, Any], verbose: bool) -> str:
    lines = []
    bound = payload["bound"]
    waived = [(p["m1"], p["m2"], p["precision"]["waived"])
              for p in payload["pairs"] if p["precision"]["waived"]]
    status = "OK" if payload["verified"] else "FAIL"
    summary = (f"{payload['kind']}: {status} "
               f"({bound['states']} states, {bound['actions']} actions, "
               f"{len(payload['pairs'])} pairs, depth {bound['depth']})")
    if waived:
        summary += ("; waived: "
                    + ", ".join(f"{m1}/{m2}×{n}" for m1, m2, n in waived))
    lines.append(summary)
    for pair in payload["pairs"]:
        ce = pair["counterexample"]
        if ce is not None:
            lines.append(f"  counterexample: {ce['message']}")
        elif verbose:
            lines.append(f"  {pair['m1']}/{pair['m2']}: "
                         f"ϕ = {pair['formula']} "
                         f"[{pair['soundness']['status']}/"
                         f"{pair['precision']['status']}]")
    for unused in payload["unused_waivers"]:
        lines.append(f"  unused waiver: {unused}")
    for result in payload.get("smt", ()):
        if result["status"] == "counterexample":
            lines.append(f"  smt counterexample {result['m1']}/"
                         f"{result['m2']}: {result['detail']}")
        elif verbose:
            lines.append(f"  smt {result['m1']}/{result['m2']}: "
                         f"{result['status']}")
    for result in payload.get("synthesis", ()):
        if verbose or result["formula"] is None:
            shape = result["formula"] or "<no ECL cover>"
            agrees = ("matches spec" if result["matches_spec"]
                      else "differs from spec")
            lines.append(f"  synth {result['m1']}/{result['m2']}: "
                         f"{shape} [{agrees}]")
    return "\n".join(lines)


def run_verification(kinds: Sequence[str], depth: Optional[int] = None,
                     smt: bool = False, synthesize: bool = False,
                     obs=NULL_REGISTRY) -> Dict[str, Any]:
    """Programmatic entry point: the full ``repro-verify/v1`` document."""
    registry = verifiable_objects()
    unknown = [k for k in kinds if k not in registry]
    if unknown:
        _fail(f"unknown kind(s) {sorted(unknown)}; "
              f"available: {sorted(registry)}", EXIT_USAGE)
    selected = list(kinds) if kinds else sorted(registry)
    payloads = [_verify_kind(registry[kind], depth, smt, synthesize, obs=obs)
                for kind in selected]
    return {"schema": SCHEMA,
            "verified": all(p["verified"] for p in payloads),
            "depth": depth,
            "kinds": payloads}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify-specs",
        description="Exhaustively verify the bundled commutativity "
                    "specifications against their executable semantics.",
        epilog=_EXIT_CODE_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("kinds", nargs="*", metavar="KIND",
                        help="object kinds to verify (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list verifiable kinds and exit")
    parser.add_argument("--depth", default=None, metavar="N",
                        help="override the bounded-domain reachability "
                             "depth (default: per-kind, typically 3)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write the frozen repro-verify/v1 verdict "
                             "document ('-' for stdout)")
    parser.add_argument("--smt", action="store_true",
                        help="also discharge each pair's soundness "
                             "symbolically via Z3 (skipped as "
                             "'unavailable' without z3-solver)")
    parser.add_argument("--synthesize", action="store_true",
                        help="re-derive each pair's condition from "
                             "labelled samples and compare with the "
                             "shipped formula")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-pair verdict lines, not just "
                             "per-kind summaries")
    parser.add_argument("--stats-json", metavar="PATH",
                        help="write the observability report as JSON")
    args = parser.parse_args(argv)

    registry = verifiable_objects()
    if args.list:
        for kind in sorted(registry):
            entry = registry[kind]
            extras = []
            if entry.smt_supported:
                extras.append("smt")
            if entry.waivers:
                extras.append(f"{len(entry.waivers)} waiver(s)")
            suffix = f"  [{', '.join(extras)}]" if extras else ""
            print(f"{kind}{suffix}")
        return EXIT_CLEAN

    depth: Optional[int] = None
    if args.depth is not None:
        try:
            depth = int(args.depth)
        except ValueError:
            _fail(f"--depth expects a positive integer, got "
                  f"{args.depth!r}", EXIT_USAGE)
        if depth < 1:
            _fail(f"--depth must be >= 1, got {depth}", EXIT_USAGE)

    obs = Registry(sample_interval=1) if args.stats_json else NULL_REGISTRY
    document = run_verification(args.kinds, depth=depth, smt=args.smt,
                                synthesize=args.synthesize, obs=obs)

    for payload in document["kinds"]:
        print(_render_kind(payload, args.verbose))

    if args.json_path:
        if args.json_path == "-":
            write_report(document, sys.stdout)
        else:
            with open(args.json_path, "w", encoding="utf-8") as out:
                write_report(document, out)

    if args.stats_json:
        meta = {"command": "verify-specs",
                "kinds": len(document["kinds"]),
                "depth": depth if depth is not None else "default"}
        report = build_report(obs, meta=meta)
        with open(args.stats_json, "w", encoding="utf-8") as out:
            write_report(report, out)

    return EXIT_CLEAN if document["verified"] else EXIT_FAILURES


if __name__ == "__main__":
    raise SystemExit(main())
