"""Bounded verification universes: every state, every realizable action.

A :class:`BoundedDomain` fixes, for one object kind, the finite universe
the exhaustive checker quantifies over:

* **states** — every state reachable from ``initial_state()`` by at most
  ``depth`` invocations drawn from the invocation domain, deduplicated and
  sorted smallest-first (so the first counterexample the checker reports
  is minimal under the state ordering);
* **actions** — every ``(method, args)`` over the kind's small value
  domain, paired with every return vector *realizable* at some enumerated
  state.  Enumerating returns from actual executions keeps the action set
  consistent: an action like ``size()/99`` that no bounded state realizes
  never enters the universe, exactly as the randomized sampler only ever
  produced executed returns.

The per-kind invocation domains live in :mod:`repro.verify.registry`; this
module is the kind-agnostic machinery.  Everything is deterministic — the
enumeration order is a sorted order, not an iteration accident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..core.events import Action
from ..logic.semantics import ObjectSemantics

__all__ = ["Invocation", "BoundedDomain", "reachable_states",
           "enumerate_actions", "state_size"]

Invocation = Tuple[str, Tuple[Any, ...]]
"""A ``(method, args)`` pair, prior to choosing return values."""


def state_size(state: Any) -> int:
    """A rough "how big is this state" metric for minimality ordering.

    Containers count their elements (recursively, one level is enough for
    the bundled kinds); integers count their magnitude.  Smaller states
    sort first, so counterexamples are reported at the simplest state that
    exhibits them — the initial state whenever possible.
    """
    if isinstance(state, (tuple, frozenset, list)):
        return len(state) + sum(state_size(item) for item in state)
    if isinstance(state, bool):
        return int(state)
    if isinstance(state, int):
        return abs(state)
    return 0


def _sort_key(value: Any) -> Tuple[int, str]:
    return (state_size(value), repr(value))


def reachable_states(semantics: ObjectSemantics,
                     invocations: Sequence[Invocation],
                     depth: int) -> List[Any]:
    """All states within ``depth`` invocations of the initial state.

    Breadth-first closure with deduplication (states are hashable values
    by the :class:`ObjectSemantics` contract); the result is sorted
    smallest-first by :func:`state_size`.
    """
    initial = semantics.initial_state()
    seen = {initial}
    frontier = [initial]
    for _ in range(depth):
        next_frontier = []
        for state in frontier:
            for method, args in invocations:
                new_state, _ = semantics.apply(state, method, args)
                if new_state not in seen:
                    seen.add(new_state)
                    next_frontier.append(new_state)
        if not next_frontier:
            break
        frontier = next_frontier
    return sorted(seen, key=_sort_key)


def enumerate_actions(semantics: ObjectSemantics,
                      invocations: Sequence[Invocation],
                      states: Sequence[Any],
                      obj: Any = "o") -> Dict[str, List[Action]]:
    """Every realizable action per method, sorted deterministically.

    For each invocation, the realizable return vectors are exactly the
    returns produced by executing it at each enumerated state.
    """
    by_method: Dict[str, List[Action]] = {}
    for method, args in invocations:
        returns_seen = set()
        for state in states:
            _, returns = semantics.apply(state, method, args)
            returns_seen.add(returns)
        bucket = by_method.setdefault(method, [])
        for returns in returns_seen:
            bucket.append(Action(obj, method, args, returns))
    for method, actions in by_method.items():
        actions.sort(key=lambda a: (_sort_key(a.args), _sort_key(a.returns)))
    return by_method


@dataclass(frozen=True)
class BoundedDomain:
    """The finite universe one kind's exhaustive verification ranges over."""

    kind: str
    #: the ``(method, args)`` grid the enumeration is built from
    invocations: Tuple[Invocation, ...]
    #: reachability depth used to close the state set
    depth: int
    #: every reachable state, sorted smallest-first
    states: Tuple[Any, ...]
    #: every realizable action, per method, sorted
    actions_by_method: Dict[str, Tuple[Action, ...]] = field(repr=False)

    @property
    def action_count(self) -> int:
        return sum(len(acts) for acts in self.actions_by_method.values())

    def describe(self) -> Dict[str, int]:
        """The bound parameters for verdict reports (frozen JSON schema)."""
        return {"depth": self.depth,
                "states": len(self.states),
                "invocations": len(self.invocations),
                "actions": self.action_count}


def build_domain(kind: str, semantics: ObjectSemantics,
                 invocations: Sequence[Invocation], depth: int,
                 obj: Any = "o") -> BoundedDomain:
    """Close the state set and realize the action universe for one kind."""
    invocations = tuple(invocations)
    states = reachable_states(semantics, invocations, depth)
    by_method = enumerate_actions(semantics, invocations, states, obj=obj)
    return BoundedDomain(
        kind=kind,
        invocations=invocations,
        depth=depth,
        states=tuple(states),
        actions_by_method={m: tuple(a) for m, a in by_method.items()},
    )
