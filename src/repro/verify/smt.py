"""SMT soundness backend: the bounded checker's query, unbounded.

The exhaustive checker proves ``spec says commute ⟹ effects commute``
over a *finite* universe; this module re-states the same implication
symbolically and hands it to Z3, discharging it for **all** states,
arguments and return values of the background theory at once.  Only the
soundness direction is encoded — precision ("some state distinguishes
the orders") is an existential the bounded checker already witnesses
concretely, and a symbolic witness would add nothing.

Per method pair the query is::

    ϕ(a, b) ∧ (  defined(a·b) ∧ defined(b·a) ∧ final(a·b) ≠ final(b·a)
               ∨ defined(a·b) ≠ defined(b·a))            -- partiality!

where ``defined`` conjoins "each action's recorded returns equal what
execution produces" (the partial-effect semantics of Definition 3.1).
``unsat`` means the spec's commute claims are sound over the unbounded
theory; ``sat`` yields a symbolic counterexample model.

Encodings (exact, not abstractions — with one documented exception):

* **counter / register / accumulator** — integer states.  The
  accumulator carries the reachability invariant ``peak ≥ 0 ∧ d ≥ 0``
  (samples are non-negative measurements and the peak starts at 0);
  without it Z3 reports spurious pre-states like ``peak = -5``.
* **set** — ``Array(Elem, Bool)`` membership plus a symbolic cardinality
  tracked by exact deltas.  The cardinality is *decoupled* from the
  array (a spurious state may pair an empty array with ``card = 7``),
  which is harmless: every shipped formula constrains size *changes*
  (via effectiveness returns), never absolute sizes.
* **dictionary** — ``Array(Key, Val)`` with a distinguished ``nil``
  value and a delta-tracked size; covers the extended methods too
  (``putIfAbsent`` arguments carry the ``v ≠ nil`` domain constraint,
  matching the registry's bounded domain).

Queues and logs are **unsupported**: their states are sequences, whose
theory is a different engagement (and the bounded checker covers them).

Z3 is an *optional* dependency: everything degrades to status
``"unavailable"`` when the import fails, and the test-suite skips — no
environment without ``z3-solver`` ever errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.events import NIL
from ..logic.formulas import (And, Atom, Const, FalseF, Formula, Not, Or,
                              Side, TrueF, Var)
from ..logic.spec import CommutativitySpec, MethodSig

__all__ = ["SmtResult", "smt_available", "verify_pair_smt",
           "verify_spec_smt", "SUPPORTED_KINDS"]

#: kinds with an exact symbolic encoding below
SUPPORTED_KINDS = ("counter", "register", "accumulator", "set",
                   "dictionary", "dictionary-ext")


def smt_available() -> bool:
    """Whether the optional ``z3-solver`` package is importable."""
    return _z3() is not None


def _z3():
    try:
        import z3
        return z3
    except ImportError:
        return None


@dataclass
class SmtResult:
    """Outcome of one symbolic soundness query."""

    kind: str
    m1: str
    m2: str
    #: "verified" | "counterexample" | "unsupported" | "unavailable"
    status: str
    detail: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status != "counterexample"

    def to_json(self) -> Dict[str, Any]:
        return {"m1": self.m1, "m2": self.m2, "status": self.status,
                "detail": self.detail}


class _Encoder:
    """Symbolic semantics of one kind: state sorts + method effects."""

    def __init__(self, z3: Any):
        self.z3 = z3

    def fresh_state(self, tag: str) -> Tuple[Any, ...]:
        raise NotImplementedError

    def state_eq(self, s1: Tuple[Any, ...], s2: Tuple[Any, ...]) -> Any:
        parts = [a == b for a, b in zip(s1, s2)]
        return self.z3.And(*parts) if len(parts) > 1 else parts[0]

    def state_invariant(self, state: Tuple[Any, ...]) -> List[Any]:
        return []

    def fresh_value(self, name: str, tag: str) -> Any:
        """A symbolic argument/return slot (default sort: Int)."""
        return self.z3.Int(f"{name}_{tag}")

    def value_constraints(self, method: str, env: Dict[str, Any]) -> List[Any]:
        """Domain constraints on a method's symbolic arguments."""
        return []

    def nil(self) -> Any:
        raise _Unsupported("this kind's values have no nil")

    def const(self, value: Any) -> Any:
        if value is NIL:
            return self.nil()
        if isinstance(value, bool):
            return self.z3.BoolVal(value)
        if isinstance(value, int):
            return self.z3.IntVal(value)
        raise _Unsupported(f"cannot encode constant {value!r}")

    def apply(self, state: Tuple[Any, ...], method: str,
              env: Dict[str, Any], sig: MethodSig) -> Tuple[Tuple[Any, ...],
                                                            Dict[str, Any]]:
        """Return ``(post_state, {return_name: produced_value})``."""
        raise NotImplementedError


class _Unsupported(Exception):
    """The pair (or a formula construct) falls outside the encoding."""


class _CounterEncoder(_Encoder):
    def fresh_state(self, tag):
        return (self.z3.Int(f"c_{tag}"),)

    def apply(self, state, method, env, sig):
        (c,) = state
        if method == "add":
            return (c + env["d"],), {}
        if method == "read":
            return state, {"v": c}
        raise _Unsupported(f"counter has no method {method!r}")


class _RegisterEncoder(_Encoder):
    def fresh_state(self, tag):
        return (self.z3.Int(f"r_{tag}"),)

    def apply(self, state, method, env, sig):
        (v,) = state
        if method == "write":
            return (env["v"],), {"p": v}
        if method == "read":
            return state, {"v": v}
        raise _Unsupported(f"register has no method {method!r}")


class _AccumulatorEncoder(_Encoder):
    def fresh_state(self, tag):
        return (self.z3.Int(f"total_{tag}"), self.z3.Int(f"peak_{tag}"))

    def state_invariant(self, state):
        total, peak = state
        return [peak >= 0]   # reachable peaks are maxima of d ≥ 0 samples

    def value_constraints(self, method, env):
        if method == "sample":
            return [env["d"] >= 0]   # non-negative measurements
        return []

    def apply(self, state, method, env, sig):
        total, peak = state
        z3 = self.z3
        if method == "sample":
            d = env["d"]
            return (total + d, z3.If(peak >= d, peak, d)), {}
        if method == "total":
            return state, {"t": total}
        if method == "peak":
            return state, {"m": peak}
        raise _Unsupported(f"accumulator has no method {method!r}")


class _SetEncoder(_Encoder):
    def __init__(self, z3):
        super().__init__(z3)
        self.elem = z3.DeclareSort("Elem")

    def fresh_state(self, tag):
        members = self.z3.Array(f"members_{tag}", self.elem,
                                self.z3.BoolSort())
        card = self.z3.Int(f"card_{tag}")
        return (members, card)

    def state_invariant(self, state):
        return [state[1] >= 0]

    def fresh_value(self, name, tag):
        if name in ("x",):                       # elements
            return self.z3.Const(f"{name}_{tag}", self.elem)
        return self.z3.Int(f"{name}_{tag}")      # b / r flags and sizes

    def apply(self, state, method, env, sig):
        members, card = state
        z3 = self.z3
        if method in ("add", "remove"):
            x = env["x"]
            present = z3.Select(members, x)
            if method == "add":
                changed = z3.Not(present)
                post = z3.Store(members, x, z3.BoolVal(True))
                delta = z3.If(changed, 1, 0)
            else:
                changed = present
                post = z3.Store(members, x, z3.BoolVal(False))
                delta = z3.If(changed, -1, 0)
            return (post, card + delta), {"b": z3.If(changed, 1, 0)}
        if method == "contains":
            return state, {"b": z3.If(z3.Select(members, env["x"]), 1, 0)}
        if method == "size":
            return state, {"r": card}
        raise _Unsupported(f"set has no method {method!r}")


class _DictionaryEncoder(_Encoder):
    """Covers both the Fig. 6 spec and the extended methods."""

    def __init__(self, z3):
        super().__init__(z3)
        self.key = z3.DeclareSort("Key")
        self.val = z3.DeclareSort("Val")
        self._nil = z3.Const("nilv", self.val)

    def nil(self):
        return self._nil

    def fresh_state(self, tag):
        table = self.z3.Array(f"table_{tag}", self.key, self.val)
        size = self.z3.Int(f"size_{tag}")
        return (table, size)

    def state_invariant(self, state):
        return [state[1] >= 0]

    def fresh_value(self, name, tag):
        if name == "k":
            return self.z3.Const(f"k_{tag}", self.key)
        if name in ("v", "p"):
            return self.z3.Const(f"{name}_{tag}", self.val)
        if name == "c":                          # contains flag
            return self.z3.Bool(f"c_{tag}")
        return self.z3.Int(f"{name}_{tag}")      # size result r

    def value_constraints(self, method, env):
        if method == "putIfAbsent":
            return [env["v"] != self._nil]   # CHM prohibits null values
        return []

    def _put(self, state, key, value):
        table, size = state
        z3 = self.z3
        prev = z3.Select(table, key)
        post = z3.Store(table, key, value)
        delta = z3.If(z3.And(value != self._nil, prev == self._nil), 1,
                      z3.If(z3.And(value == self._nil, prev != self._nil),
                            -1, 0))
        return (post, size + delta), prev

    def apply(self, state, method, env, sig):
        table, size = state
        z3 = self.z3
        if method == "put":
            post, prev = self._put(state, env["k"], env["v"])
            return post, {"p": prev}
        if method == "remove":
            post, prev = self._put(state, env["k"], self._nil)
            return post, {"p": prev}
        if method == "get":
            return state, {"v": z3.Select(table, env["k"])}
        if method == "contains":
            return state, {"c": z3.Select(table, env["k"]) != self._nil}
        if method == "size":
            return state, {"r": size}
        if method == "putIfAbsent":
            prev = z3.Select(table, env["k"])
            post_table = z3.If(prev == self._nil,
                               z3.Store(table, env["k"], env["v"]), table)
            post_size = size + z3.If(z3.And(prev == self._nil,
                                            env["v"] != self._nil), 1, 0)
            return (post_table, post_size), {"p": prev}
        raise _Unsupported(f"dictionary has no method {method!r}")


_ENCODERS: Dict[str, Callable[[Any], _Encoder]] = {
    "counter": _CounterEncoder,
    "register": _RegisterEncoder,
    "accumulator": _AccumulatorEncoder,
    "set": _SetEncoder,
    "dictionary": _DictionaryEncoder,
    "dictionary-ext": _DictionaryEncoder,
}


def _encode_formula(z3, encoder: _Encoder, formula: Formula,
                    env1: Dict[str, Any], env2: Dict[str, Any]) -> Any:
    """Translate a spec formula to a Z3 constraint over the symbol envs."""
    def term(t):
        if isinstance(t, Const):
            return encoder.const(t.value)
        env = env1 if t.side is Side.FIRST else env2
        return env[t.name]

    if isinstance(formula, TrueF):
        return z3.BoolVal(True)
    if isinstance(formula, FalseF):
        return z3.BoolVal(False)
    if isinstance(formula, Atom):
        args = [term(t) for t in formula.args]
        if formula.pred == "eq":
            return args[0] == args[1]
        if formula.pred == "ne":
            return args[0] != args[1]
        if formula.pred in ("lt", "le", "gt", "ge"):
            if not all(a.sort() == z3.IntSort() for a in args):
                raise _Unsupported(
                    f"order atom {formula} on a non-integer sort")
            op = {"lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
                  "gt": lambda a, b: a > b,
                  "ge": lambda a, b: a >= b}[formula.pred]
            # the library's nil-guarded order semantics agrees with plain
            # integer comparison: integer slots never hold nil
            return op(args[0], args[1])
        raise _Unsupported(f"predicate {formula.pred!r} has no encoding")
    if isinstance(formula, Not):
        return z3.Not(_encode_formula(z3, encoder, formula.operand,
                                      env1, env2))
    if isinstance(formula, And):
        return z3.And(_encode_formula(z3, encoder, formula.left, env1, env2),
                      _encode_formula(z3, encoder, formula.right, env1, env2))
    if isinstance(formula, Or):
        return z3.Or(_encode_formula(z3, encoder, formula.left, env1, env2),
                     _encode_formula(z3, encoder, formula.right, env1, env2))
    raise _Unsupported(f"cannot encode {formula!r}")


def _run(z3, encoder: _Encoder, spec: CommutativitySpec, kind: str,
         m1: str, m2: str, timeout_ms: int) -> SmtResult:
    sig1, sig2 = spec.signature(m1), spec.signature(m2)
    env1 = {n: encoder.fresh_value(n, "a") for n in sig1.value_names}
    env2 = {n: encoder.fresh_value(n, "b") for n in sig2.value_names}

    def compose(state, first, second):
        """(final_state, definedness) for ``first`` then ``second``."""
        (mfirst, sigf, envf), (msecond, sigs, envs) = first, second
        mid, produced_f = encoder.apply(state, mfirst, envf, sigf)
        final, produced_s = encoder.apply(mid, msecond, envs, sigs)
        defined = [envf[name] == value for name, value in produced_f.items()]
        defined += [envs[name] == value for name, value in produced_s.items()]
        return final, (z3.And(*defined) if len(defined) > 1
                       else defined[0] if defined else z3.BoolVal(True))

    state = encoder.fresh_state("s")
    a = (m1, sig1, env1)
    b = (m2, sig2, env2)
    final_ab, def_ab = compose(state, a, b)
    final_ba, def_ba = compose(state, b, a)

    phi = _encode_formula(z3, encoder, spec.formula_for(m1, m2), env1, env2)
    disagree = z3.Or(
        z3.And(def_ab, def_ba, z3.Not(encoder.state_eq(final_ab, final_ba))),
        z3.And(def_ab, z3.Not(def_ba)),
        z3.And(def_ba, z3.Not(def_ab)))

    solver = z3.Solver()
    solver.set("timeout", timeout_ms)
    for constraint in encoder.state_invariant(state):
        solver.add(constraint)
    for constraint in encoder.value_constraints(m1, env1):
        solver.add(constraint)
    for constraint in encoder.value_constraints(m2, env2):
        solver.add(constraint)
    solver.add(phi)
    solver.add(disagree)

    outcome = solver.check()
    if outcome == z3.unsat:
        return SmtResult(kind, m1, m2, "verified")
    if outcome == z3.sat:
        model = solver.model()
        assigns = sorted(f"{d.name()} = {model[d]}" for d in model.decls())
        return SmtResult(kind, m1, m2, "counterexample",
                         detail="; ".join(assigns))
    return SmtResult(kind, m1, m2, "unsupported",
                     detail=f"solver returned {outcome}")


def verify_pair_smt(kind: str, spec: CommutativitySpec, m1: str, m2: str,
                    timeout_ms: int = 10_000) -> SmtResult:
    """Symbolically verify one pair's soundness; degrades gracefully."""
    z3 = _z3()
    if z3 is None:
        return SmtResult(kind, m1, m2, "unavailable",
                         detail="z3-solver is not installed")
    factory = _ENCODERS.get(kind)
    if factory is None:
        return SmtResult(kind, m1, m2, "unsupported",
                         detail=f"no symbolic encoding for kind {kind!r}")
    try:
        return _run(z3, factory(z3), spec, kind, m1, m2, timeout_ms)
    except _Unsupported as exc:
        return SmtResult(kind, m1, m2, "unsupported", detail=str(exc))


def verify_spec_smt(kind: str, spec: CommutativitySpec,
                    timeout_ms: int = 10_000) -> List[SmtResult]:
    """Run the symbolic soundness query for every pair of a spec."""
    results = []
    for m1, m2, _ in sorted(spec.pairs(), key=lambda p: (p[0], p[1])):
        results.append(verify_pair_smt(kind, spec, m1, m2,
                                       timeout_ms=timeout_ms))
    return results
