"""Condition synthesis: re-derive ECL commutativity conditions from data.

Given only the *executable semantics* — no formula — this module proposes
a candidate ``ϕ_{m1,m2}`` for a method pair and validates it through the
exhaustive bounded checker.  It is the constructive companion to
verification: the checker says a shipped formula is right, synthesis shows
the formula is *recoverable* from the object's behaviour alone, which is
the paper's "specifications could in principle be inferred" remark made
executable.

The algorithm is classic predicate-cover synthesis:

1. **Label.**  Every realizable action pair over the bounded domain is
   labelled by ground truth: *positive* if the composed effects agree at
   every enumerated state, *negative* if some state distinguishes the two
   orders.  Unrealizable pairs (neither order defined anywhere) carry no
   information and are dropped.
2. **Atom pool.**  Candidate atoms are drawn from the ECL fragment only:
   cross-side disequalities ``u1 ≠ w2`` (LS atoms, Definition 6.1) and
   single-side equalities — variable/variable within one invocation and
   variable/constant against the values observed in the domain.
3. **Cover.**  Conjunctions of at most ``max_literals`` atoms that are
   false on *every* negative are admissible; a greedy set-cover picks
   admissible conjunctions until every positive is covered, and their
   disjunction is the candidate DNF.  To stay inside ECL, at most one
   chosen conjunction may contain an LS atom (``X ∨ B`` — a disjunction
   needs an LB disjunct), and disjuncts are ordered LS-first so the
   nesting matches the grammar.
4. **Validate.**  The candidate is installed in a fresh one-pair spec and
   run back through :func:`~repro.verify.checker.verify_pair`; the result
   records the verdict and whether the candidate agrees with the shipped
   formula on every realizable pair (shipped specs are free to classify
   unrealizable pairs arbitrarily, so those are excluded from the
   equivalence check — see the set spec's add/add discussion).

Everything is deterministic: samples, atoms and candidates are generated
in sorted orders, and ties in the greedy cover break by literal count and
then lexicographically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.events import NIL, Action
from ..logic.formulas import (FALSE, TRUE, Atom, Formula, Side, Var,
                              evaluate, eq, ne, swap_sides, var1, var2)
from ..logic.fragments import is_ecl, is_ls_atom
from ..logic.semantics import ObjectSemantics
from ..logic.spec import CommutativitySpec, MethodSig
from ..obs import NULL_REGISTRY
from .checker import PairVerdict, verify_pair
from .domains import BoundedDomain, state_size

__all__ = ["SynthesisResult", "synthesize_condition"]

#: cap on constants considered per variable — keeps the pool small and the
#: candidates human-shaped (observed values are few for the bundled kinds)
_MAX_CONSTS_PER_VAR = 4


@dataclass(frozen=True)
class _Sample:
    """One labelled, realizable action pair."""

    a: Action
    b: Action
    commutes: bool


@dataclass
class SynthesisResult:
    """Outcome of synthesizing ``ϕ_{m1,m2}`` from samples."""

    kind: str
    m1: str
    m2: str
    #: the synthesized condition, or ``None`` when the pool cannot cover
    formula: Optional[Formula]
    positives: int
    negatives: int
    unrealizable: int
    atoms_considered: int
    #: disjuncts of the DNF, pretty-printed (empty for true/false/None)
    disjuncts: List[str] = field(default_factory=list)
    #: whether the candidate agrees with the shipped formula on every
    #: realizable sample (unrealizable pairs are exempt, as in the checker)
    matches_spec: Optional[bool] = None
    #: checker verdict for the candidate (when validation ran)
    verdict: Optional[PairVerdict] = None

    @property
    def synthesized(self) -> bool:
        return self.formula is not None

    @property
    def ecl(self) -> bool:
        return self.formula is not None and is_ecl(self.formula)

    def to_json(self) -> Dict[str, Any]:
        return {"m1": self.m1, "m2": self.m2,
                "formula": str(self.formula) if self.formula else None,
                "ecl": self.ecl,
                "samples": {"positives": self.positives,
                            "negatives": self.negatives,
                            "unrealizable": self.unrealizable},
                "atoms_considered": self.atoms_considered,
                "matches_spec": self.matches_spec,
                "validated": (self.verdict.ok if self.verdict is not None
                              else None)}


def _compose(semantics: ObjectSemantics, state: Any,
             first: Action, second: Action) -> Optional[Any]:
    from ..logic.semantics import apply_action
    mid = apply_action(semantics, state, first)
    if mid is None:
        return None
    return apply_action(semantics, mid, second)


def _label_samples(semantics: ObjectSemantics, domain: BoundedDomain,
                   m1: str, m2: str) -> Tuple[List[_Sample], int]:
    """Ground-truth labels for every ordered action pair of the methods.

    Self-pairs are enumerated as the full ordered product, so the sample
    set is symmetric — the cover then has to explain both orientations,
    which is what makes the synthesized self-pair formulas symmetric
    predicates in practice.
    """
    samples: List[_Sample] = []
    unrealizable = 0
    for a in domain.actions_by_method[m1]:
        for b in domain.actions_by_method[m2]:
            agree = True
            realizable = False
            for state in domain.states:
                ab = _compose(semantics, state, a, b)
                ba = _compose(semantics, state, b, a)
                if ab is not None or ba is not None:
                    realizable = True
                if ab != ba:
                    agree = False
                    break
            if not realizable:
                unrealizable += 1
                continue
            samples.append(_Sample(a, b, agree))
    return samples, unrealizable


def _holds(formula: Formula, sig1: MethodSig, sig2: MethodSig,
           sample: _Sample) -> bool:
    env1 = sig1.bind(sample.a)
    env2 = sig2.bind(sample.b)

    def lookup(var: Var) -> Any:
        env = env1 if var.side is Side.FIRST else env2
        return env[var.name]

    return evaluate(formula, lookup)


def _const_key(value: Any) -> Tuple[int, str]:
    return (state_size(value), repr(value))


def _atom_pool(sig1: MethodSig, sig2: MethodSig,
               samples: Sequence[_Sample]) -> List[Atom]:
    """ECL-only candidate atoms, deterministically ordered.

    Constants per variable are the values that variable actually takes
    across the samples (plus ``nil``, which the bundled formulas compare
    against pervasively), smallest-first, capped at
    :data:`_MAX_CONSTS_PER_VAR`.
    """
    observed: Dict[Var, set] = {}
    for sample in samples:
        for sig, maker, action in ((sig1, var1, sample.a),
                                   (sig2, var2, sample.b)):
            env = sig.bind(action)
            for name, value in env.items():
                observed.setdefault(maker(name), set()).add(value)

    pool: List[Atom] = []
    for u in sig1.value_names:               # LS: cross-side disequalities
        for w in sig2.value_names:
            pool.append(ne(var1(u), var2(w)))
    for sig, maker in ((sig1, var1), (sig2, var2)):
        for u, w in itertools.combinations(sig.value_names, 2):
            pool.append(eq(maker(u), maker(w)))
        for name in sig.value_names:         # LB: var = observed constant
            var = maker(name)
            consts = sorted(observed.get(var, ()) | {NIL}, key=_const_key)
            for value in consts[:_MAX_CONSTS_PER_VAR]:
                pool.append(eq(var, value))
    return pool


def _conj(parts: Sequence[Atom]) -> Formula:
    """Left-to-right conjunction with LS atoms first (grammar-friendly)."""
    ordered = sorted(parts, key=lambda a: (not is_ls_atom(a), str(a)))
    out: Formula = ordered[0]
    for atom in ordered[1:]:
        out = out & atom
    return out


def synthesize_condition(spec: CommutativitySpec,
                         semantics: ObjectSemantics,
                         domain: BoundedDomain, m1: str, m2: str,
                         max_literals: int = 2,
                         validate: bool = True,
                         obs=NULL_REGISTRY) -> SynthesisResult:
    """Propose and validate an ECL condition for one method pair.

    The shipped formula of ``spec`` is used only for the final
    ``matches_spec`` comparison — labelling is purely semantic.
    """
    sig1, sig2 = spec.signature(m1), spec.signature(m2)
    samples, unrealizable = _label_samples(semantics, domain, m1, m2)
    positives = [s for s in samples if s.commutes]
    negatives = [s for s in samples if not s.commutes]
    obs.add("synth_pairs")
    obs.add("synth_samples", len(samples))

    result = SynthesisResult(
        kind=domain.kind, m1=m1, m2=m2, formula=None,
        positives=len(positives), negatives=len(negatives),
        unrealizable=unrealizable, atoms_considered=0)

    if not positives:
        result.formula = FALSE
    elif not negatives:
        result.formula = TRUE
    else:
        pool = _atom_pool(sig1, sig2, samples)
        result.atoms_considered = len(pool)
        truth = {atom: [_holds(atom, sig1, sig2, s) for s in samples]
                 for atom in pool}

        pos_idx = [i for i, s in enumerate(samples) if s.commutes]
        neg_idx = [i for i, s in enumerate(samples) if not s.commutes]

        candidates = []   # (literals, covered positive indices)
        for size in range(1, max_literals + 1):
            for literals in itertools.combinations(pool, size):
                rows = [truth[a] for a in literals]
                if any(all(row[i] for row in rows) for i in neg_idx):
                    continue   # true on a negative: inadmissible
                covered = frozenset(
                    i for i in pos_idx if all(row[i] for row in rows))
                if covered:
                    candidates.append((literals, covered))

        uncovered = set(pos_idx)
        chosen: List[Tuple[Atom, ...]] = []
        ls_used = False
        while uncovered:
            best = None
            for literals, covered in candidates:
                has_ls = any(is_ls_atom(a) for a in literals)
                if has_ls and ls_used:
                    continue   # a second LS disjunct would leave ECL
                gain = len(covered & uncovered)
                if gain == 0:
                    continue
                key = (-gain, len(literals),
                       str(_conj(literals)))
                if best is None or key < best[0]:
                    best = (key, literals, covered, has_ls)
            if best is None:
                break   # pool cannot express the condition
            _, literals, covered, has_ls = best
            chosen.append(literals)
            uncovered -= covered
            ls_used = ls_used or has_ls

        if not uncovered:
            # LS-bearing disjunct first, then LB disjuncts (X ∨ B nesting)
            parts = sorted(
                (_conj(lits) for lits in chosen),
                key=lambda f: (is_lb_disjunct(f), str(f)))
            formula: Formula = parts[0]
            for part in parts[1:]:
                formula = formula | part
            if m1 == m2:
                # the sample set is symmetric, so the swapped formula is
                # admissible too; keep the plain one when it already is a
                # symmetric predicate on the samples (always, in practice)
                swapped = swap_sides(formula)
                if any(_holds(formula, sig1, sig2, s)
                       != _holds(swapped, sig1, sig2, s)
                       for s in samples):
                    formula = formula | swapped
            result.formula = formula
            result.disjuncts = [str(_conj(lits)) for lits in chosen]

    if result.formula is not None:
        result.matches_spec = all(
            spec.commutes(s.a, s.b)
            == _holds(result.formula, sig1, sig2, s)
            for s in samples)
        if validate:
            candidate = CommutativitySpec(spec.kind)
            for name in sorted(spec.methods):
                sig = spec.signature(name)
                candidate.method(name, sig.params, sig.returns)
            candidate.pair(m1, m2, result.formula)
            result.verdict = verify_pair(
                candidate, semantics, domain, m1, m2,
                waiver_reason=None, obs=obs)
        obs.add("synth_conditions")
    return result


def is_lb_disjunct(formula: Formula) -> bool:
    """Whether a disjunct is pure LB (no LS atom) — these sort last."""
    from ..logic.formulas import atoms_of
    return not any(is_ls_atom(a) for a in atoms_of(formula))
