"""The exhaustive bounded model checker for commutativity specs.

For one method pair ``(m1, m2)`` the checker enumerates *every* realizable
action pair over a :class:`~repro.verify.domains.BoundedDomain` and, per
pair, every enumerated state, and decides both directions of
``spec says commute ⟺ ⟦a⟧∘⟦b⟧ = ⟦b⟧∘⟦a⟧``:

* **Soundness (Definition 4.2).**  Wherever the spec asserts
  commutativity, the composed partial effects must agree at every state.
  A violation is fatal and reported as a minimal
  :class:`Counterexample` — action pairs are scanned smallest-first and
  states smallest-first, so the first failure names the simplest witness.

* **Precision.**  Wherever the spec asserts a conflict, some state must
  actually distinguish the two orders.  Two escape hatches keep this
  honest rather than vacuous:

  - a conflict claim about a pair whose compositions are *undefined at
    every state in either order* (e.g. two effective ``add(x)/true`` on a
    set — the second add cannot observe ``true``) is **unrealizable**:
    the paper allows declaring such pairs either way, and several specs
    deliberately declare them conflicting;
  - a claim that is realizable but indistinguishable may carry an
    explicit :class:`~repro.verify.registry.Waiver` naming the reason —
    always that the exact condition falls outside ECL (Definition 6.3),
    e.g. the cross-side guard ``x1 = x2`` under which two queue ``enq``
    invocations do commute.  Waivers are counted, surfaced in reports,
    and tested to be *necessary* (an unused waiver fails the suite).

The checker is pure and deterministic; ``obs`` counters make its work
visible in ``--stats-json`` reports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import SpecificationError
from ..core.events import Action
from ..logic.semantics import ObjectSemantics, apply_action
from ..logic.spec import CommutativitySpec
from ..obs import NULL_REGISTRY
from .domains import BoundedDomain, state_size

__all__ = ["Counterexample", "PairVerdict", "SpecVerdict",
           "verify_pair", "verify_spec"]


@dataclass(frozen=True)
class Counterexample:
    """A witness that one verification direction fails.

    ``direction`` is ``"soundness"`` (spec claims commute, effects differ
    at ``state``) or ``"precision"`` (spec claims conflict, but the two
    orders agree at every bounded state; ``state`` is then the smallest
    state where the pair is realizable).
    """

    kind: str
    direction: str
    state: Any
    a: Action
    b: Action
    formula: str

    def __str__(self) -> str:
        if self.direction == "soundness":
            return (f"{self.kind}: ϕ[{self.a.method}, {self.b.method}] = "
                    f"{self.formula} claims {self.a} and {self.b} commute, "
                    f"but at state {self.state!r} the composed effects "
                    f"differ")
        return (f"{self.kind}: ϕ[{self.a.method}, {self.b.method}] = "
                f"{self.formula} claims {self.a} and {self.b} conflict, "
                f"but their effects agree at every bounded state "
                f"(realizable at state {self.state!r})")

    def to_json(self) -> Dict[str, Any]:
        return {"direction": self.direction,
                "state": repr(self.state),
                "a": str(self.a),
                "b": str(self.b),
                "formula": self.formula,
                "message": str(self)}


@dataclass
class PairVerdict:
    """Exhaustive verification outcome for one method pair."""

    kind: str
    m1: str
    m2: str
    formula: str
    action_pairs: int = 0
    commute_claims: int = 0
    conflict_claims: int = 0
    #: conflict claims distinguished by at least one state
    witnessed: int = 0
    #: conflict claims with no state where either order is defined
    unrealizable: int = 0
    #: realizable-but-indistinguishable conflict claims forgiven by a waiver
    waived: int = 0
    waiver_reason: Optional[str] = None
    counterexample: Optional[Counterexample] = None

    @property
    def sound(self) -> bool:
        return (self.counterexample is None
                or self.counterexample.direction != "soundness")

    @property
    def precise(self) -> bool:
        """Every conflict claim is witnessed, unrealizable, or waived."""
        return (self.counterexample is None
                or self.counterexample.direction != "precision")

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def to_json(self) -> Dict[str, Any]:
        soundness = {"status": "verified" if self.sound else "counterexample",
                     "commute_claims": self.commute_claims}
        if self.waived:
            precision_status = "waived"
        elif self.precise:
            precision_status = "verified"
        else:
            precision_status = "counterexample"
        precision = {"status": precision_status,
                     "conflict_claims": self.conflict_claims,
                     "witnessed": self.witnessed,
                     "unrealizable": self.unrealizable,
                     "waived": self.waived}
        if self.waiver_reason is not None:
            precision["waiver_reason"] = self.waiver_reason
        return {"m1": self.m1, "m2": self.m2, "formula": self.formula,
                "action_pairs": self.action_pairs,
                "soundness": soundness, "precision": precision,
                "counterexample": (self.counterexample.to_json()
                                   if self.counterexample else None)}


@dataclass
class SpecVerdict:
    """Verification outcome for a whole specification."""

    kind: str
    bound: Dict[str, int]
    pairs: List[PairVerdict] = field(default_factory=list)
    #: waivers supplied but never exercised — each one fails the suite
    unused_waivers: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(pair.ok for pair in self.pairs) and not self.unused_waivers

    @property
    def counterexamples(self) -> List[Counterexample]:
        return [p.counterexample for p in self.pairs if p.counterexample]

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "verified": self.ok,
                "bound": dict(self.bound),
                "pairs": [p.to_json() for p in self.pairs],
                "unused_waivers": list(self.unused_waivers)}


def _compose(semantics: ObjectSemantics, state: Any,
             first: Action, second: Action) -> Optional[Any]:
    mid = apply_action(semantics, state, first)
    if mid is None:
        return None
    return apply_action(semantics, mid, second)


def _action_key(action: Action) -> Tuple[int, str]:
    return (state_size(action.args) + state_size(action.returns), str(action))


def verify_pair(spec: CommutativitySpec, semantics: ObjectSemantics,
                domain: BoundedDomain, m1: str, m2: str,
                waiver_reason: Optional[str] = None,
                obs=NULL_REGISTRY) -> PairVerdict:
    """Exhaustively verify one method pair against the semantics.

    Scans every realizable action pair (unordered — the spec is
    orientation-insensitive by construction) and every bounded state.
    Stops at the first counterexample for the pair; other pairs of the
    spec are unaffected (``verify_spec`` reports them all).
    """
    try:
        actions1 = domain.actions_by_method[m1]
        actions2 = domain.actions_by_method[m2]
    except KeyError as exc:
        raise SpecificationError(
            f"{domain.kind}: bounded domain has no invocations for method "
            f"{exc.args[0]!r}; cannot verify pair ({m1}, {m2})") from None
    formula = str(spec.formula_for(m1, m2))
    verdict = PairVerdict(kind=domain.kind, m1=m1, m2=m2, formula=formula)

    if m1 == m2:
        candidates = itertools.combinations_with_replacement(
            sorted(actions1, key=_action_key), 2)
    else:
        candidates = itertools.product(sorted(actions1, key=_action_key),
                                       sorted(actions2, key=_action_key))

    states = domain.states
    for a, b in candidates:
        verdict.action_pairs += 1
        claimed = spec.commutes(a, b)
        if claimed:
            verdict.commute_claims += 1
            for state in states:
                if _compose(semantics, state, b, a) != \
                        _compose(semantics, state, a, b):
                    verdict.counterexample = Counterexample(
                        kind=domain.kind, direction="soundness",
                        state=state, a=a, b=b, formula=formula)
                    obs.add("verify_counterexamples")
                    return verdict
        else:
            verdict.conflict_claims += 1
            first_defined: Optional[Any] = None
            distinguished = False
            for state in states:
                ab = _compose(semantics, state, a, b)
                ba = _compose(semantics, state, b, a)
                if first_defined is None and (ab is not None
                                              or ba is not None):
                    first_defined = state
                if ab != ba:
                    distinguished = True
                    break
            if distinguished:
                verdict.witnessed += 1
            elif first_defined is None:
                verdict.unrealizable += 1
            elif waiver_reason is not None:
                verdict.waived += 1
                verdict.waiver_reason = waiver_reason
            else:
                verdict.counterexample = Counterexample(
                    kind=domain.kind, direction="precision",
                    state=first_defined, a=a, b=b, formula=formula)
                obs.add("verify_counterexamples")
                return verdict
    obs.add("verify_action_pairs", verdict.action_pairs)
    return verdict


def verify_spec(spec: CommutativitySpec, semantics: ObjectSemantics,
                domain: BoundedDomain,
                waivers: Optional[Dict[frozenset, str]] = None,
                obs=NULL_REGISTRY) -> SpecVerdict:
    """Exhaustively verify every method pair of a specification.

    ``waivers`` maps ``frozenset({m1, m2})`` to a reason string; a waiver
    that forgives nothing is reported in ``unused_waivers`` (and fails
    :attr:`SpecVerdict.ok`) so stale waivers cannot linger after a spec
    becomes precise.
    """
    waivers = dict(waivers or {})
    verdict = SpecVerdict(kind=domain.kind, bound=domain.describe())
    exercised = set()
    obs.add("verify_specs")
    obs.add("verify_states", len(domain.states))
    for m1, m2, _ in sorted(spec.pairs(), key=lambda p: (p[0], p[1])):
        key = frozenset({m1, m2})
        pair = verify_pair(spec, semantics, domain, m1, m2,
                           waiver_reason=waivers.get(key), obs=obs)
        obs.add("verify_method_pairs")
        if pair.waived:
            exercised.add(key)
        verdict.pairs.append(pair)
    for key, reason in sorted(waivers.items(),
                              key=lambda kv: sorted(kv[0])):
        if key not in exercised:
            verdict.unused_waivers.append(
                f"{'/'.join(sorted(key))}: {reason}")
            obs.add("verify_unused_waivers")
    if verdict.ok:
        obs.add("verify_specs_ok")
    return verdict
