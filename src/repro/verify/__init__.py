"""Spec verification: prove the shipped commutativity specs correct.

The detector's verdicts are exactly as trustworthy as the hand-written
ECL specifications in :mod:`repro.specs` — the paper *assumes* they are
sound (Definition 4.2) and merely allows imprecision.  This package stops
assuming:

* :mod:`repro.verify.domains` enumerates small bounded universes (every
  reachable state and every realizable action) per object kind;
* :mod:`repro.verify.checker` exhaustively checks ``spec says commute ⟺
  effects commute`` over those universes, reporting minimal
  counterexamples for the soundness direction and realizability-aware
  precision verdicts (with explicit, audited waivers where ECL provably
  cannot express the exact condition);
* :mod:`repro.verify.smt` re-states the soundness query symbolically for
  unbounded domains via Z3, when available;
* :mod:`repro.verify.synthesis` goes the other way: it proposes ECL
  conditions for a method pair from labelled commute/conflict samples and
  validates them through the same checker;
* :mod:`repro.verify.cli` is the ``repro-verify-specs`` command with a
  frozen JSON verdict schema.

Everything is deterministic: no randomness, no wall-clock — verdict
reports are golden-file stable.
"""

from .checker import (Counterexample, PairVerdict, SpecVerdict, verify_pair,
                      verify_spec)
from .domains import BoundedDomain, enumerate_actions
from .registry import (VerifiedObject, Waiver, verifiable_objects)
from .synthesis import SynthesisResult, synthesize_condition

__all__ = [
    "BoundedDomain", "enumerate_actions",
    "Counterexample", "PairVerdict", "SpecVerdict",
    "verify_pair", "verify_spec",
    "VerifiedObject", "Waiver", "verifiable_objects",
    "SynthesisResult", "synthesize_condition",
]
