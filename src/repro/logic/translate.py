"""ECL → access point representation (Section 6.2).

The translation turns a logical specification ``Φ`` into ``⟨Xo, ηo, Co⟩``:

1. **Normalize** the LB atoms of ``Φ`` into ``B(Φ)`` (sides erased), and
   restrict per method: ``B(Φ, m)`` are the atoms relevant to ``m``.
2. **β vectors**: every action of ``m`` induces ``β : B(Φ, m) → bool`` by
   evaluating each atom on the action's arguments and returns.
3. **Access points**: an action ``a = o.m(~u)/~v`` with values
   ``w1..wn = ~u~v`` touches ``o.m:β:ds`` plus ``o.m:β:i:wi`` for each i.
4. **Conflicts**: for every pair ``ϕ_{m1,m2} ∈ Φ`` and β vectors β1, β2,
   substitute to get ``ϕ[β1;β2]`` — an LS formula (Lemma 6.4) — and set

   * ``(o.m1:β1:ds, o.m2:β2:ds) ∈ R``   iff ``ϕ[β1;β2] ≡ false``;
   * ``(o.m1:β1:i:u, o.m2:β2:j:u) ∈ R`` iff ``ϕ[β1;β2] ≢ false`` and it
     contains a conjunct ``xi ≠ yj``.

We factor points into finite *schemas* ``(method, β, slot)`` plus a runtime
value (see :mod:`repro.core.access_points`), so the infinite ``Xo`` has a
finite table and ``Co(pt)`` is enumerable — each schema conflicts with a
bounded number of schemas, which is Theorem 6.6.

:func:`translate` optionally applies the Appendix A.3 optimizations
(:mod:`repro.logic.optimize`) before building the final representation;
``optimize=False`` yields the raw translation (used by the ablation bench).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional, Set,
                    Tuple, Union)

from ..core.access_points import SchemaRepresentation
from ..core.errors import TranslationError
from ..core.events import Action
from .formulas import Formula, Var, evaluate, normalize_sides
from .fragments import lb_atoms, require_ecl
from .simplify import substitute_beta, to_ls
from .spec import CommutativitySpec, MethodSig

__all__ = ["Slot", "DS", "RawSchema", "TranslationResult",
           "build_raw_translation", "build_representation",
           "TranslatedRepresentation", "translate"]

DS = "ds"
Slot = Union[str, int]
"""``"ds"`` for the invocation-witness point, or a 0-based value index."""

AtomKey = Formula          # a normalized LB atom
Beta = FrozenSet[Tuple[AtomKey, bool]]


@dataclass(frozen=True)
class RawSchema:
    """A translated access-point schema ``o.m:β:slot``.

    Concrete points instantiate a schema on an object, with the witnessed
    value ``wi`` for slot schemas (``slot`` is the index ``i``) and no value
    for ``ds`` schemas.
    """

    method: str
    slot: Slot
    beta: Beta

    @property
    def carries_value(self) -> bool:
        return self.slot != DS

    def __str__(self) -> str:
        beta = ",".join(f"{'' if val else '¬'}[{atom}]"
                        for atom, val in sorted(
                            self.beta, key=lambda kv: str(kv[0])))
        slot = self.slot if self.slot == DS else f"w{self.slot}"
        return f"{self.method}:β{{{beta}}}:{slot}"


@dataclass
class TranslationResult:
    """The mutable intermediate form the optimizer rewrites.

    ``canon`` maps every originally generated schema to its current
    representative (or ``None`` once deleted by cleanup); ``conflicts`` is
    kept symmetric over current representatives only.
    """

    spec: CommutativitySpec
    atoms_by_method: Dict[str, Tuple[AtomKey, ...]]
    schemas: Set[RawSchema] = field(default_factory=set)
    conflicts: Dict[RawSchema, Set[RawSchema]] = field(default_factory=dict)
    canon: Dict[RawSchema, Optional[RawSchema]] = field(default_factory=dict)

    # -- mutation helpers used by the optimizer ------------------------------

    def add_conflict(self, s1: RawSchema, s2: RawSchema) -> None:
        self.conflicts.setdefault(s1, set()).add(s2)
        self.conflicts.setdefault(s2, set()).add(s1)

    def neighborhood(self, schema: RawSchema) -> FrozenSet[RawSchema]:
        return frozenset(self.conflicts.get(schema, ()))

    def delete(self, schema: RawSchema) -> None:
        """Remove a schema entirely (cleanup of conflict-free points)."""
        self.schemas.discard(schema)
        for peer in self.conflicts.pop(schema, ()):
            if peer != schema:
                self.conflicts[peer].discard(schema)
        for original, rep in self.canon.items():
            if rep == schema:
                self.canon[original] = None

    def merge(self, group: Iterable[RawSchema]) -> RawSchema:
        """Collapse congruent schemas onto one representative."""
        members = sorted(group, key=str)
        rep, rest = members[0], members[1:]
        for member in rest:
            self.schemas.discard(member)
            peers = self.conflicts.pop(member, set())
            for peer in peers:
                if peer in (member, rep):
                    # self-conflict within the class transfers to rep-rep
                    self.add_conflict(rep, rep)
                    self.conflicts.get(peer, set()).discard(member)
                else:
                    self.conflicts[peer].discard(member)
                    self.add_conflict(rep, peer)
        for original, current in self.canon.items():
            if current in rest:
                self.canon[original] = rep
        return rep

    # -- statistics (used by tests and the ablation bench) --------------------

    def schema_count(self) -> int:
        return len(self.schemas)

    def max_degree(self) -> int:
        live = [len(peers) for schema, peers in self.conflicts.items()
                if schema in self.schemas]
        return max(live, default=0)


def _method_atoms(spec: CommutativitySpec) -> Dict[str, Tuple[AtomKey, ...]]:
    """``B(Φ, m)`` for every method: normalized LB atoms relevant to m."""
    atoms: Dict[str, List[AtomKey]] = {m: [] for m in spec.methods}
    for m1, m2, formula in spec.pairs():
        require_ecl(formula, context=f"ϕ_{{{m1},{m2}}} of {spec.kind}")
        for atom in lb_atoms(formula):
            sides = {arg.side for arg in atom.args
                     if isinstance(arg, Var) and arg.side is not None}
            normalized = normalize_sides(atom)
            targets = []
            if not sides:
                continue  # ground atom: folded during substitution
            for side in sides:
                targets.append(m1 if int(side) == 1 else m2)
            for method in targets:
                if normalized not in atoms[method]:
                    atoms[method].append(normalized)
    return {m: tuple(atom_list) for m, atom_list in atoms.items()}


def _all_betas(atoms: Tuple[AtomKey, ...]) -> List[Beta]:
    """Every assignment ``B(Φ, m) → {true, false}`` as a frozen β."""
    betas: List[Beta] = []
    for values in itertools.product((False, True), repeat=len(atoms)):
        betas.append(frozenset(zip(atoms, values)))
    return betas


def build_raw_translation(spec: CommutativitySpec) -> TranslationResult:
    """Steps 1–4 of Section 6.2, without the Appendix A.3 optimizations."""
    if not spec.is_complete():
        raise TranslationError(
            f"specification {spec.kind!r} is incomplete: every method pair "
            f"needs a formula (use default_true()/default_false())")
    atoms_by_method = _method_atoms(spec)
    result = TranslationResult(spec=spec, atoms_by_method=atoms_by_method)

    # Generate Xo: a ds schema and one slot schema per value, per β.
    betas: Dict[str, List[Beta]] = {}
    for method, sig in spec.methods.items():
        betas[method] = _all_betas(atoms_by_method[method])
        for beta in betas[method]:
            schemas = [RawSchema(method, DS, beta)]
            schemas += [RawSchema(method, i, beta)
                        for i in range(sig.arity)]
            for schema in schemas:
                result.schemas.add(schema)
                result.canon[schema] = schema
                result.conflicts.setdefault(schema, set())

    # Build Co from ϕ[β1; β2] for every method pair and β pair.
    for m1, m2, _ in spec.pairs():
        formula = spec.formula_for(m1, m2)
        sig1, sig2 = spec.signature(m1), spec.signature(m2)
        for beta1 in betas[m1]:
            b1 = dict(beta1)
            for beta2 in betas[m2]:
                _conflicts_for(result, formula, m1, sig1, beta1, b1,
                               m2, sig2, beta2)
    return result


def _conflicts_for(result: TranslationResult, formula: Formula,
                   m1: str, sig1: MethodSig, beta1: Beta, b1: Dict,
                   m2: str, sig2: MethodSig, beta2: Beta) -> None:
    residual = to_ls(substitute_beta(formula, b1, dict(beta2)))
    if residual is True:
        return
    if residual is False:
        result.add_conflict(RawSchema(m1, DS, beta1),
                            RawSchema(m2, DS, beta2))
        return
    for x_name, y_name in residual:
        i = sig1.value_index(x_name)
        j = sig2.value_index(y_name)
        result.add_conflict(RawSchema(m1, i, beta1),
                            RawSchema(m2, j, beta2))


class TranslatedRepresentation(SchemaRepresentation):
    """The executable ``⟨Xo, ηo, Co⟩`` produced from a translation result.

    ``ηo`` computes the action's full β by evaluating ``B(Φ, m)`` on its
    values, then maps each ``(m, slot, β)`` through ``canon`` — so the same
    code serves raw and optimized translations (for the latter, ``canon``
    collapses merged schemas and drops deleted ones).
    """

    def __init__(self, result: TranslationResult):
        self._result = result
        self._spec = result.spec
        value_schemas = {s for s in result.schemas if s.carries_value}
        plain_schemas = result.schemas - value_schemas
        pairs = []
        for schema in result.schemas:
            for peer in result.conflicts.get(schema, ()):
                pairs.append((schema, peer))
        super().__init__(
            kind=result.spec.kind,
            value_schemas=value_schemas,
            plain_schemas=plain_schemas,
            conflict_pairs=pairs,
            touches=self._touches,
        )

    def _touches(self, action: Action):
        method = action.method
        sig = self._spec.signature(method)
        env = sig.bind(action)
        atoms = self._result.atoms_by_method[method]
        beta = frozenset(
            (atom, evaluate(atom, lambda var: env[var.name]))
            for atom in atoms)
        canon = self._result.canon
        values = action.values
        out = []
        for slot in (DS, *range(sig.arity)):
            rep = canon.get(RawSchema(method, slot, beta))
            if rep is None:
                continue
            out.append((rep, None if slot == DS else values[slot]))
        return out

    @property
    def translation(self) -> TranslationResult:
        return self._result

    def describe(self) -> str:
        """Human-readable dump of schemas and conflicts (for docs/tests)."""
        lines = [f"representation of {self.kind}:"]
        for schema in sorted(self._result.schemas, key=str):
            peers = sorted(self._result.conflicts.get(schema, ()), key=str)
            tag = "value" if schema.carries_value else "plain"
            lines.append(f"  {schema}  [{tag}]")
            for peer in peers:
                lines.append(f"    ⨯ {peer}")
        return "\n".join(lines)


def build_representation(result: TranslationResult) -> TranslatedRepresentation:
    return TranslatedRepresentation(result)


def translate(spec: CommutativitySpec,
              optimize: bool = True) -> TranslatedRepresentation:
    """Translate an ECL specification to an access point representation.

    With ``optimize=True`` (default) the Appendix A.3 passes run first:
    conflict-free points are removed and congruent schemas merged, which
    yields representations like Fig. 7 for the Fig. 6 dictionary.  The
    representation is always *bounded* (Theorem 6.6), so the detector's
    ENUMERATE strategy applies.
    """
    result = build_raw_translation(spec)
    if optimize:
        from .optimize import optimize_translation
        optimize_translation(result)
    return build_representation(result)
